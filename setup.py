"""Legacy setup shim: the offline environment lacks the ``wheel``
package, so editable installs must go through ``setup.py develop``."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "IQ-tree: independent quantization index compression for "
        "high-dimensional data spaces (ICDE 2000 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
