"""Top-level command line: build, query, and inspect persisted indexes.

Usage::

    python -m repro build  data.npy index.iqt [--metric l2] [--no-optimize]
    python -m repro query  index.iqt --point 0.1,0.2,... [--k 5]
    python -m repro query  index.iqt --random 3 [--k 5]
    python -m repro info   index.iqt
    python -m repro validate index.iqt [--queries 10]

``data.npy`` is any ``numpy.save``-ed ``(n, d)`` float array.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.tree import IQTree
from repro.storage.persistence import load_iqtree, save_iqtree

__all__ = ["main"]


def _cmd_build(args: argparse.Namespace) -> int:
    data = np.load(args.data)
    tree = IQTree.build(
        data,
        metric=args.metric,
        optimize=not args.no_optimize,
        fractal_dim=None if args.uniform_model else "auto",
    )
    save_iqtree(tree, args.index)
    bits, counts = np.unique(tree.page_bits, return_counts=True)
    print(
        f"built {tree!r}\n"
        f"page resolutions: "
        f"{dict(zip(bits.tolist(), counts.tolist()))}\n"
        f"saved to {args.index}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    tree = load_iqtree(args.index)
    if args.point:
        queries = [np.array([float(x) for x in args.point.split(",")])]
    else:
        rng = np.random.default_rng(args.seed)
        lo = tree.points.min(axis=0)
        hi = tree.points.max(axis=0)
        queries = [
            lo + rng.random(tree.dim) * (hi - lo)
            for _ in range(args.random)
        ]
    for query in queries:
        result = tree.nearest(query, k=args.k)
        pairs = ", ".join(
            f"{pid} (d={dist:.4f})"
            for pid, dist in zip(result.ids, result.distances)
        )
        print(
            f"query -> {pairs}  [{result.io.elapsed * 1e3:.2f} ms "
            f"simulated, {result.pages_read} pages, "
            f"{result.refinements} refinements]"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    tree = load_iqtree(args.index)
    bits, counts = np.unique(tree.page_bits, return_counts=True)
    sizes = tree.size_summary()
    est = tree.estimated_query_cost()
    print(f"{tree!r}")
    print(f"metric: {tree.metric.name}")
    print(f"fractal dimension (model): {tree.cost_model.fractal_dim:.2f}")
    print(
        f"page resolutions: {dict(zip(bits.tolist(), counts.tolist()))}"
    )
    print(
        f"blocks: directory={sizes['directory_blocks']} "
        f"quantized={sizes['quantized_blocks']} "
        f"exact={sizes['exact_blocks']}"
    )
    print(
        f"estimated query cost: {est.total * 1e3:.2f} ms "
        f"(T1={est.first_level * 1e3:.2f}, T2={est.second_level * 1e3:.2f}, "
        f"T3={est.refinement * 1e3:.2f})"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import validate_cost_model

    tree = load_iqtree(args.index)
    rng = np.random.default_rng(args.seed)
    picks = rng.choice(
        tree.n_points, size=min(args.queries, tree.n_points), replace=False
    )
    queries = tree.points[picks]
    validation = validate_cost_model(tree, queries, k=args.k)
    print(validation.summary())
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IQ-tree index tool (build / query / info / validate)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build and save an index")
    build.add_argument("data", help="numpy .npy file of (n, d) points")
    build.add_argument("index", help="output index path")
    build.add_argument("--metric", default="euclidean")
    build.add_argument(
        "--no-optimize",
        action="store_true",
        help="store exact pages (skip the quantization optimizer)",
    )
    build.add_argument(
        "--uniform-model",
        action="store_true",
        help="use the uniform cost model instead of estimating D_F",
    )
    build.set_defaults(func=_cmd_build)

    query = sub.add_parser("query", help="run nearest-neighbor queries")
    query.add_argument("index")
    query.add_argument(
        "--point", help="comma-separated query coordinates"
    )
    query.add_argument(
        "--random",
        type=int,
        default=1,
        help="number of random queries when --point is absent",
    )
    query.add_argument("--k", type=int, default=1)
    query.add_argument("--seed", type=int, default=0)
    query.set_defaults(func=_cmd_query)

    info = sub.add_parser("info", help="describe a saved index")
    info.add_argument("index")
    info.set_defaults(func=_cmd_info)

    validate = sub.add_parser(
        "validate", help="compare cost-model predictions with measurements"
    )
    validate.add_argument("index")
    validate.add_argument("--queries", type=int, default=10)
    validate.add_argument("--k", type=int, default=1)
    validate.add_argument("--seed", type=int, default=0)
    validate.set_defaults(func=_cmd_validate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
