"""Top-level command line: build, query, and inspect persisted indexes.

Usage::

    python -m repro build  data.npy index.iqt [--metric l2] [--no-optimize]
    python -m repro query  index.iqt --point 0.1,0.2,... [--k 5]
    python -m repro query  index.iqt --random 3 [--k 5]
    python -m repro batch  index.iqt --random 50 [--k 5] [--pool 256]
    python -m repro batch  index.iqt --random 50 --workers 4 [--backend process] [--decode-cache 4194304]
    python -m repro batch  index.iqt --random 50 --radius 0.2 [--compare]
    python -m repro info   index.iqt
    python -m repro fsck   index.iqt
    python -m repro validate index.iqt [--queries 10]
    python -m repro stats  index.iqt --random 50 [--format prometheus]
    python -m repro stats  index.iqt --slo lat=iq_query_simulated_seconds:p99<=0.05
    python -m repro trace  index.iqt [--k 5] [--json]
    python -m repro trace  index.iqt --export chrome --shards 4 --workers 2
    python -m repro flight index.iqt --shards 4 --kill-shard 0
    python -m repro chaos  index.iqt [--kinds transient] [--levels exact]
    python -m repro chaos  index.iqt --writes [--ops 40] [--backend process]

``data.npy`` is any ``numpy.save``-ed ``(n, d)`` float array.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import obs
from repro.core.tree import IQTree
from repro.storage.persistence import (
    load_iqtree,
    save_iqtree,
    verify_container,
)

__all__ = ["main"]


def _cmd_build(args: argparse.Namespace) -> int:
    data = np.load(args.data)
    tree = IQTree.build(
        data,
        metric=args.metric,
        optimize=not args.no_optimize and args.bits is None,
        fixed_bits=args.bits,
        fractal_dim=None if args.uniform_model else "auto",
        codec=args.codec,
    )
    save_iqtree(tree, args.index)
    bits, counts = np.unique(tree.page_bits, return_counts=True)
    print(
        f"built {tree!r}\n"
        f"page resolutions: "
        f"{dict(zip(bits.tolist(), counts.tolist()))}\n"
        f"saved to {args.index}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    tree = load_iqtree(args.index)
    if args.point:
        queries = [np.array([float(x) for x in args.point.split(",")])]
    else:
        rng = np.random.default_rng(args.seed)
        lo = tree.points.min(axis=0)
        hi = tree.points.max(axis=0)
        queries = [
            lo + rng.random(tree.dim) * (hi - lo)
            for _ in range(args.random)
        ]
    for query in queries:
        result = tree.nearest(query, k=args.k)
        pairs = ", ".join(
            f"{pid} (d={dist:.4f})"
            for pid, dist in zip(result.ids, result.distances)
        )
        print(
            f"query -> {pairs}  [{result.io.elapsed * 1e3:.2f} ms "
            f"simulated, {result.pages_read} pages, "
            f"{result.refinements} refinements]"
        )
    return 0


def _random_queries(tree, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    lo = tree.points.min(axis=0)
    hi = tree.points.max(axis=0)
    return lo + rng.random((count, tree.dim)) * (hi - lo)


def _cmd_batch(args: argparse.Namespace) -> int:
    tree = load_iqtree(args.index)
    queries = _random_queries(tree, args.random, args.seed)
    if args.shards is not None:
        return _batch_sharded(args, tree, queries)
    engine = tree.query_engine(
        pool=args.pool,
        workers=args.workers,
        decode_cache=args.decode_cache,
        backend=args.backend,
    )
    if args.radius is not None:
        result = engine.range_batch(queries, args.radius)
        kind = f"range r={args.radius}"
    else:
        result = engine.knn_batch(queries, k=args.k)
        kind = f"{args.k}-NN"
    stats = result.stats
    print(
        f"batch of {stats.n_queries} {kind} queries "
        f"({stats.workers} worker{'s' if stats.workers != 1 else ''}, "
        f"{engine.backend} backend): "
        f"{stats.io.elapsed * 1e3:.2f} ms simulated "
        f"({stats.mean_time * 1e3:.3f} ms/query), "
        f"{stats.io.seeks} seeks, {stats.pages_read} pages, "
        f"{stats.refinements} refinements, "
        f"{stats.bytes_transferred} bytes"
    )
    if stats.pool_hits or stats.pool_misses:
        print(
            f"buffer pool: {stats.pool_hits} hits / "
            f"{stats.pool_misses} misses "
            f"(hit rate {stats.pool_hit_rate:.2f})"
        )
    if stats.decoded_pages_reused:
        print(
            f"decoded-page cache: {stats.decoded_pages_reused} pages "
            f"reused, {stats.pages_read} fetched "
            f"(reuse rate {stats.decode_reuse_rate:.2f})"
        )
    if args.compare:
        seq = load_iqtree(args.index)
        before = seq.disk.stats.elapsed, seq.disk.stats.seeks
        for query in queries:
            seq.disk.park()
            if args.radius is not None:
                seq.range_query(query, args.radius)
            else:
                seq.nearest(query, k=args.k)
        elapsed = seq.disk.stats.elapsed - before[0]
        seeks = seq.disk.stats.seeks - before[1]
        speedup = elapsed / stats.io.elapsed if stats.io.elapsed else float("inf")
        print(
            f"sequential loop: {elapsed * 1e3:.2f} ms simulated, "
            f"{seeks} seeks ({speedup:.1f}x slower than batched)"
        )
    return 0


def _batch_sharded(args: argparse.Namespace, tree, queries) -> int:
    """Run the batch scatter-gather through a ShardRouter."""
    from repro.engine import ShardRouter

    router = ShardRouter(
        tree,
        shards=args.shards,
        workers=args.workers,
        backend=args.backend,
        pool=args.pool,
        decode_cache=args.decode_cache,
    )
    for index in args.kill_shard or ():
        if not 0 <= index < router.n_shards:
            raise SystemExit(
                f"--kill-shard index {index} out of range (router has "
                f"{router.n_shards} shards; the count clamps to the "
                f"page count)"
            )
        router.kill_shard(index)
    if args.radius is not None:
        result = router.range_batch(queries, args.radius)
        kind = f"range r={args.radius}"
    else:
        result = router.knn_batch(queries, k=args.k)
        kind = f"{args.k}-NN"
    stats, routing = result.stats, result.routing
    alive = sum(1 for s in router.shards if s.alive)
    print(
        f"sharded batch of {stats.n_queries} {kind} queries over "
        f"{router.n_shards} shards ({alive} alive, "
        f"{stats.workers} worker{'s' if stats.workers != 1 else ''}, "
        f"{router.backend} backend): "
        f"{stats.io.elapsed * 1e3:.2f} ms simulated "
        f"({stats.mean_time * 1e3:.3f} ms/query), "
        f"{stats.io.seeks} seeks, {stats.pages_read} pages, "
        f"{stats.refinements} refinements"
    )
    mean_contacted = (
        float(routing.contacted.mean()) if len(result) else 0.0
    )
    print(
        f"routing: visit order {routing.visit_order}, "
        f"{mean_contacted:.2f} shards contacted/query, "
        f"{routing.skipped} shard visits pruned"
        + (f", dead shards {list(routing.dead)}" if routing.dead else "")
    )
    degraded = sum(1 for r in result if r.degraded)
    if degraded:
        print(
            f"degraded answers: {degraded}/{stats.n_queries} "
            f"({stats.lost_pages} lost-page reports with global "
            f"mindist/maxdist bounds)"
        )
    router.close()
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    tree = load_iqtree(args.index)
    bits, counts = np.unique(tree.page_bits, return_counts=True)
    sizes = tree.size_summary()
    est = tree.estimated_query_cost()
    print(f"{tree!r}")
    print(f"metric: {tree.metric.name}")
    print(f"fractal dimension (model): {tree.cost_model.fractal_dim:.2f}")
    print(
        f"page resolutions: {dict(zip(bits.tolist(), counts.tolist()))}"
    )
    print(
        f"blocks: directory={sizes['directory_blocks']} "
        f"quantized={sizes['quantized_blocks']} "
        f"exact={sizes['exact_blocks']}"
    )
    print(
        f"estimated query cost: {est.total * 1e3:.2f} ms "
        f"(T1={est.first_level * 1e3:.2f}, T2={est.second_level * 1e3:.2f}, "
        f"T3={est.refinement * 1e3:.2f})"
    )
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    report = verify_container(args.index, expect_codec=args.codec)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import validate_cost_model

    tree = load_iqtree(args.index)
    rng = np.random.default_rng(args.seed)
    picks = rng.choice(
        tree.n_points, size=min(args.queries, tree.n_points), replace=False
    )
    queries = tree.points[picks]
    validation = validate_cost_model(tree, queries, k=args.k)
    print(validation.summary())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    obs.registry.reset()
    obs.drift.reset()
    obs.enable()
    burning = 0
    try:
        tree = load_iqtree(args.index)
        queries = _random_queries(tree, args.random, args.seed)
        engine = tree.query_engine(pool=args.pool)
        engine.knn_batch(queries, k=args.k)
        statuses = None
        if args.slo:
            monitor = obs.SLOMonitor(args.slo)
            statuses = monitor.evaluate()
            burning = sum(1 for s in statuses if not s.met)
        if args.format == "json":
            payload = obs.registry.collect()
            if args.drift:
                payload["drift"] = obs.drift.report().to_dict()
            print(json.dumps(payload, indent=2))
        else:
            sys.stdout.write(obs.registry.to_prometheus())
            if args.drift:
                print(f"\n{obs.drift.report().summary()}")
        if statuses is not None:
            for status in statuses:
                print(status.describe(), file=sys.stderr)
    finally:
        obs.disable()
    return 1 if burning else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    tree = load_iqtree(args.index)
    queries = _random_queries(tree, args.random, args.seed)
    router = None
    if args.shards is not None:
        from repro.engine import ShardRouter

        router = ShardRouter(
            tree,
            shards=args.shards,
            workers=args.workers,
            backend=args.backend,
            pool=args.pool,
        )
        target = router
        name = f"knn-batch k={args.k} shards={router.n_shards}"
    else:
        target = tree.query_engine(
            pool=args.pool, workers=args.workers, backend=args.backend
        )
        name = f"knn-batch k={args.k}"
    try:
        with obs.trace_query(target, name=name) as tracer:
            result = target.knn_batch(queries, k=args.k)
    finally:
        if router is not None:
            router.close()

    # The attribution invariant always gets checked; when the span tree
    # itself goes to stdout (export / json), the report moves to stderr
    # so the payload stays machine-readable.
    report = sys.stderr if (args.export or args.json) else sys.stdout
    root = tracer.root
    own = sum((s.own_io for s in root.walk()), start=obs.SpanIO())
    ledger = result.stats.io
    ok = (
        abs(own.elapsed - ledger.elapsed) < 1e-9
        and own.seeks == ledger.seeks
        and own.blocks_read == ledger.blocks_read
    )

    if args.export:
        payload = json.dumps(obs.export_trace(tracer, args.export), indent=2)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.export} trace to {args.out}", file=report)
        else:
            print(payload)
    elif args.json:
        print(tracer.to_json())
    else:
        print(tracer.render())
    print(
        f"\nspan own-I/O sum: {own.elapsed * 1e3:.2f} ms, "
        f"{own.seeks} seeks, {own.blocks_read} blocks",
        file=report,
    )
    print(
        f"IOStats ledger:   {ledger.elapsed * 1e3:.2f} ms, "
        f"{ledger.seeks} seeks, {ledger.blocks_read} blocks",
        file=report,
    )
    print(f"attribution {'consistent' if ok else 'MISMATCH'}", file=report)
    return 0 if ok else 1


def _cmd_flight(args: argparse.Namespace) -> int:
    tree = load_iqtree(args.index)
    queries = _random_queries(tree, args.random, args.seed)
    recorder = obs.FlightRecorder(
        capacity=args.capacity,
        slow_threshold=args.slow_threshold,
        top_slow=args.top_slow,
    )
    if args.shards is not None:
        from repro.engine import ShardRouter

        router = ShardRouter(tree, shards=args.shards, workers=args.workers)
        for index in args.kill_shard or ():
            if not 0 <= index < router.n_shards:
                raise SystemExit(
                    f"--kill-shard index {index} out of range "
                    f"(router has {router.n_shards} shards)"
                )
            router.kill_shard(index)
        router.use_flight_recorder(recorder)
        try:
            router.knn_batch(queries, k=args.k)
        finally:
            router.clear_flight_recorder()
            router.close()
    elif args.single:
        tree.use_flight_recorder(recorder)
        try:
            for query in queries:
                tree.nearest(query, k=args.k)
        finally:
            tree.clear_flight_recorder()
    else:
        tree.use_flight_recorder(recorder)
        engine = tree.query_engine(pool=args.pool, workers=args.workers)
        try:
            engine.knn_batch(queries, k=args.k)
        finally:
            tree.clear_flight_recorder()
    print(recorder.to_json())
    print(
        f"flight recorder: {recorder.recorded} recorded, "
        f"{recorder.dropped} dropped, {len(recorder)} resident "
        f"(capacity {recorder.capacity})",
        file=sys.stderr,
    )
    return 0


_CHAOS_KINDS = ("transient", "persistent", "corrupt")
_CHAOS_LEVELS = ("quantized", "exact")


def _chaos_schedule(injector, kind: str, address: int) -> None:
    if kind == "transient":
        injector.fail_once(address)
    elif kind == "persistent":
        injector.fail_always(address)
    else:  # corrupt: silent payload damage, caught by the CRC sidecar
        injector.corrupt_always(address)


def _chaos_check(tree, query, result, base, kind: str) -> list[str]:
    """Verify one degraded-mode result against the robustness contract."""
    problems: list[str] = []
    metric = tree.metric
    if kind == "transient" and result.degraded:
        problems.append("transient fault did not retry to an exact answer")
    if not result.degraded:
        same = result.ids.tolist() == base.ids.tolist() and np.allclose(
            result.distances, base.distances, atol=1e-9
        )
        if not same:
            problems.append("non-degraded result differs from baseline")
        return problems
    intervals = result.intervals or {}
    for pos, pid in enumerate(result.ids.tolist()):
        true_dist = metric.distance(query, tree.points[pid])
        if result.certain is not None and result.certain[pos]:
            if abs(result.distances[pos] - true_dist) > 1e-9:
                problems.append(
                    f"certain result {pid} reports a wrong distance"
                )
        elif pid in intervals:
            lo, hi = intervals[pid]
            if not (lo - 1e-9 <= true_dist <= hi + 1e-9):
                problems.append(
                    f"interval [{lo:.4f}, {hi:.4f}] of point {pid} "
                    f"misses its true distance {true_dist:.4f}"
                )
    return problems


def _chaos_run(
    tree, queries, k, radius, kind, level, address, policy, baseline
):
    """Execute the query workload under one fault schedule."""
    from repro.storage.faults import ReadFaultInjector

    injector = ReadFaultInjector()
    _chaos_schedule(injector, kind, address)
    tree.disk.install_fault_injector(injector)
    ctx = tree.use_fault_tolerance(policy)
    # Flight recorder in chaos-verification mode: relative slow capture
    # off, so every record is a degraded/faulted postmortem we can
    # count against the observed results.
    recorder = tree.use_flight_recorder(
        obs.FlightRecorder(capacity=4096, top_slow=0)
    )
    problems: list[str] = []
    degraded = lost = 0
    try:
        for i, query in enumerate(queries):
            result = tree.nearest(query, k=k)
            problems.extend(
                _chaos_check(tree, query, result, baseline[("knn", i)], kind)
            )
            degraded += bool(result.degraded)
            lost += len(result.lost_pages)
            if radius is not None:
                rresult = tree.range_query(query, radius)
                problems.extend(
                    _chaos_check(
                        tree, query, rresult, baseline[("range", i)], kind
                    )
                )
                degraded += bool(rresult.degraded)
                lost += len(rresult.lost_pages)
    except Exception as exc:  # noqa: BLE001 -- no schedule may crash
        problems.append(f"workload crashed: {type(exc).__name__}: {exc}")
    finally:
        tree.disk.clear_fault_injector()
        tree.clear_fault_tolerance()
        tree.clear_flight_recorder()
    if kind == "transient" and ctx.retries == 0:
        problems.append("transient schedule never triggered a retry")
    if kind != "transient" and not (degraded or lost):
        problems.append(f"{kind} schedule degraded no result")
    flight_degraded = len(recorder.records("degraded"))
    if flight_degraded != degraded:
        problems.append(
            f"flight recorder captured {flight_degraded} degraded "
            f"records but the workload observed {degraded} degraded "
            f"results"
        )
    if (ctx.retries or ctx.quarantined) and not recorder.records("faulted"):
        problems.append(
            "fault tolerance retried/quarantined but the flight "
            "recorder captured no faulted record"
        )
    counters = (ctx.retries, ctx.quarantined, ctx.degraded_results, ctx.lost_pages)
    return problems, degraded, lost, counters


def _chaos_sharded(args: argparse.Namespace, tree, queries, k) -> int:
    """Shard-kill chaos: degraded answers must contain the truth.

    Kills the requested shards of a ShardRouter, then verifies for
    every query that (a) each true neighbor is either returned exactly
    or covered by a reported lost page whose ``[mindist, maxdist]``
    interval contains its true distance, (b) results flagged certain
    carry exact distances, and (c) after reviving every shard the
    answers match the pristine single-tree baseline bit-exactly.
    Returns non-zero when any check fails.
    """
    from repro.engine import ShardRouter

    kill = [int(s) for s in args.kill_shards.split(",") if s != ""]
    baseline = tree.query_engine().knn_batch(queries, k=k)
    router = ShardRouter(tree, shards=args.shards, workers=args.workers)
    for index in kill:
        if not 0 <= index < router.n_shards:
            raise SystemExit(
                f"--kill-shards index {index} out of range "
                f"(router has {router.n_shards} shards)"
            )
        router.kill_shard(index)
    recorder = router.use_flight_recorder(
        obs.FlightRecorder(capacity=4096, top_slow=0)
    )
    try:
        degraded_run = router.knn_batch(queries, k=k)
    finally:
        router.clear_flight_recorder()

    problems: list[str] = []
    metric = tree.metric
    n_degraded = sum(1 for r in degraded_run if r.degraded)
    for i, (base, got) in enumerate(zip(baseline, degraded_run)):
        got_ids = set(got.ids.tolist())
        for pid, dist in zip(base.ids.tolist(), base.distances.tolist()):
            if pid in got_ids:
                continue
            page = router.page_of(pid)
            covered = any(
                lp.page == page
                and lp.mindist - 1e-9 <= dist <= lp.maxdist + 1e-9
                for lp in got.lost_pages
            )
            if not covered:
                problems.append(
                    f"query {i}: true neighbor {pid} (d={dist:.4f}, "
                    f"page {page}) neither returned nor covered by a "
                    f"lost-page bound"
                )
        if got.certain is not None:
            for pos, pid in enumerate(got.ids.tolist()):
                if not got.certain[pos]:
                    continue
                true_dist = metric.distance(queries[i], tree.points[pid])
                if abs(got.distances[pos] - true_dist) > 1e-9:
                    problems.append(
                        f"query {i}: certain result {pid} reports a "
                        f"wrong distance"
                    )
    if kill and not n_degraded:
        problems.append("shard kill degraded no result")
    flight_degraded = len(recorder.records("degraded"))
    if flight_degraded != n_degraded:
        problems.append(
            f"flight recorder captured {flight_degraded} degraded "
            f"records but the batch observed {n_degraded} degraded "
            f"queries"
        )

    for index in kill:
        router.revive_shard(index)
    revived = router.knn_batch(queries, k=k)
    for i, (base, got) in enumerate(zip(baseline, revived)):
        if base.ids.tolist() != got.ids.tolist() or not np.allclose(
            base.distances, got.distances, atol=1e-12
        ):
            problems.append(
                f"query {i}: revived router differs from baseline"
            )
    router.close()

    verdict = "FAIL" if problems else "ok"
    print(
        f"  shard-kill {kill} / {args.shards} shards: {verdict}  "
        f"[{n_degraded} degraded / "
        f"{degraded_run.stats.lost_pages} lost-page reports, "
        f"{degraded_run.routing.skipped} visits pruned]"
    )
    for problem in problems:
        print(f"      !! {problem}")
    print(f"chaos verdict: {'FAIL' if problems else 'PASS'}")
    return 1 if problems else 0


def _write_ops_script(tree, n_ops: int, seed: int):
    """Deterministic insert/delete script for the write-chaos matrix.

    Roughly one delete per four inserts, deleting only ids this script
    created earlier -- so any acked prefix of the script is replayable
    on a pristine copy of the index.
    """
    rng = np.random.default_rng(seed)
    base = tree.n_points
    ops: list[tuple] = []
    created = 0
    live: list[int] = []
    for i in range(n_ops):
        if live and i % 4 == 3:
            victim = live.pop(int(rng.integers(len(live))))
            ops.append(("delete", victim))
        else:
            point = (
                rng.random(tree.dim).astype(np.float32).astype(np.float64)
            )
            ops.append(("insert", point))
            live.append(base + created)
            created += 1
    return ops


def _apply_write_op(store, op) -> None:
    if op[0] == "insert":
        store.insert(op[1])
    else:
        store.delete(op[1])


def _write_answers(tree, queries, k):
    tree._ensure_clean()
    return [tree.nearest(q, k=k) for q in queries]


def _compare_write_answers(want, got) -> list[str]:
    problems = []
    for i, (w, g) in enumerate(zip(want, got)):
        if not np.array_equal(w.ids, g.ids):
            problems.append(f"query {i}: recovered ids differ")
        elif not np.array_equal(w.distances, g.distances):
            problems.append(f"query {i}: recovered distances differ")
    return problems


def _chaos_writes(args: argparse.Namespace) -> int:
    """Crash the write path at every protocol boundary and verify that
    recovery is bit-identical to a crash-free replay of exactly the
    acknowledged operations; then race background re-quantization
    against query batches and demand unchanged answers."""
    import shutil
    import tempfile
    from pathlib import Path

    from repro.core.maintenance import MaintenanceManager
    from repro.core.optimizer import OptimizedPartition
    from repro.engine.engine import QueryEngine
    from repro.engine.sharding import ShardRouter
    from repro.exceptions import IntegrityError
    from repro.storage.faults import FaultInjector, PowerLoss
    from repro.storage.journal import (
        CRASH_POINTS,
        DurableTree,
        record_spans,
        wal_path,
    )

    source = load_iqtree(args.index)
    queries = _random_queries(source, args.random, args.seed)
    k = min(args.k, source.n_points)
    ops = _write_ops_script(source, args.ops, args.seed)
    crash_at = len(ops) // 2
    checkpoint_every = args.checkpoint_every
    group_commit = args.group_commit
    failed = False
    print(
        f"chaos (writes): {len(ops)} ops, crash at op {crash_at}, "
        f"checkpoint every {checkpoint_every}, group commit "
        f"{group_commit}, {len(queries)} probe queries, k={k}"
    )

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        def fresh_store(name):
            path = tmp / f"{name}.iq"
            shutil.copy(args.index, path)
            # Drop any journal sidecar left by an earlier scenario.
            wal_path(path).unlink(missing_ok=True)
            return DurableTree.open(
                path, fsync=False, group_commit=group_commit
            )

        def run_prefix(store, n, checkpoints=True):
            for i in range(n):
                _apply_write_op(store, ops[i])
                if checkpoints and (i + 1) % checkpoint_every == 0:
                    store.checkpoint()

        def reference_answers(n_acked):
            ref = fresh_store("reference")
            for i in range(n_acked):
                _apply_write_op(ref, ops[i])
            return _write_answers(ref.tree, queries, k)

        # ---- crash matrix: every protocol boundary --------------------
        scenarios: list[tuple[str, dict]] = [
            (point, {"crash_point": point}) for point in CRASH_POINTS
        ]
        scenarios += [
            (f"torn-append[{budget}]", {"torn_append": budget})
            for budget in (1, 6, 18)
        ]
        scenarios += [
            (f"torn-checkpoint[{budget}]", {"torn_checkpoint": budget})
            for budget in (1, 512)
        ]
        for name, spec in scenarios:
            store = fresh_store("victim")
            run_prefix(store, crash_at)
            point = spec.get("crash_point")
            if point is not None:
                store.inject_crash(point)
            if "torn_append" in spec:
                store.inject_torn_append(spec["torn_append"])
            if "torn_checkpoint" in spec:
                store.inject_torn_checkpoint(spec["torn_checkpoint"])
            crashed = False
            index = crash_at
            checkpoint_crash = "torn_checkpoint" in spec or (
                point is not None and point.startswith("checkpoint")
            )
            try:
                if checkpoint_crash:
                    store.checkpoint()
                else:
                    # Crash inside the next scripted op of the type the
                    # boundary names (torn appends hit whatever is next).
                    wanted = (
                        point.split(":")[0] if point is not None else None
                    )
                    while wanted is not None and ops[index][0] != wanted:
                        _apply_write_op(store, ops[index])
                        index += 1
                    _apply_write_op(store, ops[index])
            except PowerLoss:
                crashed = True
            if not crashed:
                failed = True
                print(f"  {name:22s}: FAIL  !! injected crash never fired")
                continue
            store.close()
            # Acked = everything applied before the crash, plus the
            # crashed op iff its journal append completed (post-append).
            if checkpoint_crash:
                n_acked = index
            elif point is not None and point.endswith("post-append"):
                n_acked = index + 1
            else:  # pre-append or torn append: never acknowledged
                n_acked = index
            recovered = DurableTree.open(store.path, fsync=False)
            got = _write_answers(recovered.tree, queries, k)
            problems = _compare_write_answers(
                reference_answers(n_acked), got
            )
            verdict = "FAIL" if problems else "ok"
            print(
                f"  {name:22s}: {verdict}  "
                f"[{n_acked} acked, {recovered.recovered_ops} replayed]"
            )
            for problem in problems:
                failed = True
                print(f"      !! {problem}")

        # ---- at-rest corruption of an acked record is loud ------------
        store = fresh_store("victim")
        run_prefix(store, crash_at, checkpoints=False)
        store.close()
        spans = record_spans(wal_path(store.path))
        start, stop, _seq = spans[len(spans) // 2]
        FaultInjector(wal_path(store.path)).flip_bit(start + 12)
        try:
            DurableTree.open(store.path, fsync=False)
        except IntegrityError:
            print("  corrupt-acked-record   : ok  [recovery raised]")
        else:
            failed = True
            print(
                "  corrupt-acked-record   : FAIL  "
                "!! silent recovery over corrupted acked data"
            )

    # ---- concurrent maintenance: sweeps must be invisible -------------
    def churn_batches(run_batch, tree, rounds=4):
        import threading

        mgr = MaintenanceManager(tree, baseline="current")
        victim = int(np.argmax(tree._bits < 32))
        fine = int(tree._bits[victim])
        if fine >= 32 or fine <= 2:
            return None, 0  # nothing to requantize on this index
        stop = threading.Event()
        errors: list[BaseException] = []
        sweeps = [0]

        def churn():
            while not stop.is_set():
                try:
                    with tree._write_lock:
                        opt = tree._partitions[victim]
                        # Only coarsen quantized pages (an exact page
                        # has no refinement sidecar to decode against).
                        if 32 > opt.bits >= fine:
                            mgr._replace_page(
                                victim,
                                OptimizedPartition(opt.partition, fine - 2),
                            )
                    if not mgr.maybe_sweep().noop:
                        sweeps[0] += 1
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            results = [run_batch() for _ in range(rounds)]
        finally:
            stop.set()
            thread.join()
        if errors:
            raise errors[0]
        return results, sweeps[0]

    qmatrix = np.asarray(queries)
    problems = []

    engine_tree = load_iqtree(args.index)
    engine = QueryEngine(engine_tree, workers=2, backend=args.backend)
    try:
        want = engine.knn_batch(qmatrix, k=k)
        got_all, sweeps = churn_batches(
            lambda: engine.knn_batch(qmatrix, k=k), engine_tree
        )
        for got in got_all or []:
            for i, (w, g) in enumerate(zip(want, got)):
                if not np.array_equal(w.ids, g.ids) or not np.array_equal(
                    w.distances, g.distances
                ):
                    problems.append(
                        f"engine query {i} changed under maintenance"
                    )
    finally:
        engine.close()
    verdict = "FAIL" if problems else "ok"
    print(
        f"  maintenance x engine[{engine.backend}]: {verdict}  "
        f"[{sweeps} sweeps raced]"
    )

    shard_problems = []
    shard_tree = load_iqtree(args.index)
    router = ShardRouter(
        shard_tree, shards=2, workers=2, backend=args.backend
    )
    try:
        want = router.knn_batch(qmatrix, k=k)
        got_all, shard_sweeps = churn_batches(
            lambda: router.knn_batch(qmatrix, k=k),
            router.shards[0].tree,
        )
        for got in got_all or []:
            for i, (w, g) in enumerate(zip(want, got)):
                if not np.array_equal(w.ids, g.ids) or not np.array_equal(
                    w.distances, g.distances
                ):
                    shard_problems.append(
                        f"sharded query {i} changed under maintenance"
                    )
    finally:
        router.close()
    verdict = "FAIL" if shard_problems else "ok"
    print(
        f"  maintenance x sharded:  {verdict}  "
        f"[{shard_sweeps} sweeps raced]"
    )
    for problem in problems + shard_problems:
        failed = True
        print(f"      !! {problem}")

    print(f"chaos verdict: {'FAIL' if failed else 'PASS'}")
    return 1 if failed else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.core.search import locate_address
    from repro.storage.faults import ReadFaultInjector, RetryPolicy

    if args.writes:
        return _chaos_writes(args)
    tree = load_iqtree(args.index)
    queries = _random_queries(tree, args.random, args.seed)
    k = min(args.k, tree.n_points)
    if args.shards is not None:
        print(
            f"chaos (sharded): {len(queries)} queries, k={k}, "
            f"{args.shards} shards, killing {args.kill_shards or 'none'}"
        )
        return _chaos_sharded(args, tree, queries, k)
    kinds = [s for s in args.kinds.split(",") if s]
    levels = [s for s in args.levels.split(",") if s]
    for kind in kinds:
        if kind not in _CHAOS_KINDS:
            raise SystemExit(f"unknown fault kind {kind!r}")
    for level in levels:
        if level not in _CHAOS_LEVELS:
            raise SystemExit(f"unknown level {level!r}")
    policy = RetryPolicy(max_attempts=args.retries, backoff_seeks=1)

    # Baseline answers on the pristine tree, keyed by query position.
    baseline: dict[tuple[str, int], object] = {}
    for i, query in enumerate(queries):
        baseline[("knn", i)] = tree.nearest(query, k=k)
        if args.radius is not None:
            baseline[("range", i)] = tree.range_query(query, args.radius)

    # Oracle pass: a schedule-free injector observes every timed read,
    # telling us which addresses each level actually touches.
    observer = ReadFaultInjector()
    tree.disk.install_fault_injector(observer)
    for query in queries:
        tree.nearest(query, k=k)
        if args.radius is not None:
            tree.range_query(query, args.radius)
    tree.disk.clear_fault_injector()
    victims: dict[str, int] = {}
    for address in sorted(observer.attempts_seen):
        level, _local = locate_address(tree, address)
        if level is not None:
            victims.setdefault(level, address)

    print(
        f"chaos: {len(queries)} queries, k={k}"
        + (f", radius={args.radius}" if args.radius is not None else "")
        + f", retry limit {policy.max_attempts}"
    )
    failed = False
    for level in levels:
        if level not in victims:
            print(f"  {level:9s}: no reads observed, skipping")
            continue
        address = victims[level]
        for kind in kinds:
            problems, degraded, lost, counters = _chaos_run(
                tree, queries, k, args.radius, kind, level, address,
                policy, baseline,
            )
            verdict = "FAIL" if problems else "ok"
            print(
                f"  {kind:10s} x {level:9s} (block {address}): "
                f"{verdict}  retries={counters[0]} "
                f"quarantined={counters[1]} degraded={counters[2]} "
                f"lost_pages={counters[3]} "
                f"[{degraded} degraded / {lost} lost-page reports]"
            )
            for problem in problems:
                failed = True
                print(f"      !! {problem}")

    # A chaos run must not poison later fault-free queries.
    clean_problems: list[str] = []
    for i, query in enumerate(queries):
        result = tree.nearest(query, k=k)
        clean_problems.extend(
            _chaos_check(tree, query, result, baseline[("knn", i)], "transient")
        )
    if clean_problems:
        failed = True
        print("post-chaos pristine check: FAIL")
        for problem in clean_problems:
            print(f"      !! {problem}")
    else:
        print("post-chaos pristine check: ok (matches baseline)")
    print(f"chaos verdict: {'FAIL' if failed else 'PASS'}")
    return 1 if failed else 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IQ-tree index tool (build / query / info / validate)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build and save an index")
    build.add_argument("data", help="numpy .npy file of (n, d) points")
    build.add_argument("index", help="output index path")
    build.add_argument("--metric", default="euclidean")
    build.add_argument(
        "--no-optimize",
        action="store_true",
        help="store exact pages (skip the quantization optimizer)",
    )
    build.add_argument(
        "--bits",
        type=int,
        default=None,
        help="quantize every page at this resolution (skips the optimizer)",
    )
    build.add_argument(
        "--uniform-model",
        action="store_true",
        help="use the uniform cost model instead of estimating D_F",
    )
    build.add_argument(
        "--codec",
        choices=("auto", "grid", "pq", "ef"),
        default="grid",
        help="second-level page codec policy: grid (reference layout), "
        "pq (per-page k-means codebooks), ef (Elias-Fano compressed "
        "directory), or auto (cost-model pick per page + directory)",
    )
    build.set_defaults(func=_cmd_build)

    query = sub.add_parser("query", help="run nearest-neighbor queries")
    query.add_argument("index")
    query.add_argument(
        "--point", help="comma-separated query coordinates"
    )
    query.add_argument(
        "--random",
        type=int,
        default=1,
        help="number of random queries when --point is absent",
    )
    query.add_argument("--k", type=int, default=1)
    query.add_argument("--seed", type=int, default=0)
    query.set_defaults(func=_cmd_query)

    batch = sub.add_parser(
        "batch", help="run a query batch through the shared-buffer engine"
    )
    batch.add_argument("index")
    batch.add_argument(
        "--random",
        type=int,
        default=10,
        help="number of random queries in the batch",
    )
    batch.add_argument("--k", type=int, default=1)
    batch.add_argument(
        "--radius",
        type=float,
        default=None,
        help="run range queries with this radius instead of kNN",
    )
    batch.add_argument(
        "--pool",
        type=int,
        default=None,
        help="buffer pool capacity in blocks (default: no pool)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for the per-query phases (default: 1)",
    )
    batch.add_argument(
        "--backend",
        choices=("auto", "thread", "process"),
        default="auto",
        help="executor backend for --workers > 1: processes scale on "
        "real cores, threads avoid worker startup (default: auto = "
        "process when parallel); results are identical either way",
    )
    batch.add_argument(
        "--decode-cache",
        type=int,
        default=None,
        metavar="BYTES",
        help="cross-batch decoded-page cache budget in bytes "
        "(default: no decoded cache)",
    )
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--compare",
        action="store_true",
        help="also run the same queries one by one and report the cost",
    )
    batch.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve scatter-gather over this many shards (partitioned "
        "from the first-level directory by MBR); --pool and "
        "--decode-cache become per-shard budgets",
    )
    batch.add_argument(
        "--kill-shard",
        type=int,
        action="append",
        metavar="INDEX",
        help="take a shard down before the batch (repeatable); its "
        "queries degrade to lost-page bounds instead of failing",
    )
    batch.set_defaults(func=_cmd_batch)

    info = sub.add_parser("info", help="describe a saved index")
    info.add_argument("index")
    info.set_defaults(func=_cmd_info)

    fsck = sub.add_parser(
        "fsck",
        help="verify a container's integrity section by section",
    )
    fsck.add_argument("index")
    fsck.add_argument(
        "--codec",
        choices=("auto", "grid", "pq", "ef"),
        default=None,
        help="also assert the container's declared codec policy "
        "matches this build-time choice",
    )
    fsck.set_defaults(func=_cmd_fsck)

    validate = sub.add_parser(
        "validate", help="compare cost-model predictions with measurements"
    )
    validate.add_argument("index")
    validate.add_argument("--queries", type=int, default=10)
    validate.add_argument("--k", type=int, default=1)
    validate.add_argument("--seed", type=int, default=0)
    validate.set_defaults(func=_cmd_validate)

    stats = sub.add_parser(
        "stats",
        help="run a query workload and dump the metrics registry",
    )
    stats.add_argument("index")
    stats.add_argument(
        "--random", type=int, default=20, help="workload size"
    )
    stats.add_argument("--k", type=int, default=5)
    stats.add_argument("--pool", type=int, default=None)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="output format (default: Prometheus text exposition)",
    )
    stats.add_argument(
        "--drift",
        action="store_true",
        help="append the cost-model drift report",
    )
    stats.add_argument(
        "--slo",
        action="append",
        metavar="SPEC",
        help="evaluate a service-level objective and export iq_slo_* "
        "gauges: '[name=]histogram:p99<=0.05' or "
        "'[name=]counter_a/counter_b<=0.01' (repeatable); exit code "
        "1 when any objective burns",
    )
    stats.set_defaults(func=_cmd_stats)

    trace = sub.add_parser(
        "trace",
        help="trace one query batch as a span tree with I/O attribution",
    )
    trace.add_argument("index")
    trace.add_argument(
        "--random", type=int, default=1, help="queries in the batch"
    )
    trace.add_argument("--k", type=int, default=5)
    trace.add_argument("--pool", type=int, default=None)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--json", action="store_true", help="emit the span tree as JSON"
    )
    trace.add_argument(
        "--export",
        choices=("chrome", "otlp"),
        default=None,
        help="emit the trace as Chrome trace-event JSON (load in "
        "Perfetto / chrome://tracing) or OTLP-style span JSON "
        "instead of the rendered tree",
    )
    trace.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the exported trace to this file instead of stdout",
    )
    trace.add_argument(
        "--shards",
        type=int,
        default=None,
        help="trace a sharded scatter-gather batch through a "
        "ShardRouter instead of a single engine",
    )
    trace.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for the per-query phases (default: 1)",
    )
    trace.add_argument(
        "--backend",
        choices=("auto", "thread", "process"),
        default="auto",
        help="executor backend for --workers > 1; the stitched trace "
        "is identical either way",
    )
    trace.set_defaults(func=_cmd_trace)

    flight = sub.add_parser(
        "flight",
        help="run a workload with a flight recorder attached and dump "
        "the captured postmortem records as JSON",
    )
    flight.add_argument("index")
    flight.add_argument(
        "--random", type=int, default=20, help="workload size"
    )
    flight.add_argument("--k", type=int, default=5)
    flight.add_argument("--pool", type=int, default=None)
    flight.add_argument("--seed", type=int, default=0)
    flight.add_argument(
        "--capacity", type=int, default=64, help="ring-buffer capacity"
    )
    flight.add_argument(
        "--slow-threshold",
        type=float,
        default=None,
        metavar="SIM_SECONDS",
        help="absolute simulated-seconds bound for slow capture",
    )
    flight.add_argument(
        "--top-slow",
        type=int,
        default=8,
        help="capture queries among this many slowest seen so far "
        "(0 disables relative slow capture)",
    )
    flight.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for the batch / sharded paths",
    )
    flight.add_argument(
        "--single",
        action="store_true",
        help="run single queries through tree.nearest instead of one "
        "engine batch (exact per-query costs)",
    )
    flight.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run the batch through a ShardRouter with this many shards",
    )
    flight.add_argument(
        "--kill-shard",
        type=int,
        action="append",
        metavar="INDEX",
        help="take a shard down first (repeatable, with --shards); the "
        "degraded queries then show up in the recorder",
    )
    flight.set_defaults(func=_cmd_flight)

    chaos = sub.add_parser(
        "chaos",
        help="inject read faults and verify the degraded-result contract",
    )
    chaos.add_argument("index")
    chaos.add_argument(
        "--random", type=int, default=8, help="queries per schedule"
    )
    chaos.add_argument("--k", type=int, default=3)
    chaos.add_argument(
        "--radius",
        type=float,
        default=None,
        help="also run range queries with this radius",
    )
    chaos.add_argument(
        "--kinds",
        default=",".join(_CHAOS_KINDS),
        help="comma-separated fault kinds (transient,persistent,corrupt)",
    )
    chaos.add_argument(
        "--levels",
        default=",".join(_CHAOS_LEVELS),
        help="comma-separated victim levels (quantized,exact)",
    )
    chaos.add_argument(
        "--retries", type=int, default=3, help="retry budget per read"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run the shard-kill matrix instead of block faults: "
        "split into this many shards and verify degraded answers "
        "contain the truth",
    )
    chaos.add_argument(
        "--kill-shards",
        default="0",
        metavar="I,J,...",
        help="comma-separated shard indices to kill (default: 0); "
        "only used with --shards",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker count of the sharded run (only with --shards)",
    )
    chaos.add_argument(
        "--writes",
        action="store_true",
        help="run the write-path matrix instead of read faults: crash "
        "the journal/checkpoint protocol at every boundary, verify "
        "recovery is bit-identical to a crash-free replay of the "
        "acknowledged ops, then race background re-quantization "
        "against query batches",
    )
    chaos.add_argument(
        "--ops",
        type=int,
        default=40,
        help="scripted insert/delete operations (only with --writes)",
    )
    chaos.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        help="checkpoint cadence in the write script (only with --writes)",
    )
    chaos.add_argument(
        "--group-commit",
        type=int,
        default=1,
        help="WAL group-commit window: acknowledge writes only at every "
        "Nth fsync batch (only with --writes; 1 = fsync per append)",
    )
    chaos.add_argument(
        "--backend",
        default="thread",
        choices=("thread", "process"),
        help="worker backend of the concurrent-maintenance phase "
        "(only with --writes)",
    )
    chaos.set_defaults(func=_cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
