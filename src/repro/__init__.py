"""IQ-tree reproduction: independent quantization for high-dimensional
nearest-neighbor search (Berchtold, Boehm, Jagadish, Kriegel, Sander --
ICDE 2000).

Quickstart::

    import numpy as np
    from repro import IQTree
    from repro.datasets import uniform

    data = uniform(n=20_000, dim=16, seed=7)
    tree = IQTree.build(data)
    result = tree.nearest(data[0], k=5)
    print(result.ids, result.distances, result.io.elapsed)

The baselines the paper compares against live in
:mod:`repro.baselines`; the per-figure experiment harnesses in
:mod:`repro.experiments`.
"""

from repro.core.tree import IQTree
from repro.engine import QueryEngine
from repro.storage.disk import DiskModel, IOStats, SimulatedDisk
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM, get_metric

__all__ = [
    "IQTree",
    "QueryEngine",
    "DiskModel",
    "IOStats",
    "SimulatedDisk",
    "EUCLIDEAN",
    "MAXIMUM",
    "get_metric",
]

__version__ = "1.0.0"
