"""Batch query execution layer (shared-buffer query engine).

Public entry point is :class:`QueryEngine`, which runs batches of kNN
and range queries against one IQ-tree while sharing page fetches,
decodes, and third-level refinements across the batch, optionally
through a shared :class:`~repro.storage.cache.BufferPool`.
"""

from repro.engine.engine import BatchQueryResult, BatchResult, QueryEngine
from repro.engine.stats import BatchStats, QueryStats

__all__ = [
    "QueryEngine",
    "BatchResult",
    "BatchQueryResult",
    "BatchStats",
    "QueryStats",
]
