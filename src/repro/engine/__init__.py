"""Batch query execution layer (shared-buffer query engine).

Public entry point is :class:`QueryEngine`, which runs batches of kNN
and range queries against one IQ-tree while sharing page fetches,
decodes, and third-level refinements across the batch, optionally
through a shared :class:`~repro.storage.cache.BufferPool`.

Two further amortization/serving layers live here as well:
:class:`DecodedPageCache` keeps decoded quantized pages (and their
derived cell bounds) resident *across* batches under a byte budget, and
:class:`WorkerPool` shards the per-query CPU phases of a batch over
worker threads or worker processes while keeping results, I/O ledgers,
and observability counters bit-identical to serial execution.  The
per-query phases themselves are the pure, picklable kernels of
:mod:`repro.engine.kernels`.
"""

from repro.engine.concurrent import WorkerPool
from repro.engine.engine import BatchQueryResult, BatchResult, QueryEngine
from repro.engine.page_cache import DecodedPageCache
from repro.engine.sharding import (
    Shard,
    ShardBatchTrace,
    ShardedBatchResult,
    ShardRouter,
)
from repro.engine.stats import BatchStats, QueryStats

__all__ = [
    "QueryEngine",
    "BatchResult",
    "BatchQueryResult",
    "BatchStats",
    "QueryStats",
    "DecodedPageCache",
    "WorkerPool",
    "ShardRouter",
    "Shard",
    "ShardBatchTrace",
    "ShardedBatchResult",
]
