"""Statistics emitted by the batch query engine.

Two granularities are reported: :class:`BatchStats` aggregates the
shared, physical side of a batch (simulated I/O, unique pages fetched,
buffer-pool traffic), while each query's :class:`QueryStats` records the
logical work done on its behalf (candidate pages and points examined,
exact-coordinate refinements it needed).  Physical I/O is deliberately
*not* attributed per query: a page transferred once may serve many
queries of the batch, which is the whole point of batching.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.disk import IOStats

__all__ = ["QueryStats", "BatchStats"]


@dataclass
class QueryStats:
    """Logical work performed for one query of a batch.

    Attributes
    ----------
    candidate_pages:
        Directory pages whose MBR could not be pruned for this query.
    candidate_points:
        Points (cells or exact rows) examined on those pages.
    refinements:
        Third-level exact-coordinate look-ups this query required.
    """

    candidate_pages: int
    candidate_points: int
    refinements: int


@dataclass
class BatchStats:
    """Physical, shared cost of executing one batch.

    Attributes
    ----------
    n_queries:
        Number of queries in the batch.
    io:
        Simulated-I/O delta of the whole batch.
    pages_read:
        Unique quantized data pages fetched (each at most once).
    refinements:
        Unique third-level point records fetched (each at most once).
    bytes_transferred:
        ``io.blocks_read`` scaled to bytes by the disk's block size.
    pool_hits, pool_misses:
        Buffer-pool lookups charged during the batch (both zero when no
        pool is attached).
    retries, quarantined, degraded_results, lost_pages:
        Fault-tolerance activity during this batch (all zero without an
        attached fault context): reads retried after a fault, blocks
        newly quarantined, results degraded to a quantization interval,
        and per-query lost-page reports.
    decoded_pages_reused:
        Pages served already-decoded from the tree's cross-batch
        :class:`~repro.engine.page_cache.DecodedPageCache` (zero when
        none is attached); these paid neither fetch nor decode.
    workers:
        Worker-thread count the batch executed with (1 = serial).
    """

    n_queries: int
    io: IOStats
    pages_read: int
    refinements: int
    bytes_transferred: int
    pool_hits: int = 0
    pool_misses: int = 0
    retries: int = 0
    quarantined: int = 0
    degraded_results: int = 0
    lost_pages: int = 0
    decoded_pages_reused: int = 0
    workers: int = 1

    @classmethod
    def merge_shards(
        cls,
        shard_stats: "list[BatchStats]",
        *,
        n_queries: int,
        workers: int,
        extra_lost_pages: int = 0,
    ) -> "BatchStats":
        """Merge per-shard batch stats into one scatter-gather view.

        ``shard_stats`` are the stats of each *contacted* shard, in
        shard-visit order; their I/O ledgers are merged in that order
        (the same discipline :class:`~repro.engine.concurrent.WorkerPool`
        applies to worker ledgers) and every additive counter -- pages,
        refinements, pool traffic, fault-tolerance activity -- is
        summed.  Two fields are deliberately *not* taken from the
        shards: ``n_queries`` is the router's batch size (each shard
        only saw its unpruned sub-batch, so summing would double-count
        queries sent to several shards), and ``workers`` is the shared
        pool's worker count (the last shard's value is not
        authoritative -- a fully-pruned batch has no last shard at
        all).  ``extra_lost_pages`` accounts for lost-page reports the
        router synthesized itself for dead shards, which no shard engine
        ever saw.  An empty ``shard_stats`` (every shard pruned or
        dead) yields all-zero stats whose rate properties are 0.0, not
        NaN.
        """
        io = IOStats()
        for stats in shard_stats:
            io = io.merged_with(stats.io)
        return cls(
            n_queries=n_queries,
            io=io,
            pages_read=sum(s.pages_read for s in shard_stats),
            refinements=sum(s.refinements for s in shard_stats),
            bytes_transferred=sum(
                s.bytes_transferred for s in shard_stats
            ),
            pool_hits=sum(s.pool_hits for s in shard_stats),
            pool_misses=sum(s.pool_misses for s in shard_stats),
            retries=sum(s.retries for s in shard_stats),
            quarantined=sum(s.quarantined for s in shard_stats),
            degraded_results=sum(
                s.degraded_results for s in shard_stats
            ),
            lost_pages=sum(s.lost_pages for s in shard_stats)
            + extra_lost_pages,
            decoded_pages_reused=sum(
                s.decoded_pages_reused for s in shard_stats
            ),
            workers=workers,
        )

    @property
    def degraded(self) -> bool:
        """True when any result of the batch is not exact."""
        return bool(self.degraded_results or self.lost_pages)

    @property
    def pool_hit_rate(self) -> float:
        """Pool hits / lookups within this batch (0 when no lookups)."""
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    @property
    def decode_reuse_rate(self) -> float:
        """Decoded-cache hits / pages needed this batch (0 when none)."""
        total = self.decoded_pages_reused + self.pages_read
        return self.decoded_pages_reused / total if total else 0.0

    @property
    def mean_time(self) -> float:
        """Simulated seconds per query (elapsed / n_queries)."""
        if self.n_queries == 0:
            return 0.0
        return self.io.elapsed / self.n_queries

    def __repr__(self) -> str:
        return (
            f"BatchStats(n_queries={self.n_queries}, "
            f"elapsed={self.io.elapsed:.4f}s, seeks={self.io.seeks}, "
            f"pages_read={self.pages_read}, "
            f"refinements={self.refinements}, "
            f"pool_hit_rate={self.pool_hit_rate:.2f})"
        )
