"""Pure, picklable per-query kernels of the batch query engine.

The engine's batch algorithms split into coordinator phases (simulated
I/O, shared-state side effects) and per-query phases (candidate
bounding, result assembly) that are pure numpy over read-only inputs.
This module holds the per-query phases as module-level functions whose
inputs are plain data -- query rows, candidate masks, decoded code
matrices, cell-bound boxes, scalar parameters -- with no ``IQTree``,
``BlockFile``, or cache object anywhere in the hot path.  That makes
them shippable to *worker processes* (everything here pickles), which
is what lets ``QueryEngine(workers=N)`` scale on real cores instead of
serializing on the GIL.

Both executor backends (and the serial ``workers=1`` path) run exactly
these functions, so thread/process/serial execution is bit-identical by
construction; the equivalence tests in ``tests/test_engine_parallel.py``
pin it.

Large arrays travel by reference when the engine freezes them into a
:class:`~repro.engine.shm.SharedArena`: any array field of a task (or
of its :class:`PageTable`) may arrive as an
:class:`~repro.engine.shm.ArrayRef`, and each kernel first calls the
task's ``resolved()`` to materialize zero-copy views.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.search import KBest, certain_mask
from repro.engine.shm import resolve
from repro.engine.stats import QueryStats
from repro.geometry.mbr import maxdist_to_boxes, mindist_to_boxes
from repro.obs.tracing import SpanRecord, ledger_state
from repro.storage.runtime_faults import LostPage

__all__ = [
    "BatchQueryResult",
    "PageTable",
    "KnnPlanTask",
    "KnnAssembleTask",
    "RangePlanTask",
    "RangeAssembleTask",
    "plan_knn_shard",
    "plan_range_shard",
    "assemble_knn_shard",
    "assemble_range_shard",
]


@dataclass
class BatchQueryResult:
    """Answer to one query of a batch.

    ``ids``/``distances`` are sorted ascending by distance, exactly as
    the single-query search APIs return them; ``stats`` records the
    logical work this query caused.  The degraded-mode fields mirror
    :class:`~repro.core.search.NNResult`: ``certain`` flags which
    results are exact, ``intervals`` carries the ``(mindist, maxdist)``
    bound of each uncertain result, and ``lost_pages`` reports
    second-level pages this query could not read at all.
    """

    ids: np.ndarray
    distances: np.ndarray
    stats: QueryStats
    certain: np.ndarray | None = None
    intervals: dict[int, tuple[float, float]] | None = None
    lost_pages: tuple = ()
    degraded: bool = False


def _freeze(value, arena):
    return arena.put(value) if isinstance(value, np.ndarray) else value


def _freeze_pair(pair, arena):
    return (_freeze(pair[0], arena), _freeze(pair[1], arena))


def _resolve_pair(pair):
    return (resolve(pair[0]), resolve(pair[1]))


@dataclass
class PageTable:
    """Decoded views of a batch's candidate pages, as plain arrays.

    One entry per loaded page: ``exact`` maps pages stored at full
    resolution to their ``(points, ids)`` arrays, ``bounds`` maps
    quantized pages to their per-point cell ``(lower, upper)`` boxes,
    and ``part_ids`` carries the point ids of quantized pages (needed
    only for interval fallbacks of unreadable records).  Built by the
    engine from the per-batch decode cache *after* all simulated I/O
    has been charged; kernels only ever read it.
    """

    exact: dict[int, tuple]
    bounds: dict[int, tuple]
    part_ids: dict[int, object]

    def frozen(self, arena) -> "PageTable":
        """A copy whose arrays live in ``arena`` (ships as refs)."""
        return PageTable(
            exact={
                p: _freeze_pair(v, arena) for p, v in self.exact.items()
            },
            bounds={
                p: _freeze_pair(v, arena) for p, v in self.bounds.items()
            },
            part_ids={
                p: _freeze(v, arena) for p, v in self.part_ids.items()
            },
        )

    def resolved(self) -> "PageTable":
        """A copy with every :class:`ArrayRef` materialized as a view."""
        return PageTable(
            exact={p: _resolve_pair(v) for p, v in self.exact.items()},
            bounds={p: _resolve_pair(v) for p, v in self.bounds.items()},
            part_ids={p: resolve(v) for p, v in self.part_ids.items()},
        )


@dataclass
class KnnPlanTask:
    """Inputs of the kNN candidate-bounding phase (phase 1)."""

    queries: object  # (q, d) array or ArrayRef
    k: int
    cand_mask: object  # (q, pages) bool array or ArrayRef
    lost: frozenset  # pages the coordinator could not read
    metric: object  # repro.geometry.metrics.Metric (stateless)
    table: PageTable
    trace: bool = False  # emit per-query SpanRecords

    def frozen(self, arena) -> "KnnPlanTask":
        return replace(
            self,
            queries=_freeze(self.queries, arena),
            cand_mask=_freeze(self.cand_mask, arena),
            table=self.table.frozen(arena),
        )

    def resolved(self) -> "KnnPlanTask":
        return replace(
            self,
            queries=resolve(self.queries),
            cand_mask=resolve(self.cand_mask),
            table=self.table.resolved(),
        )


@dataclass
class KnnAssembleTask:
    """Inputs of the kNN result-assembly phase (phase 3)."""

    queries: object
    k: int
    metric: object
    table: PageTable
    plans: list  # phase-1 output, one dict per query
    points: dict  # (page, local) -> (coords, id); fetched records
    counts: object  # per-page point counts (LostPage reporting)
    dmin: object  # (q, pages) directory mindist matrix
    dmax: object  # (q, pages) directory maxdist matrix
    trace: bool = False  # emit per-query SpanRecords

    def frozen(self, arena) -> "KnnAssembleTask":
        return replace(
            self,
            queries=_freeze(self.queries, arena),
            table=self.table.frozen(arena),
            counts=_freeze(self.counts, arena),
            dmin=_freeze(self.dmin, arena),
            dmax=_freeze(self.dmax, arena),
        )

    def resolved(self) -> "KnnAssembleTask":
        return replace(
            self,
            queries=resolve(self.queries),
            table=self.table.resolved(),
            counts=resolve(self.counts),
            dmin=resolve(self.dmin),
            dmax=resolve(self.dmax),
        )


@dataclass
class RangePlanTask:
    """Inputs of the range candidate-classification phase."""

    queries: object
    radii: object  # (q,) array or ArrayRef
    cand_mask: object
    lost: frozenset
    metric: object
    table: PageTable
    trace: bool = False  # emit per-query SpanRecords

    def frozen(self, arena) -> "RangePlanTask":
        return replace(
            self,
            queries=_freeze(self.queries, arena),
            radii=_freeze(self.radii, arena),
            cand_mask=_freeze(self.cand_mask, arena),
            table=self.table.frozen(arena),
        )

    def resolved(self) -> "RangePlanTask":
        return replace(
            self,
            queries=resolve(self.queries),
            radii=resolve(self.radii),
            cand_mask=resolve(self.cand_mask),
            table=self.table.resolved(),
        )


@dataclass
class RangeAssembleTask:
    """Inputs of the range result-assembly phase."""

    queries: object
    radii: object
    metric: object
    table: PageTable
    plans: list
    points: dict
    counts: object
    dmin: object
    trace: bool = False  # emit per-query SpanRecords

    def frozen(self, arena) -> "RangeAssembleTask":
        return replace(
            self,
            queries=_freeze(self.queries, arena),
            radii=_freeze(self.radii, arena),
            table=self.table.frozen(arena),
            counts=_freeze(self.counts, arena),
            dmin=_freeze(self.dmin, arena),
        )

    def resolved(self) -> "RangeAssembleTask":
        return replace(
            self,
            queries=resolve(self.queries),
            radii=resolve(self.radii),
            table=self.table.resolved(),
            counts=resolve(self.counts),
            dmin=resolve(self.dmin),
        )


# ----------------------------------------------------------------------
# Shared pure helpers
# ----------------------------------------------------------------------
def _candidates(cand_row, lost_set):
    """Split one query's candidate pages into (readable, lost).

    Matches the engine's historical branch structure exactly: with no
    lost pages the flatnonzero array passes through untouched.
    """
    cand = np.flatnonzero(cand_row)
    if lost_set:
        lost = [p for p in cand.tolist() if p in lost_set]
        cand = np.array(
            [p for p in cand.tolist() if p not in lost_set],
            dtype=np.int64,
        )
    else:
        lost = []
    return cand, lost


def plan_knn_query(query, k, pages, table, metric) -> dict:
    """Bound every candidate point of one query; pick refinements."""
    exact_dists: list[np.ndarray] = []
    exact_ids: list[np.ndarray] = []
    quant_lowers: list[np.ndarray] = []
    quant_keys: list[tuple[int, int]] = []
    uppers: list[np.ndarray] = []
    candidate_points = 0
    for page in pages.tolist():
        exact = table.exact.get(page)
        if exact is not None:
            points, ids = exact
            dists = metric.distances(query, points)
            candidate_points += dists.size
            exact_dists.append(dists)
            exact_ids.append(ids)
            uppers.append(dists)
            continue
        lo, up = table.bounds[page]
        lower_b = mindist_to_boxes(query, lo, up, metric)
        upper_b = maxdist_to_boxes(query, lo, up, metric)
        candidate_points += lower_b.size
        quant_lowers.append(lower_b)
        quant_keys.extend(
            (page, local) for local in range(lower_b.size)
        )
        uppers.append(upper_b)
    all_uppers = (
        np.concatenate(uppers) if uppers else np.empty(0)
    )
    if all_uppers.size >= k:
        tau = np.partition(all_uppers, k - 1)[k - 1]
    else:
        tau = np.inf
    refine: list[tuple[int, int]] = []
    if quant_lowers:
        lowers_cat = np.concatenate(quant_lowers)
        for idx in np.flatnonzero(lowers_cat <= tau).tolist():
            refine.append(quant_keys[idx])
    return {
        "exact_dists": (
            np.concatenate(exact_dists) if exact_dists else np.empty(0)
        ),
        "exact_ids": (
            np.concatenate(exact_ids)
            if exact_ids
            else np.empty(0, dtype=np.int64)
        ),
        "refine": refine,
        "candidate_points": candidate_points,
    }


def plan_range_query(query, radius, pages, table, metric) -> dict:
    """Classify one query's candidate points for a range search."""
    exact_ids: list[np.ndarray] = []
    exact_dists: list[np.ndarray] = []
    refine: list[tuple[int, int]] = []
    candidate_points = 0
    for page in pages.tolist():
        exact = table.exact.get(page)
        if exact is not None:
            points, ids = exact
            dists = metric.distances(query, points)
            candidate_points += dists.size
            inside = dists <= radius
            exact_ids.append(ids[inside].astype(np.int64, copy=False))
            exact_dists.append(
                dists[inside].astype(np.float64, copy=False)
            )
            continue
        lo, up = table.bounds[page]
        lower_b = mindist_to_boxes(query, lo, up, metric)
        candidate_points += lower_b.size
        refine.extend(
            (page, int(local))
            for local in np.flatnonzero(lower_b <= radius)
        )
    return {
        "exact_ids": (
            np.concatenate(exact_ids)
            if exact_ids
            else np.empty(0, dtype=np.int64)
        ),
        "exact_dists": (
            np.concatenate(exact_dists)
            if exact_dists
            else np.empty(0)
        ),
        "refine": refine,
        "candidate_points": candidate_points,
    }


def refined_distances(query, refine, points, metric) -> dict:
    """Exact distances of one query's available refinements.

    One vectorized ``metric.distances`` call over the fetched records
    (bitwise identical to per-point ``metric.distance``: the reduction
    runs over the same axis in the same order).
    """
    avail = [key for key in refine if key in points]
    if not avail:
        return {}
    coords = np.array([points[key][0] for key in avail])
    dists = metric.distances(query, coords)
    return {key: float(d) for key, d in zip(avail, dists)}


def interval_for(query, key, table, metric) -> tuple[int, float, float]:
    """A point's cell interval (its record was unreadable).

    Pure: returns ``(id, mindist, maxdist)`` -- the interval provably
    contains the exact distance, and ``maxdist`` is a sound
    conservative ranking distance.  Fault-context counters and registry
    instruments are applied later, on the coordinator, in query order.
    """
    page, local = key
    lo_box, up_box = table.bounds[page]
    lo = float(
        mindist_to_boxes(
            query, lo_box[local : local + 1],
            up_box[local : local + 1], metric,
        )[0]
    )
    hi = float(
        maxdist_to_boxes(
            query, lo_box[local : local + 1],
            up_box[local : local + 1], metric,
        )[0]
    )
    return int(table.part_ids[page][local]), lo, hi


def assemble_result(
    ids, dists, intervals, lost_records, stats
) -> BatchQueryResult:
    """Build one BatchQueryResult, attaching degraded-mode fields.

    Pure (safe in workers): shared-state side effects happen on the
    coordinator, in query order.
    """
    degraded = bool(intervals or lost_records)
    certain = None
    result_intervals = None
    if degraded:
        certain = certain_mask(ids, intervals)
        result_intervals = {
            pid: intervals[pid]
            for pid in ids.tolist()
            if pid in intervals
        }
    return BatchQueryResult(
        ids=ids,
        distances=dists,
        stats=stats,
        certain=certain,
        intervals=result_intervals,
        lost_pages=lost_records,
        degraded=degraded,
    )


# ----------------------------------------------------------------------
# Shard entry points (what the worker pool runs)
# ----------------------------------------------------------------------
#
# When ``task.trace`` is set, each entry point also emits one
# picklable :class:`~repro.obs.tracing.SpanRecord` per query, windowed
# on the worker's private ledger (whose deltas the determinism
# contract keeps at zero -- so records are identical for any worker
# count or backend).  Plan records ride inside the plan dicts under
# ``"spans"``; assemble outputs grow from pairs to
# ``(result, n_intervals, records)`` triples.  The coordinator pops
# them off and stitches them into the ambient tracer in query order.

def plan_knn_shard(task: KnnPlanTask, indices, _ledger) -> list[dict]:
    """Phase 1 (pure): per-query point-level bounds + refinement picks."""
    task = task.resolved()
    out = []
    for i in indices:
        before = ledger_state(_ledger) if task.trace else None
        cand, lost = _candidates(task.cand_mask[i], task.lost)
        plan = plan_knn_query(
            task.queries[i], task.k, cand, task.table, task.metric
        )
        plan["lost"] = lost
        plan["candidate_pages"] = int(np.count_nonzero(task.cand_mask[i]))
        if task.trace:
            plan["spans"] = (
                SpanRecord.capture(
                    "plan-query",
                    _ledger,
                    before,
                    query=int(i),
                    pages=plan["candidate_pages"],
                    points=plan["candidate_points"],
                    refine=len(plan["refine"]),
                    lost=len(lost),
                ),
            )
        out.append(plan)
    return out


def plan_range_shard(task: RangePlanTask, indices, _ledger) -> list[dict]:
    """Phase 1 (pure): per-query candidate classification."""
    task = task.resolved()
    out = []
    for i in indices:
        before = ledger_state(_ledger) if task.trace else None
        cand, lost = _candidates(task.cand_mask[i], task.lost)
        plan = plan_range_query(
            task.queries[i],
            float(task.radii[i]),
            cand,
            task.table,
            task.metric,
        )
        plan["lost"] = lost
        plan["candidate_pages"] = int(np.count_nonzero(task.cand_mask[i]))
        if task.trace:
            plan["spans"] = (
                SpanRecord.capture(
                    "plan-query",
                    _ledger,
                    before,
                    query=int(i),
                    pages=plan["candidate_pages"],
                    points=plan["candidate_points"],
                    refine=len(plan["refine"]),
                    lost=len(lost),
                ),
            )
        out.append(plan)
    return out


def assemble_knn_shard(task: KnnAssembleTask, indices, _ledger) -> list:
    """Phase 3 (pure): per-query kNN result assembly.

    Returns ``(result, n_intervals)`` pairs; the coordinator applies
    the degraded-mode side effects in query order afterwards.
    """
    task = task.resolved()
    out = []
    for i in indices:
        before = ledger_state(_ledger) if task.trace else None
        plan = task.plans[i]
        best = KBest(task.k)
        intervals: dict[int, tuple[float, float]] = {}
        best.offer_many(plan["exact_dists"], plan["exact_ids"])
        dist_of = refined_distances(
            task.queries[i], plan["refine"], task.points, task.metric
        )
        for key in plan["refine"]:
            if key in dist_of:
                best.offer(dist_of[key], task.points[key][1])
            else:
                pid, lo, hi = interval_for(
                    task.queries[i], key, task.table, task.metric
                )
                intervals[pid] = (lo, hi)
                best.offer(hi, pid)
        ids, dists = best.sorted_results()
        lost_records = tuple(
            LostPage(
                page=int(p),
                n_points=int(task.counts[p]),
                mindist=float(task.dmin[i, p]),
                maxdist=float(task.dmax[i, p]),
            )
            for p in plan["lost"]
        )
        result = assemble_result(
            ids, dists, intervals, lost_records,
            QueryStats(
                candidate_pages=plan["candidate_pages"],
                candidate_points=plan["candidate_points"],
                refinements=len(plan["refine"]),
            ),
        )
        if task.trace:
            record = SpanRecord.capture(
                "assemble-query",
                _ledger,
                before,
                query=int(i),
                refine=len(plan["refine"]),
                intervals=len(intervals),
                lost=len(lost_records),
            )
            out.append((result, len(intervals), (record,)))
        else:
            out.append((result, len(intervals)))
    return out


def assemble_range_shard(task: RangeAssembleTask, indices, _ledger) -> list:
    """Phase 3 (pure): per-query range result assembly."""
    task = task.resolved()
    out = []
    for i in indices:
        before = ledger_state(_ledger) if task.trace else None
        plan = task.plans[i]
        intervals: dict[int, tuple[float, float]] = {}
        ref_ids: list[int] = []
        ref_dists: list[float] = []
        dist_of = refined_distances(
            task.queries[i], plan["refine"], task.points, task.metric
        )
        radius = float(task.radii[i])
        for key in plan["refine"]:
            if key in dist_of:
                dist = dist_of[key]
                if dist <= radius:
                    ref_ids.append(task.points[key][1])
                    ref_dists.append(dist)
            else:
                # Unreadable record whose cell overlaps the ball:
                # include it conservatively at its cell maxdist,
                # flagged uncertain.
                pid, lo, hi = interval_for(
                    task.queries[i], key, task.table, task.metric
                )
                intervals[pid] = (lo, hi)
                ref_ids.append(pid)
                ref_dists.append(hi)
        found_ids = np.concatenate(
            [plan["exact_ids"], np.array(ref_ids, dtype=np.int64)]
        )
        found_dists = np.concatenate(
            [plan["exact_dists"], np.array(ref_dists, dtype=np.float64)]
        )
        order = np.argsort(found_dists, kind="stable")
        # A lost page may hold any number of in-range points; its
        # contribution cannot be bounded.
        lost_records = tuple(
            LostPage(
                page=int(p),
                n_points=int(task.counts[p]),
                mindist=float(task.dmin[i, p]),
                maxdist=float("inf"),
            )
            for p in plan["lost"]
        )
        result = assemble_result(
            found_ids[order],
            found_dists[order],
            intervals,
            lost_records,
            QueryStats(
                candidate_pages=plan["candidate_pages"],
                candidate_points=plan["candidate_points"],
                refinements=len(plan["refine"]),
            ),
        )
        if task.trace:
            record = SpanRecord.capture(
                "assemble-query",
                _ledger,
                before,
                query=int(i),
                refine=len(plan["refine"]),
                intervals=len(intervals),
                lost=len(lost_records),
            )
            out.append((result, len(intervals), (record,)))
        else:
            out.append((result, len(intervals)))
    return out
