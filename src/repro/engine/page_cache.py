"""A tree-level, memory-budgeted cache of decoded quantized pages.

The per-batch :class:`~repro.engine.decode.PageDecodeCache` guarantees
each page is fetched and decoded at most once *per batch*; this module
extends the amortization *across* batches (and single queries): a
:class:`DecodedPageCache` attached to a tree
(``tree.use_decoded_cache(budget)``) keeps decoded code matrices -- and
their derived per-point cell-bound boxes -- resident under an LRU policy
bounded by a byte budget, so a page touched by consecutive batches pays
the fetch + bit-unpack + bound computation exactly once while it stays
resident.

Validity is by content, not by hope: every entry records the CRC32
sidecar value of its backing block at decode time, and a lookup only
hits when the sidecar still matches.  That makes the cache immune to
every write path -- ``replace_block`` during dynamic maintenance changes
the sidecar, so the stale decoded copy is dropped on its next lookup
(and counted as an invalidation).  Structural rewrites
(:meth:`~repro.core.tree.IQTree._layout` after inserts/splits/deletes)
clear the cache wholesale, because page indices themselves are
reassigned.  Quarantined pages are bypassed by the callers (a poisoned
block must surface as a lost page, never be silently served from a
pre-fault decode).

Thread safety: all mutation happens under one re-entrant lock.  The
batch engine only touches the cache from its coordinator thread, but
single-query callers may share a tree across threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SearchError
from repro.obs.instruments import (
    DECODED_CACHE_BYTES,
    DECODED_CACHE_EVICTIONS,
    DECODED_CACHE_HITS,
    DECODED_CACHE_INVALIDATIONS,
    DECODED_CACHE_MISSES,
    REGISTRY,
)

__all__ = ["DecodedPageCache"]


@dataclass
class _Entry:
    """One resident decoded page."""

    crc: int
    handle: object  # PageHandle (avoid a core->engine import cycle)
    bounds: tuple[np.ndarray, np.ndarray] | None
    nbytes: int


def _entry_bytes(handle, bounds) -> int:
    total = 0
    for arr in (handle.codes, handle.points, handle.ids):
        if arr is not None:
            total += arr.nbytes
    aux = getattr(handle, "aux", None)
    if aux is not None:
        total += aux.nbytes
    if bounds is not None:
        total += bounds[0].nbytes + bounds[1].nbytes
    return total


class DecodedPageCache:
    """LRU cache of decoded quantized pages, bounded by a byte budget.

    Parameters
    ----------
    budget_bytes:
        Maximum resident bytes of decoded matrices plus cell bounds.
        Must be positive; when an insert pushes the total over budget,
        least-recently-used entries are evicted until it fits (an entry
        larger than the whole budget is simply not kept).

    Keys are file-local page indices of the tree's quantized level; the
    content CRC recorded per entry makes a key self-validating, so a
    page rewritten in place can never be served stale.
    """

    def __init__(self, budget_bytes: int):
        if budget_bytes <= 0:
            raise SearchError("decoded-page cache budget must be positive")
        self.budget_bytes = int(budget_bytes)
        self._entries: OrderedDict[int, _Entry] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.current_bytes = 0

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(self, tree, page: int) -> _Entry | None:
        """The resident entry for ``page``, or None.

        A hit requires the backing block's CRC32 sidecar to still match
        the value recorded at decode time; a mismatch drops the entry
        (counted as an invalidation) and reports a miss.  Hits refresh
        LRU recency.
        """
        with self._lock:
            entry = self._entries.get(page)
            if entry is not None:
                if tree._quant_file.block_crc(page) != entry.crc:
                    del self._entries[page]
                    self.current_bytes -= entry.nbytes
                    self.invalidations += 1
                    if REGISTRY.enabled:
                        DECODED_CACHE_INVALIDATIONS.inc()
                        DECODED_CACHE_BYTES.set(self.current_bytes)
                    entry = None
                else:
                    self._entries.move_to_end(page)
            if entry is None:
                self.misses += 1
                if REGISTRY.enabled:
                    DECODED_CACHE_MISSES.inc()
                return None
            self.hits += 1
            if REGISTRY.enabled:
                DECODED_CACHE_HITS.inc()
            return entry

    def put(self, tree, page: int, handle, bounds=None) -> None:
        """Insert (or refresh) the decoded view of ``page``.

        Records the block's current CRC sidecar as the entry's validity
        token and evicts LRU entries until the budget is respected.  An
        entry larger than the whole budget is rejected up front -- it
        could never be served anyway, and admitting it would flush
        every resident entry before evicting itself.

        The sidecar is read exactly once per put: reading it separately
        for the bounds-reuse check and the entry token would let a
        concurrent rewrite land between the reads, permanently pairing
        the *old* page's bounds with the *new* page's CRC -- a stale
        entry that self-validates forever.
        """
        with self._lock:
            crc = tree._quant_file.block_crc(page)
            old = self._entries.pop(page, None)
            if old is not None:
                self.current_bytes -= old.nbytes
                if bounds is None and old.crc == crc:
                    bounds = old.bounds  # keep already-derived bounds
            entry = _Entry(
                crc=crc,
                handle=handle,
                bounds=bounds,
                nbytes=_entry_bytes(handle, bounds),
            )
            if entry.nbytes > self.budget_bytes:
                if REGISTRY.enabled:
                    DECODED_CACHE_BYTES.set(self.current_bytes)
                return
            self._entries[page] = entry
            self.current_bytes += entry.nbytes
            self._evict_over_budget()
            if REGISTRY.enabled:
                DECODED_CACHE_BYTES.set(self.current_bytes)

    def set_bounds(self, page: int, bounds) -> None:
        """Attach derived cell bounds to a resident entry (no-op when
        the page was evicted in the meantime)."""
        with self._lock:
            entry = self._entries.get(page)
            if entry is None or entry.bounds is not None:
                return
            entry.bounds = bounds
            grown = bounds[0].nbytes + bounds[1].nbytes
            entry.nbytes += grown
            self.current_bytes += grown
            self._entries.move_to_end(page)
            if entry.nbytes > self.budget_bytes:
                # Grown past the whole budget: drop this entry alone
                # rather than flushing every resident ahead of it.
                del self._entries[page]
                self.current_bytes -= entry.nbytes
                self.evictions += 1
                if REGISTRY.enabled:
                    DECODED_CACHE_EVICTIONS.inc()
            else:
                self._evict_over_budget()
            if REGISTRY.enabled:
                DECODED_CACHE_BYTES.set(self.current_bytes)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self, page: int) -> None:
        """Drop one page (quarantine / explicit rewrite notification)."""
        with self._lock:
            entry = self._entries.pop(page, None)
            if entry is None:
                return
            self.current_bytes -= entry.nbytes
            self.invalidations += 1
            if REGISTRY.enabled:
                DECODED_CACHE_INVALIDATIONS.inc()
                DECODED_CACHE_BYTES.set(self.current_bytes)

    def clear(self) -> None:
        """Drop everything (re-layout reassigns page indices wholesale).

        Counters are kept; the resident-bytes gauge drops to zero.
        """
        with self._lock:
            if self._entries:
                self.invalidations += len(self._entries)
                if REGISTRY.enabled:
                    DECODED_CACHE_INVALIDATIONS.inc(len(self._entries))
            self._entries.clear()
            self.current_bytes = 0
            if REGISTRY.enabled:
                DECODED_CACHE_BYTES.set(0)

    def _evict_over_budget(self) -> None:
        while self.current_bytes > self.budget_bytes and self._entries:
            _page, entry = self._entries.popitem(last=False)
            self.current_bytes -= entry.nbytes
            self.evictions += 1
            if REGISTRY.enabled:
                DECODED_CACHE_EVICTIONS.inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resident_pages(self) -> int:
        """Number of decoded pages currently held."""
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups; 0.0 on a cold cache (never a division error)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"DecodedPageCache(budget={self.budget_bytes}, "
            f"resident={len(self._entries)} pages / "
            f"{self.current_bytes} bytes, hit_rate={self.hit_rate:.2f})"
        )
