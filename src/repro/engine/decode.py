"""Per-batch page and record caches of the batch query engine.

:class:`PageDecodeCache` fetches quantized data pages through one
optimal batched transfer (Section 2 strategy) and decodes each page at
most once per batch -- same-width pages are unpacked together through
:func:`~repro.quantization.bitpack.unpack_codes_bulk`, so a batch of
pages costs a handful of numpy passes rather than one per page.  The
derived per-point cell bound boxes are cached as well, because they
depend only on the page, not on the query.

:class:`ExactBatchStore` is the batched counterpart of
:class:`~repro.core.tree.ExactStore`: it collects the third-level
refinement candidates of *all* queries of a batch, plans one optimal
fetch over the union of their blocks, and decodes every requested point
record exactly once.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

import numpy as np

from repro.core.tree import IQTree, PageHandle
from repro.engine.kernels import PageTable
from repro.obs.instruments import PAGES_DECODED, REFINEMENTS, REGISTRY
from repro.obs.tracing import span as obs_span
from repro.quantization.bitpack import unpack_codes_bulk
from repro.quantization.capacity import EXACT_BITS
from repro.storage import serializer
from repro.storage.runtime_faults import fetch_with_quarantine

__all__ = ["PageDecodeCache", "ExactBatchStore"]


class PageDecodeCache:
    """Fetch + decode quantized pages at most once per batch.

    With a fault context attached to the tree, unreadable pages land in
    :attr:`lost_pages` instead of aborting the batch; the engine reports
    them per affected query.

    When the tree carries a
    :class:`~repro.engine.page_cache.DecodedPageCache` (or one is passed
    as ``shared``), already-decoded pages are served from it without
    touching the disk, and freshly decoded pages (plus their derived
    cell bounds) are published back -- the cross-batch amortization
    layer.  Quarantined pages bypass the shared cache entirely: a
    poisoned block must be reported lost, never served from a pre-fault
    decode, and losing a page also drops its shared entry.
    """

    def __init__(self, tree: IQTree, shared=None):
        self._tree = tree
        self._shared = tree._decoded_cache if shared is None else shared
        self._handles: dict[int, PageHandle] = {}
        self._bounds: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: unique pages fetched from the quantized level so far
        self.pages_fetched = 0
        #: unique pages served decoded from the shared cross-batch cache
        self.pages_cached = 0
        #: pages that could not be read (quarantined), in request order
        self.lost_pages: list[int] = []
        self._lost: set[int] = set()

    def load(self, pages: Iterable[int]) -> None:
        """Ensure all ``pages`` are fetched and decoded.

        Missing pages are read in one batched transfer; pages already
        decoded for an earlier query of the batch -- or resident in the
        shared cross-batch cache -- are reused without new I/O.
        """
        need = sorted(
            {int(p) for p in pages} - self._handles.keys() - self._lost
        )
        if not need:
            return
        ctx = self._tree._fault_ctx
        shared = self._shared
        if shared is not None:
            quarantined = (
                ctx.quarantine.local_indices(self._tree._quant_file)
                if ctx is not None
                else frozenset()
            )
            remaining = []
            for page in need:
                entry = (
                    None
                    if page in quarantined
                    else shared.get(self._tree, page)
                )
                if entry is None:
                    remaining.append(page)
                    continue
                self._handles[page] = entry.handle
                if entry.bounds is not None:
                    self._bounds[page] = entry.bounds
                self.pages_cached += 1
            need = remaining
            if not need:
                return
        with obs_span(
            "fetch", disk=self._tree.disk, pages=len(need)
        ) as fetch_span:
            if ctx is None:
                payloads = self._tree._quant_file.read_batched(need)
            else:
                payloads, lost = fetch_with_quarantine(
                    self._tree._quant_file, self._tree.disk, ctx, need
                )
                if lost:
                    self.lost_pages.extend(lost)
                    self._lost.update(lost)
                    if shared is not None:
                        for page in lost:
                            shared.invalidate(page)
                    if fetch_span is not None:
                        fetch_span.attrs["degraded"] = True
                        fetch_span.attrs["lost_pages"] = len(lost)
        self.pages_fetched += len(payloads)
        with obs_span("decode", disk=self._tree.disk, pages=len(payloads)):
            self._decode_bulk(payloads)
        if shared is not None:
            for page in payloads:
                shared.put(self._tree, page, self._handles[page])

    def is_lost(self, page: int) -> bool:
        """Whether ``page`` was requested but could not be read."""
        return page in self._lost

    def handle(self, page: int) -> PageHandle:
        """Decoded view of one loaded page."""
        return self._handles[page]

    def cell_bounds(self, page: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-point conservative boxes of one quantized page.

        Query-independent, so computed once per page per batch and
        shared by every query that examines the page.
        """
        if page not in self._bounds:
            handle = self._handles[page]
            view = self._tree._codec_view(page, handle)
            bounds = view.cell_bounds(handle.codes)
            self._bounds[page] = bounds
            if self._shared is not None:
                self._shared.set_bounds(page, bounds)
        return self._bounds[page]

    def ensure_bounds(self) -> None:
        """Precompute cell bounds of every loaded quantized page.

        The engine calls this on its coordinator thread before fanning
        per-query planning out to workers, so the worker functions only
        *read* this cache -- no lazy fills racing across threads.
        """
        for page, handle in self._handles.items():
            if handle.codes is not None:
                self.cell_bounds(page)

    def page_table(self) -> PageTable:
        """Plain-array snapshot of every loaded page, for the kernels.

        Call after :meth:`ensure_bounds` so quantized pages' boxes are
        already computed.  The snapshot holds only numpy arrays keyed by
        page number -- no tree, file, or cache references -- so it can
        be pickled (or frozen into a shared arena) and shipped to
        worker processes.
        """
        exact: dict[int, tuple] = {}
        bounds: dict[int, tuple] = {}
        part_ids: dict[int, np.ndarray] = {}
        for page, handle in self._handles.items():
            if handle.points is not None:
                exact[page] = (handle.points, handle.ids)
            else:
                bounds[page] = self.cell_bounds(page)
                part_ids[page] = self._tree._part_ids[page]
        return PageTable(exact=exact, bounds=bounds, part_ids=part_ids)

    def _decode_bulk(self, payloads: Mapping[int, bytes]) -> None:
        dim = self._tree.dim
        grouped: dict[int, list[tuple[int, bytes, int]]] = defaultdict(list)
        for page, payload in payloads.items():
            m, bits, codec = serializer.QUANT_PAGE_HEADER.unpack_from(
                payload
            )
            if bits >= EXACT_BITS or codec != 0:
                # Exact pages carry coords + ids and PQ pages carry a
                # per-page codebook; both decode individually (a plain
                # frombuffer / codebook gather, nothing to batch).
                contents, g, ids, aux = serializer.decode_quantized_page(
                    payload, dim
                )
                if aux is not None:
                    self._handles[page] = PageHandle(
                        page, g, contents, None, None, codec=codec, aux=aux
                    )
                else:
                    self._handles[page] = PageHandle(
                        page, g, None, contents, ids
                    )
                if REGISTRY.enabled:
                    PAGES_DECODED.inc(bits=g)
            else:
                body = payload[serializer.QUANT_PAGE_HEADER.size :]
                grouped[bits].append((page, body, m))
        for bits, entries in grouped.items():
            codes_list = unpack_codes_bulk(
                [body for _page, body, _m in entries],
                bits,
                [m for _page, _body, m in entries],
                dim,
            )
            if REGISTRY.enabled:
                PAGES_DECODED.inc(len(entries), bits=bits)
            for (page, _body, _m), codes in zip(entries, codes_list):
                self._handles[page] = PageHandle(
                    page, bits, codes, None, None
                )


class ExactBatchStore:
    """Batched third-level reader shared by all queries of a batch.

    With a fault context attached, records whose backing blocks could
    not be read are collected in :attr:`failed` (and omitted from the
    returned mapping) instead of aborting the batch; the engine falls
    back to the cell interval for those points.
    """

    def __init__(self, tree: IQTree):
        self._tree = tree
        self._points: dict[tuple[int, int], tuple[np.ndarray, int]] = {}
        #: unique point records fetched so far
        self.refinements = 0
        #: (page, local) keys whose third-level blocks are unreadable
        self.failed: set[tuple[int, int]] = set()

    def fetch_all(
        self, requests: Iterable[tuple[int, int]]
    ) -> dict[tuple[int, int], tuple[np.ndarray, int]]:
        """Fetch the exact ``(coords, id)`` of many ``(page, local)``.

        The union of the backing third-level blocks is read in one
        batched transfer planned with the Section 2 strategy; each
        requested record is decoded once, even when several queries
        asked for it.
        """
        tree = self._tree
        record = serializer.exact_point_record_size(tree.dim)
        block_size = tree.disk.model.block_size
        todo = sorted(set(requests) - self._points.keys())
        blocks: set[int] = set()
        spans: list[tuple[tuple[int, int], int, int, int]] = []
        for page, local in todo:
            first_block = int(tree._exact_firsts[page])
            start = local * record
            end = start + record  # exclusive
            b0 = first_block + start // block_size
            b1 = first_block + (end - 1) // block_size
            offset = start - (b0 - first_block) * block_size
            blocks.update(range(b0, b1 + 1))
            spans.append(((page, local), b0, b1, offset))
        if blocks:
            ctx = tree._fault_ctx
            with obs_span(
                "fetch-exact", disk=tree.disk, records=len(spans)
            ) as fetch_span:
                if ctx is None:
                    payloads = tree._exact_file.read_batched(sorted(blocks))
                else:
                    payloads, lost = fetch_with_quarantine(
                        tree._exact_file, tree.disk, ctx, sorted(blocks)
                    )
                    if lost and fetch_span is not None:
                        fetch_span.attrs["degraded"] = True
                        fetch_span.attrs["lost_blocks"] = len(lost)
            decoded = 0
            for key, b0, b1, offset in spans:
                if any(b not in payloads for b in range(b0, b1 + 1)):
                    self.failed.add(key)
                    continue
                data = b"".join(payloads[b] for b in range(b0, b1 + 1))
                coords, ids = serializer.decode_exact_record(
                    data[offset : offset + record], 1, tree.dim
                )
                self._points[key] = (coords[0], int(ids[0]))
                decoded += 1
            if REGISTRY.enabled and decoded:
                REFINEMENTS.inc(decoded)
            self.refinements += decoded
        return {
            key: self._points[key]
            for key in set(requests)
            if key in self._points
        }

    def get(self, page: int, local: int) -> tuple[np.ndarray, int]:
        """A record previously fetched via :meth:`fetch_all`."""
        return self._points[(page, local)]
