"""Batch execution of kNN and range queries over one IQ-tree.

The single-query algorithms in :mod:`repro.core.search` pay the full
index walk per query: a directory scan, a best-first page schedule, and
one third-level look-up per refined point.  Serving heavy traffic means
amortizing all three across a *batch* of queries, which is what
:class:`QueryEngine` does:

* the first-level directory is scanned **once per batch**, and the MBR
  mindist/maxdist of *all* queries against *all* pages are computed in
  one vectorized numpy pass (:func:`~repro.geometry.mbr.mindist_matrix`);
* the union of every query's candidate pages is fetched through **one**
  optimal batched transfer (Section 2 strategy) and each page is decoded
  at most once per batch -- same-width pages through the bulk bit-unpack
  entry point -- so a page needed by five queries is read and unpacked
  once, not five times;
* third-level exact-coordinate refinements of all queries are collected
  and fetched through **one** batched plan
  (:func:`~repro.storage.scheduler.plan_batched_fetch`) over the union
  of their blocks.

kNN batches use a two-phase filter-and-refine plan (the VA-file
discipline applied to the IQ-tree): the directory maxdist matrix yields
a per-query guaranteed radius (the smallest maxdist prefix covering
``k`` points), every page whose mindist is inside it is a candidate,
and after decoding, the k-th smallest per-point *upper* bound prunes
the refinement set while keeping the exact answer -- any true neighbor
has a lower bound below that threshold.  Results are exact and agree
with :func:`repro.core.search.nearest_neighbors` / ``range_search``.

An optional shared :class:`~repro.storage.cache.BufferPool` spans
batches (and possibly several indexes), so hot directory and data
blocks stay resident across calls; an optional
:class:`~repro.engine.page_cache.DecodedPageCache` extends the
amortization one level up, keeping *decoded* pages (and their cell
bounds) resident across batches under a byte budget.

With ``workers > 1`` the per-query phases -- candidate bounding and
result assembly -- are sharded across a
:class:`~repro.engine.concurrent.WorkerPool`.  The phases are the pure,
picklable kernels of :mod:`repro.engine.kernels`: their inputs are
plain arrays (query rows, candidate masks, decoded matrices, cell-bound
boxes), never an ``IQTree``, ``BlockFile``, or cache object, so they
run equally on worker threads or worker *processes* -- the process
backend is what converts simulated speedup into wall-clock speedup on
multi-core hosts.  Every simulated-I/O charge (directory scan, page
fetch, third-level fetch) and every side effect on shared state
(fault-context counters, registry instruments) stays on the coordinator
thread and is applied in query order, so results, the I/O ledger, and
the observability counters are bit-identical for any worker count and
either backend.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.search import (
    checked_queries,
    io_delta,
    io_snapshot,
    next_query_id,
    raise_query_error,
)
from repro.core.tree import IQTree
from repro.engine.concurrent import WorkerPool
from repro.engine.decode import ExactBatchStore, PageDecodeCache
from repro.engine.kernels import (
    BatchQueryResult,
    KnnAssembleTask,
    KnnPlanTask,
    RangeAssembleTask,
    RangePlanTask,
    assemble_knn_shard,
    assemble_range_shard,
    plan_knn_shard,
    plan_range_shard,
)
from repro.engine.shm import SharedArena
from repro.engine.stats import BatchStats
from repro.exceptions import SearchError, StorageError
from repro.obs.drift import MONITOR as _DRIFT
from repro.obs.flight import observe_batch
from repro.obs.instruments import (
    BATCH_QUERIES,
    BATCHES,
    DEGRADED_RESULTS,
    LOST_PAGES,
    QUERY_SECONDS,
    REGISTRY,
)
from repro.obs.tracing import active_tracer
from repro.obs.tracing import span as obs_span
from repro.geometry.mbr import maxdist_matrix, mindist_matrix
from repro.storage.cache import BufferPool
from repro.storage.disk import IOStats

__all__ = [
    "QueryEngine",
    "BatchQueryResult",
    "BatchResult",
    "guarantee_radii",
]


def guarantee_radii(
    dmax: np.ndarray, counts: np.ndarray, k: int
) -> np.ndarray:
    """Per-query radius guaranteed to contain at least k points.

    For each query, pages are taken in ascending maxdist order until
    their point counts cover ``k``; the last maxdist bounds the k-th
    neighbor from above, so any page whose mindist exceeds it can be
    pruned before any data page is read.  When fewer than ``k`` points
    are live (deletions), nothing can be pruned and the radius is
    infinite.  Shared by the engine (over one tree's directory) and the
    shard router (over the global directory spanning every shard).
    """
    order = np.argsort(dmax, axis=1, kind="stable")
    cum = np.cumsum(np.take(counts, order), axis=1)
    covered = cum >= k
    radii = np.full(dmax.shape[0], np.inf)
    reached = covered.any(axis=1)
    if np.any(reached):
        pos = np.argmax(covered[reached], axis=1)
        rows = np.flatnonzero(reached)
        radii[rows] = dmax[rows, order[rows, pos]]
    return radii


_MISSING_SPANS_WARNED = False


def _report_missing_worker_spans(phase: str) -> None:
    """A worker returned no span records while tracing was enabled.

    This is the silent-drop failure mode the stitching protocol was
    built to eliminate (worker spans used to vanish with
    ``backend="process"``), so it must never pass quietly again: under
    pytest it raises, in production it warns once per process.
    """
    global _MISSING_SPANS_WARNED
    message = (
        f"tracing active but the {phase} kernel returned no span "
        "records for at least one query; worker-side spans would be "
        "silently dropped from the stitched trace"
    )
    if "PYTEST_CURRENT_TEST" in os.environ:
        raise SearchError(message)
    if not _MISSING_SPANS_WARNED:
        _MISSING_SPANS_WARNED = True
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def _stitch_worker_records(tracer, phase: str, per_query) -> None:
    """Graft per-query worker records into the live trace, in order.

    ``per_query`` is one record tuple per query, already in batch query
    order (``map_sharded`` restores it), so the stitched tree is
    independent of worker count and backend.
    """
    if any(not recs for recs in per_query):
        _report_missing_worker_spans(phase)
    tracer.stitch([rec for recs in per_query for rec in recs])


@dataclass
class BatchResult:
    """All per-query answers of a batch plus the shared batch cost."""

    queries: list[BatchQueryResult]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, index: int) -> BatchQueryResult:
        return self.queries[index]


class QueryEngine:
    """Executes query batches against one IQ-tree.

    Parameters
    ----------
    tree:
        The index to serve.
    pool:
        Optional buffer pool: a
        :class:`~repro.storage.cache.BufferPool` instance (possibly
        shared with other engines/indexes on the same disk) or an
        integer capacity in blocks.  When omitted, a pool already
        attached to the tree is used; when the tree has none, reads go
        straight to the simulated disk.
    workers:
        Workers the per-query phases shard over (default 1 = serial).
        Any count yields identical results, ledgers, and counters; see
        the module docstring.
    decode_cache:
        Optional cross-batch decoded-page cache: a
        :class:`~repro.engine.page_cache.DecodedPageCache` or an
        integer byte budget, attached to the tree via
        :meth:`~repro.core.tree.IQTree.use_decoded_cache`.  When
        omitted, a cache already attached to the tree is used.
    backend:
        Executor backend for ``workers > 1``: ``"process"`` (real
        multi-core scaling), ``"thread"``, or ``"auto"`` (default:
        process when parallel).  Results are bit-identical either way.
    worker_pool:
        An externally owned :class:`~repro.engine.concurrent.WorkerPool`
        to execute on instead of creating one (the shard router shares
        a single pool across every shard engine this way).  The caller
        keeps ownership: :meth:`close` leaves a borrowed pool running.
        Mutually exclusive with ``workers``/``backend``.
    """

    def __init__(
        self,
        tree: IQTree,
        pool: BufferPool | int | None = None,
        workers: int = 1,
        decode_cache=None,
        backend: str = "auto",
        worker_pool: WorkerPool | None = None,
    ):
        self.tree = tree
        if pool is not None:
            tree.use_buffer_pool(pool)
        if decode_cache is not None:
            tree.use_decoded_cache(decode_cache)
        if worker_pool is not None:
            self._worker_pool = worker_pool
            self._owns_workers = False
        else:
            self._worker_pool = WorkerPool(workers, backend=backend)
            self._owns_workers = True
        self.workers = self._worker_pool.workers

    @property
    def pool(self) -> BufferPool | None:
        """The buffer pool currently attached to the tree, or None.

        Read live from the tree rather than captured at construction,
        so a later ``tree.use_buffer_pool(...)`` swap cannot leave the
        engine computing hit/miss deltas against a detached pool's
        (stale, frozen) counters.
        """
        return self.tree._pool

    @property
    def decode_cache(self):
        """The decoded-page cache currently attached to the tree."""
        return self.tree._decoded_cache

    @property
    def backend(self) -> str:
        """The resolved executor backend ("thread" or "process")."""
        return self._worker_pool.backend

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down (the engine stays usable).

        A borrowed worker pool (``worker_pool=`` at construction) is
        left running; its owner closes it.
        """
        if self._owns_workers:
            self._worker_pool.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker shipping
    # ------------------------------------------------------------------
    def _ships_to_processes(self, n_queries: int) -> bool:
        """Whether this batch's kernels will cross a process boundary."""
        return (
            self._worker_pool.backend == "process"
            and self._worker_pool.workers > 1
            and n_queries > 1
        )

    # ------------------------------------------------------------------
    # kNN batches
    # ------------------------------------------------------------------
    def knn_batch(
        self,
        queries: np.ndarray,
        k: int = 1,
        radius_cap: np.ndarray | None = None,
    ) -> BatchResult:
        """Exact k-nearest-neighbor search for a batch of queries.

        With a fault context attached to the tree
        (``tree.use_fault_tolerance()``), unreadable data degrades the
        affected results (see :class:`BatchQueryResult`) instead of
        aborting the batch; without one, storage failures surface as
        :class:`~repro.exceptions.QueryDataError`.

        ``radius_cap`` is an optional per-query array, shape ``(q,)``,
        of externally known upper bounds on the k-th neighbor distance;
        the candidate radius becomes the elementwise minimum of the
        tree's own guarantee radius and the cap.  The shard router
        passes its running global bound here so a shard never examines
        pages that provably cannot contribute.  Exactness is preserved
        whenever each cap is a sound upper bound on that query's k-th
        distance *within the caller's final merged answer*.
        """
        tree = self.tree
        if k < 1:
            raise SearchError("k must be at least 1")
        tree._ensure_clean()
        if k > tree.n_points:
            raise SearchError(
                f"k={k} exceeds the {tree.n_points} stored points"
            )
        queries = checked_queries(tree, queries)
        if radius_cap is not None:
            radius_cap = np.asarray(radius_cap, dtype=np.float64)
            if radius_cap.shape != (queries.shape[0],):
                raise SearchError(
                    "radius_cap must have one entry per query"
                )
        batch_id = next_query_id()
        try:
            # The whole batch runs under the tree's write lock so a
            # concurrent maintenance sweep can never swap pages out
            # from under it (sweeps take the same lock).
            with tree._write_lock:
                if tree._flight_recorder is not None:
                    return observe_batch(
                        tree._flight_recorder, tree, "knn-batch", batch_id,
                        lambda: self._knn_batch_impl(queries, k, radius_cap),
                    )
                return self._knn_batch_impl(queries, k, radius_cap)
        except StorageError as exc:
            raise_query_error(exc, tree, batch_id)

    def _knn_batch_impl(
        self,
        queries: np.ndarray,
        k: int,
        radius_cap: np.ndarray | None = None,
    ) -> BatchResult:
        tree = self.tree
        n_queries = queries.shape[0]
        before = io_snapshot(tree)
        pool_before = self._pool_counters()
        fault_before = self._fault_counters()
        metric = tree.metric
        tracer = active_tracer()

        with obs_span(
            "directory-scan", disk=tree.disk, pages=tree.n_pages
        ):
            tree._charge_directory_scan()
            dmin = mindist_matrix(
                queries, tree._lowers, tree._uppers, metric
            )
            dmax = maxdist_matrix(
                queries, tree._lowers, tree._uppers, metric
            )
        with obs_span("schedule", disk=tree.disk, queries=n_queries):
            radii = self._guarantee_radii(dmax, k)
            if radius_cap is not None:
                radii = np.minimum(radii, radius_cap)
            cand_mask = dmin <= radii[:, None]

        cache = PageDecodeCache(tree)
        # "fetch" and "decode" spans open inside load(); all simulated
        # I/O of the batch happens here and in fetch_all below, on this
        # coordinator thread.
        cache.load(np.flatnonzero(cand_mask.any(axis=0)))
        cache.ensure_bounds()

        arena = None
        try:
            with obs_span("refine", disk=tree.disk) as refine_span:
                # Phase 1 (workers, pure): per-query point-level bounds;
                # collect the refinement set (quantized points whose
                # lower bound is within the k-th smallest upper bound).
                table = cache.page_table()
                lost = (
                    frozenset(cache.lost_pages)
                    if tree._fault_ctx is not None
                    else frozenset()
                )
                counts = tree._counts
                if self._ships_to_processes(n_queries):
                    arena = SharedArena.create()
                if arena is not None:
                    queries_s = arena.put(queries)
                    cand_mask_s = arena.put(cand_mask)
                    dmin_s = arena.put(dmin)
                    dmax_s = arena.put(dmax)
                    counts_s = arena.put(counts)
                    table_s = table.frozen(arena)
                    arena.seal()
                else:
                    queries_s, cand_mask_s = queries, cand_mask
                    dmin_s, dmax_s, counts_s = dmin, dmax, counts
                    table_s = table
                plan_task = KnnPlanTask(
                    queries=queries_s,
                    k=k,
                    cand_mask=cand_mask_s,
                    lost=lost,
                    metric=metric,
                    table=table_s,
                    trace=tracer is not None,
                )
                plans, plan_io = self._worker_pool.map_sharded(
                    plan_knn_shard, range(n_queries), task=plan_task
                )
                if tracer is not None:
                    _stitch_worker_records(
                        tracer, "plan",
                        [plan.pop("spans", ()) for plan in plans],
                    )
                all_requests: set[tuple[int, int]] = set()
                for plan in plans:
                    all_requests.update(plan["refine"])

                # Phase 2 (coordinator): one batched third-level fetch
                # for every query.  Unreadable records are absent from
                # the map.
                exact_store = ExactBatchStore(tree)
                points = exact_store.fetch_all(all_requests)
                if refine_span is not None:
                    refine_span.attrs["records"] = len(all_requests)

                # Phase 3 (workers, pure): per-query result assembly.
                assemble_task = KnnAssembleTask(
                    queries=queries_s,
                    k=k,
                    metric=metric,
                    table=table_s,
                    plans=plans,
                    points=points,
                    counts=counts_s,
                    dmin=dmin_s,
                    dmax=dmax_s,
                    trace=tracer is not None,
                )
                assembled, assemble_io = self._worker_pool.map_sharded(
                    assemble_knn_shard, range(n_queries),
                    task=assemble_task,
                )
                assembled = self._split_assemble_records(
                    tracer, assembled
                )
                results = self._apply_degraded_effects(assembled)
                if refine_span is not None and any(
                    r.degraded for r in results
                ):
                    refine_span.attrs["degraded"] = True
        finally:
            if arena is not None:
                arena.dispose()
        stats = self._batch_stats(
            n_queries, before, pool_before, fault_before, cache,
            exact_store, plan_io.merged_with(assemble_io),
        )
        self._observe_batch(stats, results, k=k)
        return BatchResult(queries=results, stats=stats)

    def _guarantee_radii(self, dmax: np.ndarray, k: int) -> np.ndarray:
        """See :func:`guarantee_radii` (over this tree's directory)."""
        return guarantee_radii(dmax, self.tree._counts, k)

    # ------------------------------------------------------------------
    # Range batches
    # ------------------------------------------------------------------
    def range_batch(self, queries: np.ndarray, radius) -> BatchResult:
        """Range search (all points within a radius) for a batch.

        ``radius`` is one scalar shared by every query or an array of
        per-query radii, shape ``(q,)``.  Degraded-mode semantics match
        :meth:`knn_batch`: uncertain points whose cell overlaps the
        radius are *included* (marked via ``certain``/``intervals``),
        and wholly lost pages are reported with an infinite maxdist
        because their contribution cannot be bounded.
        """
        tree = self.tree
        tree._ensure_clean()
        queries = checked_queries(tree, queries)
        n_queries = queries.shape[0]
        radii = np.broadcast_to(
            np.asarray(radius, dtype=np.float64), (n_queries,)
        )
        if np.any(radii < 0) or not np.all(np.isfinite(radii)):
            raise SearchError("radius must be non-negative and finite")
        batch_id = next_query_id()
        try:
            # Serialized against maintenance sweeps, like knn_batch.
            with tree._write_lock:
                if tree._flight_recorder is not None:
                    return observe_batch(
                        tree._flight_recorder, tree, "range-batch", batch_id,
                        lambda: self._range_batch_impl(queries, radii),
                    )
                return self._range_batch_impl(queries, radii)
        except StorageError as exc:
            raise_query_error(exc, tree, batch_id)

    def _range_batch_impl(
        self, queries: np.ndarray, radii: np.ndarray
    ) -> BatchResult:
        tree = self.tree
        n_queries = queries.shape[0]
        before = io_snapshot(tree)
        pool_before = self._pool_counters()
        fault_before = self._fault_counters()
        metric = tree.metric
        tracer = active_tracer()

        with obs_span(
            "directory-scan", disk=tree.disk, pages=tree.n_pages
        ):
            tree._charge_directory_scan()
            dmin = mindist_matrix(
                queries, tree._lowers, tree._uppers, metric
            )
        with obs_span("schedule", disk=tree.disk, queries=n_queries):
            cand_mask = dmin <= radii[:, None]

        cache = PageDecodeCache(tree)
        # "fetch" and "decode" spans open inside load().
        cache.load(np.flatnonzero(cand_mask.any(axis=0)))
        cache.ensure_bounds()

        arena = None
        try:
            with obs_span("refine", disk=tree.disk) as refine_span:
                table = cache.page_table()
                lost = (
                    frozenset(cache.lost_pages)
                    if tree._fault_ctx is not None
                    else frozenset()
                )
                counts = tree._counts
                radii = np.ascontiguousarray(radii)
                if self._ships_to_processes(n_queries):
                    arena = SharedArena.create()
                if arena is not None:
                    queries_s = arena.put(queries)
                    radii_s = arena.put(radii)
                    cand_mask_s = arena.put(cand_mask)
                    dmin_s = arena.put(dmin)
                    counts_s = arena.put(counts)
                    table_s = table.frozen(arena)
                    arena.seal()
                else:
                    queries_s, radii_s = queries, radii
                    cand_mask_s, dmin_s, counts_s = cand_mask, dmin, counts
                    table_s = table
                plan_task = RangePlanTask(
                    queries=queries_s,
                    radii=radii_s,
                    cand_mask=cand_mask_s,
                    lost=lost,
                    metric=metric,
                    table=table_s,
                    trace=tracer is not None,
                )
                plans, plan_io = self._worker_pool.map_sharded(
                    plan_range_shard, range(n_queries), task=plan_task
                )
                if tracer is not None:
                    _stitch_worker_records(
                        tracer, "plan",
                        [plan.pop("spans", ()) for plan in plans],
                    )
                all_requests: set[tuple[int, int]] = set()
                for plan in plans:
                    all_requests.update(plan["refine"])

                exact_store = ExactBatchStore(tree)
                points = exact_store.fetch_all(all_requests)
                if refine_span is not None:
                    refine_span.attrs["records"] = len(all_requests)

                assemble_task = RangeAssembleTask(
                    queries=queries_s,
                    radii=radii_s,
                    metric=metric,
                    table=table_s,
                    plans=plans,
                    points=points,
                    counts=counts_s,
                    dmin=dmin_s,
                    trace=tracer is not None,
                )
                assembled, assemble_io = self._worker_pool.map_sharded(
                    assemble_range_shard, range(n_queries),
                    task=assemble_task,
                )
                assembled = self._split_assemble_records(
                    tracer, assembled
                )
                results = self._apply_degraded_effects(assembled)
                if refine_span is not None and any(
                    r.degraded for r in results
                ):
                    refine_span.attrs["degraded"] = True
        finally:
            if arena is not None:
                arena.dispose()
        stats = self._batch_stats(
            n_queries, before, pool_before, fault_before, cache,
            exact_store, plan_io.merged_with(assemble_io),
        )
        self._observe_batch(stats, results, k=None)
        return BatchResult(queries=results, stats=stats)

    # ------------------------------------------------------------------
    # Shared accounting
    # ------------------------------------------------------------------
    def _split_assemble_records(self, tracer, assembled) -> list:
        """Peel worker span records off assemble-phase outputs.

        With tracing on, assemble kernels return ``(result,
        n_intervals, records)`` triples; this stitches the records into
        the live trace (query order) and hands back the plain pairs
        the accounting code expects.
        """
        if tracer is None:
            return assembled
        _stitch_worker_records(
            tracer, "assemble",
            [entry[2] if len(entry) > 2 else () for entry in assembled],
        )
        return [entry[:2] for entry in assembled]

    def _apply_degraded_effects(
        self, assembled: list[tuple[BatchQueryResult, int]]
    ) -> list[BatchQueryResult]:
        """Apply each query's degraded-mode side effects, in query order.

        Workers return pure results plus the count of interval
        fallbacks they computed; this coordinator pass feeds the fault
        context's session counters and the registry instruments exactly
        as the serial engine did, so counter values cannot depend on
        scheduling -- of threads or of processes.
        """
        ctx = self.tree._fault_ctx
        results = []
        for result, n_intervals in assembled:
            if n_intervals:
                ctx.degraded_results += n_intervals
                if REGISTRY.enabled:
                    DEGRADED_RESULTS.inc(n_intervals)
            if result.lost_pages:
                ctx.lost_pages += len(result.lost_pages)
                if REGISTRY.enabled:
                    LOST_PAGES.inc(len(result.lost_pages))
            results.append(result)
        return results

    def _pool_counters(self) -> tuple[int, int]:
        if self.pool is None:
            return (0, 0)
        return (self.pool.hits, self.pool.misses)

    def _fault_counters(self) -> tuple[int, int, int, int]:
        ctx = self.tree._fault_ctx
        if ctx is None:
            return (0, 0, 0, 0)
        return (
            ctx.retries,
            ctx.quarantined,
            ctx.degraded_results,
            ctx.lost_pages,
        )

    def _batch_stats(
        self, n_queries, before, pool_before, fault_before, cache,
        exact_store, worker_io: IOStats | None = None,
    ) -> BatchStats:
        tree = self.tree
        io = io_delta(before, io_snapshot(tree))
        if worker_io is not None:
            # Workers charge no simulated I/O by design (the ledgers
            # exist so the merge discipline is exercised and pinned);
            # merging keeps the accounting honest if that ever changes.
            io = io.merged_with(worker_io)
        if self.pool is None:
            hits = misses = 0
        else:
            hits = self.pool.hits - pool_before[0]
            misses = self.pool.misses - pool_before[1]
        fault_after = self._fault_counters()
        return BatchStats(
            n_queries=n_queries,
            io=io,
            pages_read=cache.pages_fetched,
            refinements=exact_store.refinements,
            bytes_transferred=io.blocks_read
            * tree.disk.model.block_size,
            pool_hits=hits,
            pool_misses=misses,
            retries=fault_after[0] - fault_before[0],
            quarantined=fault_after[1] - fault_before[1],
            degraded_results=fault_after[2] - fault_before[2],
            lost_pages=fault_after[3] - fault_before[3],
            decoded_pages_reused=cache.pages_cached,
            workers=self.workers,
        )

    def _observe_batch(
        self,
        stats: BatchStats,
        results: list[BatchQueryResult],
        k: int | None,
    ) -> None:
        """Feed registry instruments and the drift monitor (kNN only).

        Physical I/O already landed in the registry through the
        simulated disk; this records the engine-level view (batch and
        per-query shape) plus predicted-vs-actual drift samples.  The
        cost model predicts kNN queries, so range batches (``k=None``)
        record no drift.
        """
        if not REGISTRY.enabled or stats.n_queries == 0:
            return
        BATCHES.inc()
        BATCH_QUERIES.inc(stats.n_queries)
        per_query_seconds = stats.io.elapsed / stats.n_queries
        for result in results:
            QUERY_SECONDS.observe(per_query_seconds)
            if k is not None:
                _DRIFT.observe_query(
                    self.tree,
                    k,
                    actual_pages=result.stats.candidate_pages,
                    actual_seconds=per_query_seconds,
                )
