"""Batch execution of kNN and range queries over one IQ-tree.

The single-query algorithms in :mod:`repro.core.search` pay the full
index walk per query: a directory scan, a best-first page schedule, and
one third-level look-up per refined point.  Serving heavy traffic means
amortizing all three across a *batch* of queries, which is what
:class:`QueryEngine` does:

* the first-level directory is scanned **once per batch**, and the MBR
  mindist/maxdist of *all* queries against *all* pages are computed in
  one vectorized numpy pass (:func:`~repro.geometry.mbr.mindist_matrix`);
* the union of every query's candidate pages is fetched through **one**
  optimal batched transfer (Section 2 strategy) and each page is decoded
  at most once per batch -- same-width pages through the bulk bit-unpack
  entry point -- so a page needed by five queries is read and unpacked
  once, not five times;
* third-level exact-coordinate refinements of all queries are collected
  and fetched through **one** batched plan
  (:func:`~repro.storage.scheduler.plan_batched_fetch`) over the union
  of their blocks.

kNN batches use a two-phase filter-and-refine plan (the VA-file
discipline applied to the IQ-tree): the directory maxdist matrix yields
a per-query guaranteed radius (the smallest maxdist prefix covering
``k`` points), every page whose mindist is inside it is a candidate,
and after decoding, the k-th smallest per-point *upper* bound prunes
the refinement set while keeping the exact answer -- any true neighbor
has a lower bound below that threshold.  Results are exact and agree
with :func:`repro.core.search.nearest_neighbors` / ``range_search``.

An optional shared :class:`~repro.storage.cache.BufferPool` spans
batches (and possibly several indexes), so hot directory and data
blocks stay resident across calls; an optional
:class:`~repro.engine.page_cache.DecodedPageCache` extends the
amortization one level up, keeping *decoded* pages (and their cell
bounds) resident across batches under a byte budget.

With ``workers > 1`` the per-query phases -- candidate bounding and
result assembly -- are sharded across a
:class:`~repro.engine.concurrent.WorkerPool`.  Every simulated-I/O
charge (directory scan, page fetch, third-level fetch) and every
side effect on shared state (fault-context counters, registry
instruments) stays on the coordinator thread and is applied in query
order, so results, the I/O ledger, and the observability counters are
bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.search import (
    KBest,
    certain_mask,
    checked_queries,
    io_delta,
    io_snapshot,
    next_query_id,
    raise_query_error,
)
from repro.core.tree import IQTree
from repro.engine.concurrent import WorkerPool
from repro.engine.decode import ExactBatchStore, PageDecodeCache
from repro.engine.stats import BatchStats, QueryStats
from repro.exceptions import SearchError, StorageError
from repro.obs.drift import MONITOR as _DRIFT
from repro.obs.instruments import (
    BATCH_QUERIES,
    BATCHES,
    DEGRADED_RESULTS,
    LOST_PAGES,
    QUERY_SECONDS,
    REGISTRY,
)
from repro.obs.tracing import span as obs_span
from repro.geometry.mbr import (
    maxdist_matrix,
    maxdist_to_boxes,
    mindist_matrix,
    mindist_to_boxes,
)
from repro.storage.cache import BufferPool
from repro.storage.disk import IOStats
from repro.storage.runtime_faults import LostPage

__all__ = [
    "QueryEngine",
    "BatchQueryResult",
    "BatchResult",
]


@dataclass
class BatchQueryResult:
    """Answer to one query of a batch.

    ``ids``/``distances`` are sorted ascending by distance, exactly as
    the single-query search APIs return them; ``stats`` records the
    logical work this query caused.  The degraded-mode fields mirror
    :class:`~repro.core.search.NNResult`: ``certain`` flags which
    results are exact, ``intervals`` carries the ``(mindist, maxdist)``
    bound of each uncertain result, and ``lost_pages`` reports
    second-level pages this query could not read at all.
    """

    ids: np.ndarray
    distances: np.ndarray
    stats: QueryStats
    certain: np.ndarray | None = None
    intervals: dict[int, tuple[float, float]] | None = None
    lost_pages: tuple = ()
    degraded: bool = False


@dataclass
class BatchResult:
    """All per-query answers of a batch plus the shared batch cost."""

    queries: list[BatchQueryResult]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, index: int) -> BatchQueryResult:
        return self.queries[index]


class QueryEngine:
    """Executes query batches against one IQ-tree.

    Parameters
    ----------
    tree:
        The index to serve.
    pool:
        Optional buffer pool: a
        :class:`~repro.storage.cache.BufferPool` instance (possibly
        shared with other engines/indexes on the same disk) or an
        integer capacity in blocks.  When omitted, a pool already
        attached to the tree is used; when the tree has none, reads go
        straight to the simulated disk.
    workers:
        Worker threads the per-query phases shard over (default 1 =
        serial).  Any count yields identical results, ledgers, and
        counters; see the module docstring.
    decode_cache:
        Optional cross-batch decoded-page cache: a
        :class:`~repro.engine.page_cache.DecodedPageCache` or an
        integer byte budget, attached to the tree via
        :meth:`~repro.core.tree.IQTree.use_decoded_cache`.  When
        omitted, a cache already attached to the tree is used.
    """

    def __init__(
        self,
        tree: IQTree,
        pool: BufferPool | int | None = None,
        workers: int = 1,
        decode_cache=None,
    ):
        self.tree = tree
        if pool is not None:
            self.pool = tree.use_buffer_pool(pool)
        else:
            self.pool = tree._pool
        if decode_cache is not None:
            self.decode_cache = tree.use_decoded_cache(decode_cache)
        else:
            self.decode_cache = tree._decoded_cache
        self._worker_pool = WorkerPool(workers)
        self.workers = self._worker_pool.workers

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker threads down (the engine stays usable)."""
        self._worker_pool.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # kNN batches
    # ------------------------------------------------------------------
    def knn_batch(self, queries: np.ndarray, k: int = 1) -> BatchResult:
        """Exact k-nearest-neighbor search for a batch of queries.

        With a fault context attached to the tree
        (``tree.use_fault_tolerance()``), unreadable data degrades the
        affected results (see :class:`BatchQueryResult`) instead of
        aborting the batch; without one, storage failures surface as
        :class:`~repro.exceptions.QueryDataError`.
        """
        tree = self.tree
        if k < 1:
            raise SearchError("k must be at least 1")
        tree._ensure_clean()
        if k > tree.n_points:
            raise SearchError(
                f"k={k} exceeds the {tree.n_points} stored points"
            )
        queries = checked_queries(tree, queries)
        batch_id = next_query_id()
        try:
            return self._knn_batch_impl(queries, k)
        except StorageError as exc:
            raise_query_error(exc, tree, batch_id)

    def _knn_batch_impl(self, queries: np.ndarray, k: int) -> BatchResult:
        tree = self.tree
        ctx = tree._fault_ctx
        n_queries = queries.shape[0]
        before = io_snapshot(tree)
        pool_before = self._pool_counters()
        fault_before = self._fault_counters()
        metric = tree.metric

        with obs_span(
            "directory-scan", disk=tree.disk, pages=tree.n_pages
        ):
            tree._charge_directory_scan()
            dmin = mindist_matrix(
                queries, tree._lowers, tree._uppers, metric
            )
            dmax = maxdist_matrix(
                queries, tree._lowers, tree._uppers, metric
            )
        with obs_span("schedule", disk=tree.disk, queries=n_queries):
            radii = self._guarantee_radii(dmax, k)
            cand_mask = dmin <= radii[:, None]

        cache = PageDecodeCache(tree)
        # "fetch" and "decode" spans open inside load(); all simulated
        # I/O of the batch happens here and in fetch_all below, on this
        # coordinator thread.
        cache.load(np.flatnonzero(cand_mask.any(axis=0)))
        cache.ensure_bounds()

        with obs_span("refine", disk=tree.disk) as refine_span:
            # Phase 1 (workers, pure): per-query point-level bounds;
            # collect the refinement set (quantized points whose lower
            # bound is within the k-th smallest upper bound).
            def plan_shard(indices, _ledger):
                out = []
                for i in indices:
                    cand = np.flatnonzero(cand_mask[i])
                    if ctx is not None and cache.lost_pages:
                        lost = [
                            p for p in cand.tolist() if cache.is_lost(p)
                        ]
                        cand = np.array(
                            [
                                p
                                for p in cand.tolist()
                                if not cache.is_lost(p)
                            ],
                            dtype=np.int64,
                        )
                    else:
                        lost = []
                    plan = self._plan_knn_query(
                        queries[i], k, cand, cache, metric
                    )
                    plan["lost"] = lost
                    plan["candidate_pages"] = int(cand_mask[i].sum())
                    out.append(plan)
                return out

            plans, plan_io = self._worker_pool.map_sharded(
                plan_shard, range(n_queries)
            )
            all_requests: set[tuple[int, int]] = set()
            for plan in plans:
                all_requests.update(plan["refine"])

            # Phase 2 (coordinator): one batched third-level fetch for
            # every query.  Unreadable records are absent from the map.
            exact_store = ExactBatchStore(tree)
            points = exact_store.fetch_all(all_requests)
            if refine_span is not None:
                refine_span.attrs["records"] = len(all_requests)

            # Phase 3 (workers, pure): per-query result assembly.
            def assemble_shard(indices, _ledger):
                out = []
                for i in indices:
                    plan = plans[i]
                    best = KBest(k)
                    intervals: dict[int, tuple[float, float]] = {}
                    best.offer_many(
                        plan["exact_dists"], plan["exact_ids"]
                    )
                    dist_of = self._refined_distances(
                        queries[i], plan["refine"], points, metric
                    )
                    for key in plan["refine"]:
                        if key in dist_of:
                            best.offer(dist_of[key], points[key][1])
                        else:
                            pid, lo, hi = self._interval_for(
                                queries[i], key, cache, metric
                            )
                            intervals[pid] = (lo, hi)
                            best.offer(hi, pid)
                    ids, dists = best.sorted_results()
                    lost_records = tuple(
                        LostPage(
                            page=int(p),
                            n_points=int(tree._counts[p]),
                            mindist=float(dmin[i, p]),
                            maxdist=float(dmax[i, p]),
                        )
                        for p in plan["lost"]
                    )
                    result = self._assemble_result(
                        ids, dists, intervals, lost_records,
                        QueryStats(
                            candidate_pages=plan["candidate_pages"],
                            candidate_points=plan["candidate_points"],
                            refinements=len(plan["refine"]),
                        ),
                    )
                    out.append((result, len(intervals)))
                return out

            assembled, assemble_io = self._worker_pool.map_sharded(
                assemble_shard, range(n_queries)
            )
            results = self._apply_degraded_effects(assembled)
            if refine_span is not None and any(r.degraded for r in results):
                refine_span.attrs["degraded"] = True
        stats = self._batch_stats(
            n_queries, before, pool_before, fault_before, cache,
            exact_store, plan_io.merged_with(assemble_io),
        )
        self._observe_batch(stats, results, k=k)
        return BatchResult(queries=results, stats=stats)

    def _plan_knn_query(self, query, k, pages, cache, metric) -> dict:
        """Bound every candidate point of one query; pick refinements."""
        exact_dists: list[np.ndarray] = []
        exact_ids: list[np.ndarray] = []
        quant_lowers: list[np.ndarray] = []
        quant_keys: list[tuple[int, int]] = []
        uppers: list[np.ndarray] = []
        candidate_points = 0
        for page in pages.tolist():
            handle = cache.handle(page)
            if handle.points is not None:
                dists = metric.distances(query, handle.points)
                candidate_points += dists.size
                exact_dists.append(dists)
                exact_ids.append(handle.ids)
                uppers.append(dists)
                continue
            lo, up = cache.cell_bounds(page)
            lower_b = mindist_to_boxes(query, lo, up, metric)
            upper_b = maxdist_to_boxes(query, lo, up, metric)
            candidate_points += lower_b.size
            quant_lowers.append(lower_b)
            quant_keys.extend(
                (page, local) for local in range(lower_b.size)
            )
            uppers.append(upper_b)
        all_uppers = (
            np.concatenate(uppers) if uppers else np.empty(0)
        )
        if all_uppers.size >= k:
            tau = np.partition(all_uppers, k - 1)[k - 1]
        else:
            tau = np.inf
        refine: list[tuple[int, int]] = []
        if quant_lowers:
            lowers_cat = np.concatenate(quant_lowers)
            for idx in np.flatnonzero(lowers_cat <= tau).tolist():
                refine.append(quant_keys[idx])
        return {
            "exact_dists": (
                np.concatenate(exact_dists) if exact_dists else np.empty(0)
            ),
            "exact_ids": (
                np.concatenate(exact_ids)
                if exact_ids
                else np.empty(0, dtype=np.int64)
            ),
            "refine": refine,
            "candidate_points": candidate_points,
        }

    @staticmethod
    def _refined_distances(query, refine, points, metric) -> dict:
        """Exact distances of one query's available refinements.

        One vectorized ``metric.distances`` call over the fetched
        records (bitwise identical to per-point ``metric.distance``:
        the reduction runs over the same axis in the same order).
        """
        avail = [key for key in refine if key in points]
        if not avail:
            return {}
        coords = np.array([points[key][0] for key in avail])
        dists = metric.distances(query, coords)
        return {key: float(d) for key, d in zip(avail, dists)}

    def _interval_for(
        self, query, key, cache, metric
    ) -> tuple[int, float, float]:
        """A point's cell interval (its record was unreadable).

        Pure: returns ``(id, mindist, maxdist)`` -- the interval
        provably contains the exact distance, and ``maxdist`` is a
        sound conservative ranking distance.  Fault-context counters
        and registry instruments are applied later, on the coordinator,
        in query order (:meth:`_apply_degraded_effects`).
        """
        page, local = key
        lo_box, up_box = cache.cell_bounds(page)
        lo = float(
            mindist_to_boxes(
                query, lo_box[local : local + 1],
                up_box[local : local + 1], metric,
            )[0]
        )
        hi = float(
            maxdist_to_boxes(
                query, lo_box[local : local + 1],
                up_box[local : local + 1], metric,
            )[0]
        )
        return int(self.tree._part_ids[page][local]), lo, hi

    def _assemble_result(
        self, ids, dists, intervals, lost_records, stats
    ) -> BatchQueryResult:
        """Build one BatchQueryResult, attaching degraded-mode fields.

        Pure (safe on worker threads): shared-state side effects happen
        in :meth:`_apply_degraded_effects` on the coordinator.
        """
        degraded = bool(intervals or lost_records)
        certain = None
        result_intervals = None
        if degraded:
            certain = certain_mask(ids, intervals)
            result_intervals = {
                pid: intervals[pid]
                for pid in ids.tolist()
                if pid in intervals
            }
        return BatchQueryResult(
            ids=ids,
            distances=dists,
            stats=stats,
            certain=certain,
            intervals=result_intervals,
            lost_pages=lost_records,
            degraded=degraded,
        )

    def _apply_degraded_effects(
        self, assembled: list[tuple[BatchQueryResult, int]]
    ) -> list[BatchQueryResult]:
        """Apply each query's degraded-mode side effects, in query order.

        Workers return pure results plus the count of interval
        fallbacks they computed; this coordinator pass feeds the fault
        context's session counters and the registry instruments exactly
        as the serial engine did, so counter values cannot depend on
        thread scheduling.
        """
        ctx = self.tree._fault_ctx
        results = []
        for result, n_intervals in assembled:
            if n_intervals:
                ctx.degraded_results += n_intervals
                if REGISTRY.enabled:
                    DEGRADED_RESULTS.inc(n_intervals)
            if result.lost_pages:
                ctx.lost_pages += len(result.lost_pages)
                if REGISTRY.enabled:
                    LOST_PAGES.inc(len(result.lost_pages))
            results.append(result)
        return results

    def _guarantee_radii(self, dmax: np.ndarray, k: int) -> np.ndarray:
        """Per-query radius guaranteed to contain at least k points.

        For each query, pages are taken in ascending maxdist order until
        their point counts cover ``k``; the last maxdist bounds the k-th
        neighbor from above, so any page whose mindist exceeds it can be
        pruned before any data page is read.  When fewer than ``k``
        points are live (deletions), nothing can be pruned and the
        radius is infinite.
        """
        counts = self.tree._counts
        order = np.argsort(dmax, axis=1, kind="stable")
        cum = np.cumsum(np.take(counts, order), axis=1)
        covered = cum >= k
        radii = np.full(dmax.shape[0], np.inf)
        reached = covered.any(axis=1)
        if np.any(reached):
            pos = np.argmax(covered[reached], axis=1)
            rows = np.flatnonzero(reached)
            radii[rows] = dmax[rows, order[rows, pos]]
        return radii

    # ------------------------------------------------------------------
    # Range batches
    # ------------------------------------------------------------------
    def range_batch(self, queries: np.ndarray, radius) -> BatchResult:
        """Range search (all points within a radius) for a batch.

        ``radius`` is one scalar shared by every query or an array of
        per-query radii, shape ``(q,)``.  Degraded-mode semantics match
        :meth:`knn_batch`: uncertain points whose cell overlaps the
        radius are *included* (marked via ``certain``/``intervals``),
        and wholly lost pages are reported with an infinite maxdist
        because their contribution cannot be bounded.
        """
        tree = self.tree
        tree._ensure_clean()
        queries = checked_queries(tree, queries)
        n_queries = queries.shape[0]
        radii = np.broadcast_to(
            np.asarray(radius, dtype=np.float64), (n_queries,)
        )
        if np.any(radii < 0) or not np.all(np.isfinite(radii)):
            raise SearchError("radius must be non-negative and finite")
        batch_id = next_query_id()
        try:
            return self._range_batch_impl(queries, radii)
        except StorageError as exc:
            raise_query_error(exc, tree, batch_id)

    def _range_batch_impl(
        self, queries: np.ndarray, radii: np.ndarray
    ) -> BatchResult:
        tree = self.tree
        ctx = tree._fault_ctx
        n_queries = queries.shape[0]
        before = io_snapshot(tree)
        pool_before = self._pool_counters()
        fault_before = self._fault_counters()
        metric = tree.metric

        with obs_span(
            "directory-scan", disk=tree.disk, pages=tree.n_pages
        ):
            tree._charge_directory_scan()
            dmin = mindist_matrix(
                queries, tree._lowers, tree._uppers, metric
            )
        with obs_span("schedule", disk=tree.disk, queries=n_queries):
            cand_mask = dmin <= radii[:, None]

        cache = PageDecodeCache(tree)
        # "fetch" and "decode" spans open inside load().
        cache.load(np.flatnonzero(cand_mask.any(axis=0)))
        cache.ensure_bounds()

        with obs_span("refine", disk=tree.disk) as refine_span:
            def plan_shard(indices, _ledger):
                out = []
                for i in indices:
                    cand = np.flatnonzero(cand_mask[i])
                    if ctx is not None and cache.lost_pages:
                        lost = [
                            p for p in cand.tolist() if cache.is_lost(p)
                        ]
                        cand = np.array(
                            [
                                p
                                for p in cand.tolist()
                                if not cache.is_lost(p)
                            ],
                            dtype=np.int64,
                        )
                    else:
                        lost = []
                    plan = self._plan_range_query(
                        queries[i], float(radii[i]), cand, cache, metric
                    )
                    plan["lost"] = lost
                    plan["candidate_pages"] = int(cand_mask[i].sum())
                    out.append(plan)
                return out

            plans, plan_io = self._worker_pool.map_sharded(
                plan_shard, range(n_queries)
            )
            all_requests: set[tuple[int, int]] = set()
            for plan in plans:
                all_requests.update(plan["refine"])

            exact_store = ExactBatchStore(tree)
            points = exact_store.fetch_all(all_requests)
            if refine_span is not None:
                refine_span.attrs["records"] = len(all_requests)

            def assemble_shard(indices, _ledger):
                out = []
                for i in indices:
                    plan = plans[i]
                    intervals: dict[int, tuple[float, float]] = {}
                    ref_ids: list[int] = []
                    ref_dists: list[float] = []
                    dist_of = self._refined_distances(
                        queries[i], plan["refine"], points, metric
                    )
                    for key in plan["refine"]:
                        if key in dist_of:
                            dist = dist_of[key]
                            if dist <= radii[i]:
                                ref_ids.append(points[key][1])
                                ref_dists.append(dist)
                        else:
                            # Unreadable record whose cell overlaps the
                            # ball: include it conservatively at its
                            # cell maxdist, flagged uncertain.
                            pid, lo, hi = self._interval_for(
                                queries[i], key, cache, metric
                            )
                            intervals[pid] = (lo, hi)
                            ref_ids.append(pid)
                            ref_dists.append(hi)
                    found_ids = np.concatenate(
                        [
                            plan["exact_ids"],
                            np.array(ref_ids, dtype=np.int64),
                        ]
                    )
                    found_dists = np.concatenate(
                        [
                            plan["exact_dists"],
                            np.array(ref_dists, dtype=np.float64),
                        ]
                    )
                    order = np.argsort(found_dists, kind="stable")
                    # A lost page may hold any number of in-range
                    # points; its contribution cannot be bounded.
                    lost_records = tuple(
                        LostPage(
                            page=int(p),
                            n_points=int(tree._counts[p]),
                            mindist=float(dmin[i, p]),
                            maxdist=float("inf"),
                        )
                        for p in plan["lost"]
                    )
                    result = self._assemble_result(
                        found_ids[order],
                        found_dists[order],
                        intervals,
                        lost_records,
                        QueryStats(
                            candidate_pages=plan["candidate_pages"],
                            candidate_points=plan["candidate_points"],
                            refinements=len(plan["refine"]),
                        ),
                    )
                    out.append((result, len(intervals)))
                return out

            assembled, assemble_io = self._worker_pool.map_sharded(
                assemble_shard, range(n_queries)
            )
            results = self._apply_degraded_effects(assembled)
            if refine_span is not None and any(r.degraded for r in results):
                refine_span.attrs["degraded"] = True
        stats = self._batch_stats(
            n_queries, before, pool_before, fault_before, cache,
            exact_store, plan_io.merged_with(assemble_io),
        )
        self._observe_batch(stats, results, k=None)
        return BatchResult(queries=results, stats=stats)

    def _plan_range_query(
        self, query, radius, pages, cache, metric
    ) -> dict:
        """Classify one query's candidate points for a range search."""
        exact_ids: list[np.ndarray] = []
        exact_dists: list[np.ndarray] = []
        refine: list[tuple[int, int]] = []
        candidate_points = 0
        for page in pages.tolist():
            handle = cache.handle(page)
            if handle.points is not None:
                dists = metric.distances(query, handle.points)
                candidate_points += dists.size
                inside = dists <= radius
                exact_ids.append(
                    handle.ids[inside].astype(np.int64, copy=False)
                )
                exact_dists.append(
                    dists[inside].astype(np.float64, copy=False)
                )
                continue
            lo, up = cache.cell_bounds(page)
            lower_b = mindist_to_boxes(query, lo, up, metric)
            candidate_points += lower_b.size
            refine.extend(
                (page, int(local))
                for local in np.flatnonzero(lower_b <= radius)
            )
        return {
            "exact_ids": (
                np.concatenate(exact_ids)
                if exact_ids
                else np.empty(0, dtype=np.int64)
            ),
            "exact_dists": (
                np.concatenate(exact_dists)
                if exact_dists
                else np.empty(0)
            ),
            "refine": refine,
            "candidate_points": candidate_points,
        }

    # ------------------------------------------------------------------
    # Shared accounting
    # ------------------------------------------------------------------
    def _pool_counters(self) -> tuple[int, int]:
        if self.pool is None:
            return (0, 0)
        return (self.pool.hits, self.pool.misses)

    def _fault_counters(self) -> tuple[int, int, int, int]:
        ctx = self.tree._fault_ctx
        if ctx is None:
            return (0, 0, 0, 0)
        return (
            ctx.retries,
            ctx.quarantined,
            ctx.degraded_results,
            ctx.lost_pages,
        )

    def _batch_stats(
        self, n_queries, before, pool_before, fault_before, cache,
        exact_store, worker_io: IOStats | None = None,
    ) -> BatchStats:
        tree = self.tree
        io = io_delta(before, io_snapshot(tree))
        if worker_io is not None:
            # Workers charge no simulated I/O by design (the ledgers
            # exist so the merge discipline is exercised and pinned);
            # merging keeps the accounting honest if that ever changes.
            io = io.merged_with(worker_io)
        if self.pool is None:
            hits = misses = 0
        else:
            hits = self.pool.hits - pool_before[0]
            misses = self.pool.misses - pool_before[1]
        fault_after = self._fault_counters()
        return BatchStats(
            n_queries=n_queries,
            io=io,
            pages_read=cache.pages_fetched,
            refinements=exact_store.refinements,
            bytes_transferred=io.blocks_read
            * tree.disk.model.block_size,
            pool_hits=hits,
            pool_misses=misses,
            retries=fault_after[0] - fault_before[0],
            quarantined=fault_after[1] - fault_before[1],
            degraded_results=fault_after[2] - fault_before[2],
            lost_pages=fault_after[3] - fault_before[3],
            decoded_pages_reused=cache.pages_cached,
            workers=self.workers,
        )

    def _observe_batch(
        self,
        stats: BatchStats,
        results: list[BatchQueryResult],
        k: int | None,
    ) -> None:
        """Feed registry instruments and the drift monitor (kNN only).

        Physical I/O already landed in the registry through the
        simulated disk; this records the engine-level view (batch and
        per-query shape) plus predicted-vs-actual drift samples.  The
        cost model predicts kNN queries, so range batches (``k=None``)
        record no drift.
        """
        if not REGISTRY.enabled or stats.n_queries == 0:
            return
        BATCHES.inc()
        BATCH_QUERIES.inc(stats.n_queries)
        per_query_seconds = stats.io.elapsed / stats.n_queries
        for result in results:
            QUERY_SECONDS.observe(per_query_seconds)
            if k is not None:
                _DRIFT.observe_query(
                    self.tree,
                    k,
                    actual_pages=result.stats.candidate_pages,
                    actual_seconds=per_query_seconds,
                )
