"""Sharded scatter-gather serving over a partitioned IQ-tree.

The paper's flat first-level directory makes the page its natural unit
of distribution: every page is one MBR entry plus one quantized block
plus (optionally) one exact-record run, with no cross-page structure.
:class:`ShardRouter` exploits that to split one built tree into ``N``
independent shard trees -- each a complete three-level IQ-tree over a
contiguous slice of the MBR-sorted directory, laid out on its own
simulated disk -- and serves kNN/range batches scatter-gather style:

* **Partitioning rule.**  Pages are ordered by MBR centroid
  (lexicographic across dimensions, page index as the tie-break) and
  cut into ``N`` contiguous runs of near-equal page counts; within a
  run, pages keep their original layout order.  Sorting groups
  spatially close pages onto the same shard (which is what makes
  pruning effective on clustered workloads); preserving the original
  within-shard order makes a 1-shard router lay out byte-identically to
  the source tree.

* **Global bound pruning.**  The router keeps an in-memory copy of the
  *global* directory (every shard's MBRs), so it can compute the same
  guarantee radius the single-tree engine would -- the smallest maxdist
  prefix covering ``k`` points, taken over **all** shards -- before any
  shard is contacted.  Shards are visited sequentially in ascending
  best-mindist order (batch average, shard index as tie-break); after
  each shard responds, the per-query bound tightens to the k-th
  smallest distance collected so far, and a later shard whose best
  mindist exceeds a query's running bound is never contacted for that
  query.  The bound is also handed to each contacted shard as that
  engine's ``radius_cap``, so a shard never examines pages the global
  view already pruned.  Both uses are sound: the bound is always a
  valid upper bound on the k-th distance of the final merged answer, so
  pruned pages/shards provably cannot contribute.

* **Deterministic merge.**  Per-shard answers, ``IOStats`` ledgers,
  ``BatchStats``, and observability counters are merged *in shard-visit
  order* on the router (the same discipline the worker pool applies to
  its shard ledgers), and all shards execute through **one** shared
  :class:`~repro.engine.concurrent.WorkerPool`.  Results and counters
  are therefore bit-identical for any worker count and either backend,
  and the *answers* are identical to the single-tree engine for any
  shard count.

* **Failover.**  A dead shard (``kill_shard``) -- or one whose engine
  raises a storage/query-data error mid-batch, e.g. under fault
  injection without a fault context -- degrades instead of failing the
  batch: every page of that shard that could still have contributed to
  a query (global mindist within the query's running bound) is reported
  as a :class:`~repro.storage.runtime_faults.LostPage` with its global
  page index and global-directory distance bounds, and the merged
  result carries the PR 4 ``certain``/``intervals`` degraded-answer
  contract.  The truth-containment guarantee: every true neighbor is
  either returned exactly or covered by a reported lost page whose
  ``[mindist, maxdist]`` interval contains its distance (the chaos CLI
  checks exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.search import (
    certain_mask,
    checked_queries,
    next_query_id,
)
from repro.core.tree import IQTree
from repro.engine.concurrent import WorkerPool
from repro.engine.engine import (
    BatchResult,
    QueryEngine,
    guarantee_radii,
)
from repro.engine.kernels import BatchQueryResult
from repro.engine.stats import BatchStats, QueryStats
from repro.exceptions import QueryDataError, SearchError, StorageError
from repro.geometry.mbr import maxdist_matrix, mindist_matrix
from repro.obs.instruments import (
    DEAD_SHARD_QUERIES,
    LOST_PAGES,
    REGISTRY,
    ROUTER_BATCHES,
    SHARDS_CONTACTED,
    SHARDS_SKIPPED,
)
from repro.obs.flight import observe_batch
from repro.obs.tracing import span as obs_span
from repro.storage.disk import IOStats, SimulatedDisk
from repro.storage.runtime_faults import LostPage

__all__ = [
    "Shard",
    "ShardBatchTrace",
    "ShardRouter",
    "ShardedBatchResult",
    "partition_directory",
]


def partition_directory(tree: IQTree, n_shards: int) -> list[np.ndarray]:
    """Split a tree's pages into ``n_shards`` spatial groups.

    Pages are ranked by MBR centroid (lexicographic across dimensions,
    original page index as the final tie-break -- a total, data-independent
    order), cut into contiguous runs whose sizes differ by at most one
    (earlier runs take the extra page), and each run is returned in
    original page order.  The result is a pure function of the directory,
    so every router over the same tree produces the same shards.
    """
    tree._ensure_clean()
    n_pages = tree.n_pages
    if n_shards < 1:
        raise SearchError("shards must be at least 1")
    n_shards = min(n_shards, n_pages)
    centroids = (tree._lowers + tree._uppers) / 2.0
    # lexsort keys run least-significant first: feed dimensions reversed
    # so dimension 0 is the primary key; the sort is stable, so fully
    # tied centroids keep original page order.
    rank = np.lexsort(
        tuple(
            centroids[:, d]
            for d in range(centroids.shape[1] - 1, -1, -1)
        )
    )
    base, extra = divmod(n_pages, n_shards)
    groups = []
    start = 0
    for s in range(n_shards):
        size = base + (1 if s < extra else 0)
        members = rank[start : start + size]
        groups.append(np.sort(members))
        start += size
    return groups


@dataclass
class Shard:
    """One shard of a partitioned tree: an independent IQ-tree.

    ``pages`` maps shard-local page indices to global page indices
    (``pages[local] == global``); the shard tree's own directory is the
    corresponding slice of the source directory, laid out on a fresh
    simulated disk of the same model.  ``alive`` is the router's health
    flag -- a dead shard is never contacted, its potential contributions
    are reported as lost pages instead.
    """

    index: int
    tree: IQTree
    pages: np.ndarray
    engine: QueryEngine
    alive: bool = True


@dataclass
class ShardBatchTrace:
    """How the router executed one batch (for benchmarks and the CLI).

    ``contacted[q]`` counts live shards that actually served query
    ``q``; ``skipped`` totals per-query shard visits avoided by bound
    pruning; ``dead`` lists shards that were down (or failed) during
    the batch; ``visit_order`` is the ascending best-mindist order the
    shards were walked in; ``shard_seconds`` is each contacted shard's
    simulated I/O time for the batch, in visit order -- their sum is
    the sequential scatter cost the merged ledger charges, their max is
    the floor a concurrent scatter (which could not tighten bounds
    between shards) would pay.

    When the batch ran inside ``trace_query``, ``spans`` links the
    per-shard ``shard-visit`` spans (in visit order, one per shard
    actually examined) of the ambient trace tree; empty otherwise.
    """

    visit_order: list[int]
    contacted: np.ndarray
    skipped: int
    dead: tuple[int, ...] = ()
    shard_seconds: tuple[float, ...] = ()
    spans: tuple = ()


@dataclass
class ShardedBatchResult(BatchResult):
    """A merged scatter-gather batch answer plus its routing trace."""

    routing: ShardBatchTrace | None = None


@dataclass
class _QueryMerge:
    """Per-query accumulator while shards are visited."""

    ids: list = field(default_factory=list)
    dists: list = field(default_factory=list)
    intervals: dict = field(default_factory=dict)
    lost: list = field(default_factory=list)
    degraded: bool = False
    pages: int = 0
    points: int = 0
    refinements: int = 0

    def absorb(self, result: BatchQueryResult, pages: np.ndarray) -> None:
        """Fold one shard's answer in (shard-visit order).

        ``pages`` maps the shard's local page indices to global ones;
        lost pages are re-addressed so the merged report speaks the
        global directory's language.
        """
        self.ids.append(result.ids)
        self.dists.append(result.distances)
        if result.intervals:
            self.intervals.update(result.intervals)
        for lp in result.lost_pages:
            self.lost.append(
                LostPage(
                    page=int(pages[lp.page]),
                    n_points=lp.n_points,
                    mindist=lp.mindist,
                    maxdist=lp.maxdist,
                )
            )
        self.degraded = self.degraded or result.degraded
        self.pages += result.stats.candidate_pages
        self.points += result.stats.candidate_points
        self.refinements += result.stats.refinements


class _RouterDisk:
    """Read-only composite ledger view over every shard disk.

    The router has no disk of its own -- each shard tree charges its
    private :class:`~repro.storage.disk.SimulatedDisk` -- but tracing
    and flight recording need one coherent clock and ledger for the
    whole scatter-gather.  ``stats`` sums the live shard ledgers, so
    ``trace_query(router)`` sees a timeline where exactly the visited
    shard advances the clock during its visit window (shards execute
    sequentially), keeping sibling shard-visit spans monotone.
    """

    def __init__(self, shards):
        self._shards = shards
        self.model = shards[0].tree.disk.model

    @property
    def stats(self) -> IOStats:
        total = IOStats()
        for shard in self._shards:
            total = total.merged_with(shard.tree.disk.stats)
        return total


class ShardRouter:
    """Scatter-gather serving over ``N`` shards of one IQ-tree.

    Parameters
    ----------
    tree:
        The built source tree.  It is split, not consumed: the router
        re-lays every shard out on its own fresh simulated disk and the
        source tree stays fully usable (the sweep tests compare against
        it).
    shards:
        Shard count (clamped to the page count).
    workers, backend:
        One shared :class:`~repro.engine.concurrent.WorkerPool` sized
        here executes every shard's per-query phases; see
        :class:`~repro.engine.QueryEngine` for the determinism contract.
    pool:
        Optional per-shard buffer-pool capacity in *blocks* (each shard
        owns a private pool -- block addresses are per-disk, so sharing
        one pool across shard disks would alias).
    decode_cache:
        Optional per-shard decoded-page cache budget in *bytes*.
    """

    def __init__(
        self,
        tree: IQTree,
        shards: int,
        workers: int = 1,
        backend: str = "auto",
        pool: int | None = None,
        decode_cache: int | None = None,
    ):
        tree._ensure_clean()
        self.metric = tree.metric
        self.dim = tree.dim
        self._n_rows = tree.n_points
        # The router's copy of the *global* directory: the union of all
        # shard directories, in source-page order.  Routing math over
        # these arrays is in-memory planning state (a routing table),
        # not a charged directory scan -- each contacted shard charges
        # its own first-level scan exactly like a standalone engine.
        self._lowers = tree._lowers.copy()
        self._uppers = tree._uppers.copy()
        self._counts = tree._counts.copy()
        self._worker_pool = WorkerPool(workers, backend=backend)
        self.workers = self._worker_pool.workers

        groups = partition_directory(tree, shards)
        self.shards: list[Shard] = []
        for idx, pages in enumerate(groups):
            shard_tree = IQTree(
                tree._points,
                [tree._partitions[int(g)] for g in pages],
                SimulatedDisk(tree.disk.model),
                tree.metric,
                tree.cost_model,
                None,
                tree.charge_directory,
                codec_mode=tree.codec_mode,
                directory_codec=tree.directory_codec,
            )
            engine = QueryEngine(
                shard_tree,
                pool=pool,
                decode_cache=decode_cache,
                worker_pool=self._worker_pool,
            )
            self.shards.append(
                Shard(index=idx, tree=shard_tree, pages=pages, engine=engine)
            )
        #: composite ledger/clock over every shard disk, for
        #: trace_query(router) and the flight recorder.
        self.disk = _RouterDisk(self.shards)
        self._flight_recorder = None
        # point id -> global page, for truth-containment checks.
        self._page_of: dict[int, int] = {}
        for g, opt in enumerate(tree._partitions):
            for pid in opt.partition.indices.tolist():
                self._page_of[int(pid)] = g

    # ------------------------------------------------------------------
    # Introspection / health
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def backend(self) -> str:
        """The shared worker pool's resolved backend."""
        return self._worker_pool.backend

    def page_of(self, point_id: int) -> int:
        """The global page a point id lives on (truth-containment aid)."""
        return self._page_of[int(point_id)]

    def shard_of(self, point_id: int) -> int:
        """The shard a point id lives on."""
        page = self.page_of(point_id)
        for shard in self.shards:
            if page in shard.pages:
                return shard.index
        raise SearchError(f"point {point_id} maps to no shard")

    def kill_shard(self, index: int) -> None:
        """Take a shard down: queries degrade to lost-page bounds."""
        self.shards[index].alive = False

    def revive_shard(self, index: int) -> None:
        """Bring a dead shard back."""
        self.shards[index].alive = True

    def use_fault_tolerance(self, policy=None) -> list:
        """Attach a fault context to every shard tree; returns them."""
        return [s.tree.use_fault_tolerance(policy) for s in self.shards]

    def use_flight_recorder(self, recorder_or_capacity=64):
        """Attach a flight recorder to the router's batch paths.

        Mirrors :meth:`~repro.core.tree.IQTree.use_flight_recorder`:
        accepts a :class:`~repro.obs.flight.FlightRecorder` or an
        integer ring capacity and returns the recorder.  Recording
        happens at the router level (one merged judgment per batch /
        per query), not per shard.
        """
        from repro.obs.flight import FlightRecorder

        if isinstance(recorder_or_capacity, FlightRecorder):
            recorder = recorder_or_capacity
        else:
            recorder = FlightRecorder(capacity=int(recorder_or_capacity))
        self._flight_recorder = recorder
        return recorder

    def clear_flight_recorder(self) -> None:
        """Detach the flight recorder (its records stay readable)."""
        self._flight_recorder = None

    @property
    def flight_recorder(self):
        """The attached FlightRecorder, or None."""
        return self._flight_recorder

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the shared worker pool down (the router stays usable)."""
        self._worker_pool.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # kNN
    # ------------------------------------------------------------------
    def knn_batch(self, queries: np.ndarray, k: int = 1) -> ShardedBatchResult:
        """Exact scatter-gather kNN, answers identical to one engine."""
        if k < 1:
            raise SearchError("k must be at least 1")
        if k > self._n_rows:
            raise SearchError(
                f"k={k} exceeds the {self._n_rows} stored points"
            )
        queries = checked_queries(self.shards[0].tree, queries)
        if self._flight_recorder is not None:
            return observe_batch(
                self._flight_recorder, self, "knn-batch",
                next_query_id(),
                lambda: self._knn_batch_impl(queries, k),
            )
        return self._knn_batch_impl(queries, k)

    def _knn_batch_impl(
        self, queries: np.ndarray, k: int
    ) -> ShardedBatchResult:
        dmin = mindist_matrix(queries, self._lowers, self._uppers, self.metric)
        dmax = maxdist_matrix(queries, self._lowers, self._uppers, self.metric)
        bound = guarantee_radii(dmax, self._counts, k)
        return self._scatter_gather(
            queries,
            dmin,
            dmax,
            bound,
            run=lambda shard, active: shard.engine.knn_batch(
                queries[active], k=k, radius_cap=bound[active]
            ),
            tighten=lambda merge: self._kth_distance(merge, k),
            lost_maxdist=lambda q, pages: dmax[q, pages],
            top_k=k,
        )

    @staticmethod
    def _kth_distance(merge: _QueryMerge, k: int) -> float:
        """The k-th smallest distance collected so far (inf if < k).

        Interval fallbacks participate at their conservative maxdist,
        which keeps the bound a sound upper limit on the k-th distance
        of the final merged answer.
        """
        if not merge.dists:
            return np.inf
        dists = np.concatenate(merge.dists)
        if dists.size < k:
            return np.inf
        return float(np.partition(dists, k - 1)[k - 1])

    # ------------------------------------------------------------------
    # Range
    # ------------------------------------------------------------------
    def range_batch(self, queries: np.ndarray, radius) -> ShardedBatchResult:
        """Scatter-gather range search; one shard-skip rule: distance."""
        queries = checked_queries(self.shards[0].tree, queries)
        n_queries = queries.shape[0]
        radii = np.ascontiguousarray(
            np.broadcast_to(
                np.asarray(radius, dtype=np.float64), (n_queries,)
            )
        )
        if np.any(radii < 0) or not np.all(np.isfinite(radii)):
            raise SearchError("radius must be non-negative and finite")
        if self._flight_recorder is not None:
            return observe_batch(
                self._flight_recorder, self, "range-batch",
                next_query_id(),
                lambda: self._range_batch_impl(queries, radii),
            )
        return self._range_batch_impl(queries, radii)

    def _range_batch_impl(
        self, queries: np.ndarray, radii: np.ndarray
    ) -> ShardedBatchResult:
        dmin = mindist_matrix(queries, self._lowers, self._uppers, self.metric)
        return self._scatter_gather(
            queries,
            dmin,
            None,
            radii.copy(),
            run=lambda shard, active: shard.engine.range_batch(
                queries[active], radii[active]
            ),
            tighten=None,
            lost_maxdist=lambda q, pages: np.full(len(pages), np.inf),
            top_k=None,
        )

    # ------------------------------------------------------------------
    # The scatter-gather core (shared by kNN and range)
    # ------------------------------------------------------------------
    def _scatter_gather(
        self,
        queries: np.ndarray,
        dmin: np.ndarray,
        dmax: np.ndarray | None,
        bound: np.ndarray,
        run,
        tighten,
        lost_maxdist,
        top_k: int | None,
    ) -> ShardedBatchResult:
        n_queries = queries.shape[0]
        n_shards = len(self.shards)
        # (q, s) best mindist of each shard, from the global directory.
        shard_best = np.empty((n_queries, n_shards))
        for s, shard in enumerate(self.shards):
            shard_best[:, s] = dmin[:, shard.pages].min(axis=1)
        # Ascending best-mindist visit order (batch average; stable, so
        # the shard index breaks ties).  Nearer shards answer first,
        # which is what lets the running bound prune the farther ones.
        visit_order = np.argsort(shard_best.mean(axis=0), kind="stable")

        merges = [_QueryMerge() for _ in range(n_queries)]
        shard_stats: list[BatchStats] = []
        contacted = np.zeros(n_queries, dtype=np.int64)
        skipped = 0
        shard_seconds: list[float] = []
        dead: list[int] = []
        dead_lost_total = 0

        visit_spans: list = []
        for s in visit_order.tolist():
            shard = self.shards[s]
            active = np.flatnonzero(shard_best[:, s] <= bound)
            skipped += n_queries - active.size
            if active.size == 0:
                continue
            result = None
            # The sub-span attributes its I/O to the shard's own disk
            # but is *placed* on the tracer's composite clock, so
            # sibling visits stay monotone; radius_cap snapshots the
            # per-active-query bound in force when the visit started.
            with obs_span(
                "shard-visit",
                disk=shard.tree.disk,
                shard=int(s),
                queries=int(active.size),
                radius_cap=[float(b) for b in bound[active].tolist()],
            ) as visit_span:
                if visit_span is not None:
                    visit_spans.append(visit_span)
                if shard.alive:
                    try:
                        result = run(shard, active)
                    except (StorageError, QueryDataError):
                        # A failing shard is a dead shard for this
                        # batch: degrade exactly like kill_shard, do
                        # not fail the whole scatter-gather.
                        result = None
                if result is None:
                    if s not in dead:
                        dead.append(s)
                    lost_here = self._degrade_dead_shard(
                        shard, active, dmin, bound, merges, lost_maxdist
                    )
                    dead_lost_total += lost_here
                    if visit_span is not None:
                        visit_span.attrs["outcome"] = "dead"
                        visit_span.attrs["lost_pages"] = lost_here
                    continue
                shard_stats.append(result.stats)
                shard_seconds.append(float(result.stats.io.elapsed))
                degraded_here = 0
                lost_here = 0
                for j, q in enumerate(active.tolist()):
                    shard_answer = result.queries[j]
                    if shard_answer.degraded:
                        degraded_here += 1
                    lost_here += len(shard_answer.lost_pages)
                    merges[q].absorb(shard_answer, shard.pages)
                    contacted[q] += 1
                    if tighten is not None:
                        bound[q] = min(bound[q], tighten(merges[q]))
                if visit_span is not None:
                    candidate_pages = sum(
                        answer.stats.candidate_pages
                        for answer in result.queries
                    )
                    visit_span.attrs["outcome"] = (
                        "degraded" if degraded_here else "ok"
                    )
                    visit_span.attrs["pages_read"] = (
                        result.stats.pages_read
                    )
                    visit_span.attrs["pages_pruned"] = (
                        int(active.size) * int(shard.pages.size)
                        - candidate_pages
                    )
                    visit_span.attrs["degraded_queries"] = degraded_here
                    visit_span.attrs["lost_pages"] = lost_here

        results = [
            self._finalize(merge, top_k) for merge in merges
        ]
        stats = BatchStats.merge_shards(
            shard_stats,
            n_queries=n_queries,
            workers=self.workers,
            extra_lost_pages=dead_lost_total,
        )
        if REGISTRY.enabled and n_queries:
            ROUTER_BATCHES.inc()
            SHARDS_SKIPPED.inc(skipped)
            for q in range(n_queries):
                SHARDS_CONTACTED.observe(float(contacted[q]))
        trace = ShardBatchTrace(
            visit_order=visit_order.tolist(),
            contacted=contacted,
            skipped=skipped,
            dead=tuple(sorted(dead)),
            shard_seconds=tuple(shard_seconds),
            spans=tuple(visit_spans),
        )
        return ShardedBatchResult(
            queries=results, stats=stats, routing=trace
        )

    def _degrade_dead_shard(
        self, shard, active, dmin, bound, merges, lost_maxdist
    ) -> int:
        """Report a dead shard's possible contributions as lost pages.

        For each affected query, every page of the shard whose global
        mindist is within the query's *current* bound could still have
        held a result; it is reported with its global page index and
        global-directory distance bounds, mirroring what the engine
        reports for an unreadable page of a live tree.  Returns the
        number of lost-page reports synthesized (for the merged stats).
        """
        synthesized = 0
        affected = 0
        for q in active.tolist():
            pages = shard.pages[
                np.flatnonzero(dmin[q, shard.pages] <= bound[q])
            ]
            if pages.size == 0:
                continue
            maxdists = lost_maxdist(q, pages)
            merge = merges[q]
            for p, hi in zip(pages.tolist(), np.asarray(maxdists).tolist()):
                merge.lost.append(
                    LostPage(
                        page=int(p),
                        n_points=int(self._counts[p]),
                        mindist=float(dmin[q, p]),
                        maxdist=float(hi),
                    )
                )
                synthesized += 1
            merge.degraded = True
            affected += 1
        if REGISTRY.enabled:
            if affected:
                DEAD_SHARD_QUERIES.inc(affected)
            if synthesized:
                LOST_PAGES.inc(synthesized)
        return synthesized

    def _finalize(
        self, merge: _QueryMerge, top_k: int | None
    ) -> BatchQueryResult:
        """Merge one query's per-shard answers into the final result.

        Candidates are concatenated in shard-visit order and re-ranked
        by ``(distance, id)`` -- the same tie-break
        :meth:`~repro.core.search.KBest.sorted_results` uses -- then cut
        to ``top_k`` for kNN (range keeps everything).  Lost pages are
        reported in ascending global page order, matching the engine's
        ascending-candidate order over one directory.
        """
        if merge.ids:
            ids = np.concatenate(merge.ids)
            dists = np.concatenate(merge.dists)
            order = np.lexsort((ids, dists))
            if top_k is not None:
                order = order[:top_k]
            ids = ids[order]
            dists = dists[order]
        else:
            ids = np.empty(0, dtype=np.int64)
            dists = np.empty(0, dtype=np.float64)
        lost = tuple(sorted(merge.lost, key=lambda lp: lp.page))
        degraded = merge.degraded or bool(lost)
        certain = None
        intervals = None
        if degraded:
            certain = certain_mask(ids, merge.intervals)
            intervals = {
                pid: merge.intervals[pid]
                for pid in ids.tolist()
                if pid in merge.intervals
            }
        return BatchQueryResult(
            ids=ids,
            distances=dists,
            stats=QueryStats(
                candidate_pages=merge.pages,
                candidate_points=merge.points,
                refinements=merge.refinements,
            ),
            certain=certain,
            intervals=intervals,
            lost_pages=lost,
            degraded=degraded,
        )
