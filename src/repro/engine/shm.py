"""Zero-copy shipment of large numpy arrays to worker processes.

The process-backed :class:`~repro.engine.concurrent.WorkerPool` must get
a batch's read-only inputs -- decoded code matrices, cell-bound boxes,
query rows -- into its workers.  Pickling them into every task payload
would serialize megabytes on the coordinator per shard; instead the
engine *freezes* them once per batch into a :class:`SharedArena`: a
single memory-backed file (``/dev/shm`` when available, the default
temp directory otherwise) that workers ``mmap`` read-only and wrap in
numpy views without copying.  A frozen array travels inside the task as
a tiny :class:`ArrayRef` descriptor (path, offset, shape, dtype).

The arena is plain-file based on purpose: unlike
:mod:`multiprocessing.shared_memory` it involves no resource-tracker
process (whose attach-side registration is known to misbehave across
fork), cleanup is one ``os.unlink`` by the coordinator, and a worker
holding a mapping of an unlinked arena keeps reading valid memory until
the mapping is dropped -- standard POSIX semantics.

Workers cache their mappings per arena path (an engine reuses one arena
for both phases of a batch), evicting least-recently-used mappings so a
long-lived worker does not accumulate files' worth of address space.

Everything degrades gracefully: if the arena file cannot be written the
caller simply ships the arrays inline (pickle), which is slower but
correct -- :func:`resolve` passes real arrays through untouched.
"""

from __future__ import annotations

import mmap
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["ArrayRef", "SharedArena", "resolve"]

#: preferred directory for arena files (memory-backed on Linux)
_SHM_DIR = "/dev/shm"

#: per-process cache of read-only arena mappings, LRU over paths
_MAPPINGS: OrderedDict[str, mmap.mmap] = OrderedDict()
_MAX_MAPPINGS = 4


@dataclass(frozen=True)
class ArrayRef:
    """A frozen array: where it lives inside an arena file."""

    path: str
    offset: int
    shape: tuple
    dtype: str

    def load(self) -> np.ndarray:
        """A read-only numpy view of the frozen array (no copy)."""
        buf = _mapping_for(self.path)
        arr = np.frombuffer(
            buf,
            dtype=np.dtype(self.dtype),
            count=int(np.prod(self.shape, dtype=np.int64)),
            offset=self.offset,
        )
        return arr.reshape(self.shape)


def _mapping_for(path: str) -> mmap.mmap:
    """The process-local read-only mapping of one arena file."""
    cached = _MAPPINGS.get(path)
    if cached is not None:
        _MAPPINGS.move_to_end(path)
        return cached
    with open(path, "rb") as f:
        mapping = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    _MAPPINGS[path] = mapping
    while len(_MAPPINGS) > _MAX_MAPPINGS:
        _path, old = _MAPPINGS.popitem(last=False)
        try:
            old.close()
        except BufferError:
            # A live numpy view still points into the mapping; the
            # mapping is released when the last view dies instead.
            pass
    return mapping


def resolve(obj):
    """Materialize an :class:`ArrayRef`; pass anything else through."""
    if isinstance(obj, ArrayRef):
        return obj.load()
    return obj


class SharedArena:
    """One write-once arena file holding a batch's frozen arrays.

    Usage: ``put`` every array (returns its :class:`ArrayRef`), then
    ``seal()`` before handing refs to workers, and ``dispose()`` when
    the batch is done.  ``SharedArena.create()`` returns ``None`` when
    no arena file can be created; callers then ship arrays inline.
    """

    def __init__(self, path: str, file):
        self.path = path
        self._file = file
        self._offset = 0
        self.sealed = False
        self.disposed = False

    @classmethod
    def create(cls) -> "SharedArena | None":
        for directory in (_SHM_DIR, None):
            if directory is not None and not os.path.isdir(directory):
                continue
            try:
                fd, path = tempfile.mkstemp(
                    prefix="iq-arena-", suffix=".bin", dir=directory
                )
                return cls(path, os.fdopen(fd, "wb"))
            except OSError:
                continue
        return None

    def put(self, array: np.ndarray) -> ArrayRef:
        """Append one array; returns the descriptor workers load from."""
        if self.sealed:
            raise ValueError("arena is sealed")
        data = np.ascontiguousarray(array)
        ref = ArrayRef(
            path=self.path,
            offset=self._offset,
            shape=tuple(data.shape),
            dtype=data.dtype.str,
        )
        self._file.write(memoryview(data).cast("B"))
        self._offset += data.nbytes
        return ref

    def seal(self) -> None:
        """Flush and close the write handle; refs become loadable."""
        if not self.sealed:
            self._file.flush()
            self._file.close()
            self.sealed = True

    def dispose(self) -> None:
        """Unlink the arena file (mappings already held stay valid).

        Idempotent and unconditional: the unlink happens even when the
        write handle is in a broken state (a worker raising mid-phase
        can leave the coordinator disposing an arena whose ``seal()``
        would fail), so an abnormal batch teardown never leaks arena
        files into ``/dev/shm`` or the temp directory.
        """
        if self.disposed:
            return
        self.disposed = True
        try:
            self.seal()
        except (OSError, ValueError):
            # A failed flush/close must not keep the file on disk; mark
            # the arena sealed so no further writes are attempted.
            self.sealed = True
        try:
            os.unlink(self.path)
        except OSError:
            pass
        # The coordinator may have loaded its own refs (workers=1 runs
        # resolve in-process); drop its cached mapping eagerly.
        mapping = _MAPPINGS.pop(self.path, None)
        if mapping is not None:
            try:
                mapping.close()
            except BufferError:
                pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.dispose()

    def __del__(self):
        # Last-resort finalizer: an arena abandoned by an exception
        # between create() and the dispose() in the engine's finally
        # block (or by a caller without one) is still unlinked when the
        # object is collected.  Never raise from a finalizer.
        try:
            self.dispose()
        except Exception:
            pass
