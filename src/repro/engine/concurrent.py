"""Deterministic worker-pool execution for the batch query engine.

:class:`WorkerPool` shards a batch's per-query work across threads.  The
engine keeps every *simulated-I/O charge* on its coordinator thread (the
directory scan, the batched page fetch, the batched third-level fetch),
so workers only run pure CPU work -- per-query candidate bounding and
result assembly over read-only precomputed state, where the numpy
kernels release the GIL.  That division of labor is what makes the
parallel engine *deterministic*: the simulated-cost ledger and every
observability counter come out bit-identical for any worker count,
which the equivalence tests pin.

Sharding is contiguous and balanced: ``q`` items over ``w`` workers
become at most ``w`` runs of ``ceil``/``floor`` sizes in original order.
Each shard gets its own :class:`~repro.storage.disk.IOStats` ledger;
after the barrier the shard results are concatenated in shard order and
the ledgers are merged in shard order through
:meth:`~repro.storage.disk.IOStats.merged_with`, so even a worker
function that *does* charge its ledger aggregates reproducibly.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, wait
from typing import Callable, Sequence, TypeVar

from repro.exceptions import SearchError
from repro.storage.disk import IOStats

__all__ = ["WorkerPool"]

T = TypeVar("T")


class WorkerPool:
    """A fixed-size thread pool with deterministic sharded mapping.

    Parameters
    ----------
    workers:
        Number of worker threads (at least 1).  With one worker every
        shard runs inline on the calling thread -- no executor, no
        thread hop -- so ``workers=1`` is exactly the serial engine.

    The underlying executor is created lazily on first parallel use and
    reused across batches; :meth:`close` (or use as a context manager)
    shuts it down.
    """

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise SearchError("workers must be at least 1")
        self.workers = int(workers)
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Sharded mapping
    # ------------------------------------------------------------------
    def shard(self, items: Sequence[T]) -> list[Sequence[T]]:
        """Split ``items`` into at most ``workers`` contiguous runs.

        Sizes differ by at most one and earlier shards get the extra
        element, so the split is a pure function of ``(len(items),
        workers)`` -- the same inputs always produce the same shards.
        """
        n = len(items)
        n_shards = min(self.workers, n)
        if n_shards <= 1:
            return [items] if n else []
        base, extra = divmod(n, n_shards)
        shards = []
        start = 0
        for s in range(n_shards):
            size = base + (1 if s < extra else 0)
            shards.append(items[start : start + size])
            start += size
        return shards

    def map_sharded(
        self,
        fn: Callable[[Sequence[T], IOStats], list],
        items: Sequence[T],
    ) -> tuple[list, IOStats]:
        """Run ``fn(shard, ledger)`` over contiguous shards of ``items``.

        Returns ``(results, merged)`` where ``results`` is the
        concatenation of every shard's returned list *in shard order*
        (i.e. original item order) and ``merged`` is the shard ledgers
        merged in the same order.  A worker exception propagates after
        all shards have settled, so no shard is silently dropped.
        """
        shards = self.shard(list(items))
        ledgers = [IOStats() for _ in shards]
        if len(shards) <= 1:
            outputs = [fn(s, led) for s, led in zip(shards, ledgers)]
        else:
            executor = self._ensure_executor()
            futures = [
                executor.submit(fn, s, led)
                for s, led in zip(shards, ledgers)
            ]
            wait(futures)
            outputs = [f.result() for f in futures]
        merged = IOStats()
        for ledger in ledgers:
            merged = merged.merged_with(ledger)
        return [r for out in outputs for r in out], merged

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="iq-worker",
            )
        return self._executor

    def close(self) -> None:
        """Shut the executor down (idempotent; pool stays usable --
        the next parallel call recreates the threads)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self._executor is not None else "idle"
        return f"WorkerPool(workers={self.workers}, {state})"
