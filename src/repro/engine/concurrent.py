"""Deterministic worker-pool execution for the batch query engine.

:class:`WorkerPool` shards a batch's per-query work across workers.  The
engine keeps every *simulated-I/O charge* on its coordinator thread (the
directory scan, the batched page fetch, the batched third-level fetch),
so workers only run pure CPU work -- the per-query kernels of
:mod:`repro.engine.kernels` over read-only precomputed state.  That
division of labor is what makes the parallel engine *deterministic*:
the simulated-cost ledger and every observability counter come out
bit-identical for any worker count and either backend, which the
equivalence tests pin.

Two backends execute the shards:

``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Zero shipping
    cost (shards see the coordinator's arrays by reference), but pure
    Python portions of the kernels serialize on the GIL, so wall-clock
    scaling is limited to the numpy regions that release it.

``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` (``fork`` start
    method when the platform offers it).  Task payloads are pickled
    once per phase on the coordinator; large arrays travel zero-copy
    through a :class:`~repro.engine.shm.SharedArena` when the engine
    froze them.  This is the backend that turns simulated speedup into
    wall-clock speedup on multi-core hosts.  It requires the mapped
    function (and task) to be picklable -- module-level kernels, plain
    data.

``auto`` (the default) resolves to ``process`` for ``workers > 1`` and
to the zero-overhead inline path for ``workers=1``; if the platform
cannot start a process pool, it degrades to ``thread`` (identical
results, reduced wall-clock scaling).

Sharding is contiguous and balanced: ``q`` items over ``w`` workers
become at most ``w`` runs of ``ceil``/``floor`` sizes in original order.
Each shard gets its own :class:`~repro.storage.disk.IOStats` ledger;
after the barrier the shard results are concatenated in shard order and
the ledgers are merged in shard order through
:meth:`~repro.storage.disk.IOStats.merged_with`, so even a worker
function that *does* charge its ledger aggregates reproducibly.  When
several shards fail, the first shard's exception (in shard order) is
raised and every other shard's failure is attached to it as a
``__notes__`` entry -- concurrent failures never vanish.

Tracing rides the same channel: when a ``trace_query`` block is
active, the engine flags its task objects and the kernels return
compact picklable :class:`~repro.obs.tracing.SpanRecord` lists *by
value* inside their ordinary results -- the pool itself carries no
tracing state, no ambient context crosses the process boundary, and
the coordinator stitches the records into the live span tree in query
order after the barrier.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Sequence, TypeVar

from repro.exceptions import SearchError
from repro.storage.disk import IOStats

__all__ = ["WorkerPool"]

T = TypeVar("T")

_BACKENDS = ("auto", "thread", "process")

#: sentinel distinguishing "no task payload" from a None task
_NO_TASK = object()


def _process_shard(blob: bytes, shard) -> tuple[list, IOStats]:
    """Worker-process entry point: run one shard of a pre-pickled task.

    The ``(fn, task, has_task)`` payload is pickled *once* on the
    coordinator and shipped as bytes, so submitting W shards costs one
    serialization, not W.  The shard gets a fresh ledger that travels
    back with the results (cross-process mutation cannot propagate).
    """
    fn, task, has_task = pickle.loads(blob)
    ledger = IOStats()
    if has_task:
        out = fn(task, shard, ledger)
    else:
        out = fn(shard, ledger)
    return out, ledger


class WorkerPool:
    """A fixed-size worker pool with deterministic sharded mapping.

    Parameters
    ----------
    workers:
        Number of workers (at least 1).  With one worker every shard
        runs inline on the calling thread -- no executor, no thread or
        process hop -- so ``workers=1`` is exactly the serial engine.
    backend:
        ``"thread"``, ``"process"``, or ``"auto"`` (default).  See the
        module docstring; any backend yields bit-identical results.

    The underlying executor is created lazily on first parallel use and
    reused across batches; :meth:`close` (or use as a context manager)
    shuts it down.
    """

    def __init__(self, workers: int = 1, backend: str = "auto"):
        if workers < 1:
            raise SearchError("workers must be at least 1")
        if backend not in _BACKENDS:
            raise SearchError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.workers = int(workers)
        self.backend = (
            "process" if backend == "auto" and self.workers > 1
            else "thread" if backend == "auto"
            else backend
        )
        self._executor: Executor | None = None

    # ------------------------------------------------------------------
    # Sharded mapping
    # ------------------------------------------------------------------
    def shard(self, items: Sequence[T]) -> list[Sequence[T]]:
        """Split ``items`` into at most ``workers`` contiguous runs.

        Sizes differ by at most one and earlier shards get the extra
        element, so the split is a pure function of ``(len(items),
        workers)`` -- the same inputs always produce the same shards.
        """
        n = len(items)
        n_shards = min(self.workers, n)
        if n_shards <= 1:
            return [items] if n else []
        base, extra = divmod(n, n_shards)
        shards = []
        start = 0
        for s in range(n_shards):
            size = base + (1 if s < extra else 0)
            shards.append(items[start : start + size])
            start += size
        return shards

    def map_sharded(
        self,
        fn: Callable,
        items: Sequence[T],
        task=_NO_TASK,
    ) -> tuple[list, IOStats]:
        """Run ``fn`` over contiguous shards of ``items``.

        Without ``task`` the worker signature is ``fn(shard, ledger)``;
        with one it is ``fn(task, shard, ledger)`` where ``task`` is an
        arbitrary read-only payload shared by every shard (the process
        backend pickles it exactly once).  Returns ``(results, merged)``
        where ``results`` is the concatenation of every shard's returned
        list *in shard order* (i.e. original item order) and ``merged``
        is the shard ledgers merged in the same order.  Worker
        exceptions propagate after all shards have settled: the first
        failing shard's exception is raised, with every other shard's
        failure recorded on it via ``add_note`` -- no shard failure is
        silently dropped.
        """
        shards = self.shard(list(items))
        has_task = task is not _NO_TASK
        if len(shards) <= 1:
            ledgers = [IOStats() for _ in shards]
            if has_task:
                outputs = [
                    fn(task, s, led) for s, led in zip(shards, ledgers)
                ]
            else:
                outputs = [fn(s, led) for s, led in zip(shards, ledgers)]
        elif self.backend == "process":
            outputs, ledgers = self._run_process(fn, task, has_task, shards)
        else:
            ledgers = [IOStats() for _ in shards]
            executor = self._ensure_executor()
            if has_task:
                futures = [
                    executor.submit(fn, task, s, led)
                    for s, led in zip(shards, ledgers)
                ]
            else:
                futures = [
                    executor.submit(fn, s, led)
                    for s, led in zip(shards, ledgers)
                ]
            outputs = self._settle(futures)
        merged = IOStats()
        for ledger in ledgers:
            merged = merged.merged_with(ledger)
        return [r for out in outputs for r in out], merged

    def _run_process(
        self, fn, task, has_task, shards
    ) -> tuple[list, list[IOStats]]:
        """Ship shards to the process pool; returns (outputs, ledgers)."""
        try:
            blob = pickle.dumps(
                (fn, None if not has_task else task, has_task),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception as exc:
            raise SearchError(
                "the process backend needs a picklable worker function "
                "and task (module-level kernels over plain arrays); "
                f"got: {exc}"
            ) from exc
        # A thread executor may come back when process pools are
        # unavailable on the platform; _process_shard runs identically
        # either way (it is self-contained over the pickled payload).
        executor = self._ensure_executor()
        futures = [
            executor.submit(_process_shard, blob, s) for s in shards
        ]
        settled = self._settle(futures)
        outputs = [out for out, _led in settled]
        ledgers = [led for _out, led in settled]
        return outputs, ledgers

    @staticmethod
    def _settle(futures) -> list:
        """All shard results, aggregating every failure onto the first.

        ``wait`` guarantees no shard is abandoned mid-flight; when
        several shards raise, the first (in shard order) is re-raised
        and the others are attached as notes so concurrent failures
        stay diagnosable.
        """
        wait(futures)
        errors = [
            (i, f.exception())
            for i, f in enumerate(futures)
            if f.exception() is not None
        ]
        if errors:
            _first, primary = errors[0]
            for i, exc in errors[1:]:
                if exc is primary:
                    # A broken pool settles every future with the same
                    # exception instance; one report is enough.
                    continue
                primary.add_note(
                    f"[worker-pool] shard {i} also failed: "
                    f"{type(exc).__name__}: {exc}"
                )
            raise primary
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.backend == "process":
                try:
                    context = None
                    if "fork" in multiprocessing.get_all_start_methods():
                        context = multiprocessing.get_context("fork")
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers, mp_context=context
                    )
                except (OSError, ValueError, ImportError):
                    # No process support (exotic sandbox): degrade to
                    # threads -- results are identical by construction.
                    self.backend = "thread"
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="iq-worker",
                    )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="iq-worker",
                )
        return self._executor

    def close(self) -> None:
        """Shut the executor down (idempotent; pool stays usable --
        the next parallel call recreates the workers)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        # Best-effort: engines are not always closed explicitly, and a
        # leaked process pool would otherwise idle until interpreter
        # exit.  Never raise from a finalizer.
        try:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "live" if self._executor is not None else "idle"
        return (
            f"WorkerPool(workers={self.workers}, "
            f"backend={self.backend!r}, {state})"
        )
