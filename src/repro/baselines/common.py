"""Shared result type and helpers for the baseline methods."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.disk import IOStats, SimulatedDisk

__all__ = ["QueryAnswer", "io_snapshot", "io_delta"]


@dataclass
class QueryAnswer:
    """A k-NN answer with its simulated-I/O accounting.

    Attributes
    ----------
    ids:
        Point ids in ascending distance order.
    distances:
        Matching distances.
    io:
        Simulated-I/O delta of this query.
    refinements:
        Exact-record look-ups (methods without a refinement phase
        report 0).
    """

    ids: np.ndarray
    distances: np.ndarray
    io: IOStats
    refinements: int = 0


def io_snapshot(disk: SimulatedDisk) -> IOStats:
    """Copy of the disk's current counters."""
    s = disk.stats
    return IOStats(
        seeks=s.seeks,
        blocks_read=s.blocks_read,
        blocks_overread=s.blocks_overread,
        elapsed=s.elapsed,
    )


def io_delta(before: IOStats, after: IOStats) -> IOStats:
    """Counter-wise difference ``after - before``."""
    return IOStats(
        seeks=after.seeks - before.seeks,
        blocks_read=after.blocks_read - before.blocks_read,
        blocks_overread=after.blocks_overread - before.blocks_overread,
        elapsed=after.elapsed - before.elapsed,
    )
