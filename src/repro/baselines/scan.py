"""Sequential scan: the reference technique.

The scan stores the exact data in one file and answers every query by a
single sequential pass (one seek plus the transfer of the whole file),
computing all distances.  In very high dimensions this is the baseline
all indexes must beat; the paper uses it as the floor for the X-tree's
degeneration and the ceiling for the compression methods.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BuildError, SearchError
from repro.baselines.common import QueryAnswer, io_delta, io_snapshot
from repro.core.tree import canonicalize
from repro.geometry.metrics import get_metric
from repro.storage.blockfile import BlockFile
from repro.storage.disk import SimulatedDisk
from repro.storage import serializer

__all__ = ["SequentialScan"]


class SequentialScan:
    """Brute-force scan over exact data with simulated sequential I/O."""

    name = "scan"

    def __init__(
        self,
        data: np.ndarray,
        disk: SimulatedDisk | None = None,
        metric="euclidean",
    ):
        self.disk = disk or SimulatedDisk()
        self.metric = get_metric(metric)
        points = canonicalize(data)
        if points.ndim != 2 or points.shape[0] == 0:
            raise BuildError("scan needs a non-empty (n, d) array")
        self._points = points
        self._ids = np.arange(points.shape[0], dtype=np.int64)
        self._file = BlockFile(self.disk, "scan-data")
        record = serializer.encode_exact_record(points, self._ids)
        self._file.append_record(record)
        self._file.seal()

    @property
    def points(self) -> np.ndarray:
        """Canonical stored data."""
        return self._points

    @property
    def n_points(self) -> int:
        """Number of stored points."""
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        """Data dimensionality."""
        return int(self._points.shape[1])

    def nearest(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        """Exact k-NN by a full sequential pass."""
        if k < 1 or k > self.n_points:
            raise SearchError("k out of range")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise SearchError(f"query must have shape ({self.dim},)")
        before = io_snapshot(self.disk)
        payload = b"".join(self._file.scan())
        points, ids = serializer.decode_exact_record(
            payload, self.n_points, self.dim
        )
        dists = self.metric.distances(query, points)
        order = np.argsort(dists, kind="stable")[:k]
        return QueryAnswer(
            ids=ids[order],
            distances=dists[order],
            io=io_delta(before, io_snapshot(self.disk)),
        )

    def range_query(self, query: np.ndarray, radius: float) -> QueryAnswer:
        """All points within ``radius``, by a full sequential pass."""
        if radius < 0:
            raise SearchError("radius must be non-negative")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise SearchError(f"query must have shape ({self.dim},)")
        before = io_snapshot(self.disk)
        payload = b"".join(self._file.scan())
        points, ids = serializer.decode_exact_record(
            payload, self.n_points, self.dim
        )
        dists = self.metric.distances(query, points)
        inside = dists <= radius
        order = np.argsort(dists[inside], kind="stable")
        return QueryAnswer(
            ids=ids[inside][order],
            distances=dists[inside][order],
            io=io_delta(before, io_snapshot(self.disk)),
        )

    def __repr__(self) -> str:
        return f"SequentialScan(n={self.n_points}, dim={self.dim})"
