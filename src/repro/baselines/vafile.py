"""The VA-file baseline (Weber, Schek, Blott -- VLDB 1998).

The VA-file keeps two files with identical point ordering: a bit-
compressed approximation file (a *global* grid with a constant ``b``
bits per dimension, spanning the whole data space) and the exact data.
A nearest-neighbor query scans the approximation file sequentially,
computing a lower and an upper distance bound per point, then refines
the surviving candidates in ascending lower-bound order with random
accesses to the exact file (the near-optimal two-phase search of the
original paper).

Per the IQ-tree paper's protocol, experiments sweep ``b`` between 2 and
8 and report the best-performing setting (see
:func:`repro.experiments.harness.best_vafile`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BuildError, SearchError
from repro.baselines.common import QueryAnswer, io_delta, io_snapshot
from repro.core.tree import canonicalize
from repro.geometry.mbr import MBR
from repro.geometry.metrics import get_metric
from repro.quantization.grid import GridQuantizer
from repro.storage.blockfile import BlockFile
from repro.storage.disk import SimulatedDisk
from repro.storage import serializer
from repro.quantization.bitpack import pack_codes, unpack_codes

__all__ = ["VAFile"]


class VAFile:
    """A VA-file over a point data set.

    Parameters
    ----------
    data:
        Point data, shape ``(n, d)``; canonicalized to float32
        precision.
    bits:
        Bits per dimension of the global grid (the paper's sweep uses
        2-8).
    disk:
        Simulated disk (a default one is created when omitted).
    metric:
        Query metric.
    """

    name = "va-file"

    def __init__(
        self,
        data: np.ndarray,
        bits: int = 6,
        disk: SimulatedDisk | None = None,
        metric="euclidean",
    ):
        if not 1 <= bits <= 16:
            raise BuildError("VA-file bits per dimension must be in [1, 16]")
        self.disk = disk or SimulatedDisk()
        self.metric = get_metric(metric)
        self.bits = int(bits)
        points = canonicalize(data)
        if points.ndim != 2 or points.shape[0] == 0:
            raise BuildError("VA-file needs a non-empty (n, d) array")
        self._points = points
        self._ids = np.arange(points.shape[0], dtype=np.int64)
        self._quantizer = GridQuantizer(MBR.of_points(points), self.bits)
        self._codes = self._quantizer.encode(points)

        # Approximation file: the packed codes of all points, streamed
        # into fixed-size blocks.
        self._approx_file = BlockFile(self.disk, "va-approx")
        packed = pack_codes(self._codes, self.bits)
        self._approx_file.append_record(packed)
        self._approx_file.seal()

        # Exact file: per-point interleaved records, same ordering.
        self._exact_file = BlockFile(self.disk, "va-exact")
        record = serializer.encode_exact_record(points, self._ids)
        self._exact_file.append_record(record)
        self._exact_file.seal()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """Canonical stored data."""
        return self._points

    @property
    def n_points(self) -> int:
        """Number of stored points."""
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        """Data dimensionality."""
        return int(self._points.shape[1])

    @property
    def approx_blocks(self) -> int:
        """Size of the approximation file in blocks."""
        return self._approx_file.n_blocks

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        """Exact k-NN with the two-phase near-optimal VA-file search."""
        if k < 1 or k > self.n_points:
            raise SearchError("k out of range")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise SearchError(f"query must have shape ({self.dim},)")
        before = io_snapshot(self.disk)

        lower_b, upper_b = self._scan_bounds(query)

        # Phase 1 filter: a point survives if its lower bound does not
        # exceed the k-th smallest upper bound.
        kth_upper = np.partition(upper_b, k - 1)[k - 1]
        candidates = np.flatnonzero(lower_b <= kth_upper)
        order = candidates[np.argsort(lower_b[candidates], kind="stable")]

        # Phase 2: refine candidates in ascending lower-bound order.
        heap: list[tuple[float, int]] = []  # max-heap via negation
        import heapq

        bound = np.inf
        refinements = 0
        cache: dict[int, bytes] = {}
        for idx in order:
            if lower_b[idx] > bound:
                break
            coords = self._fetch_exact(int(idx), cache)
            refinements += 1
            dist = self.metric.distance(query, coords)
            if len(heap) < k:
                heapq.heappush(heap, (-dist, int(idx)))
            elif dist < -heap[0][0]:
                heapq.heapreplace(heap, (-dist, int(idx)))
            if len(heap) == k:
                bound = -heap[0][0]

        pairs = sorted((-nd, i) for nd, i in heap)
        return QueryAnswer(
            ids=np.array([p[1] for p in pairs], dtype=np.int64),
            distances=np.array([p[0] for p in pairs]),
            io=io_delta(before, io_snapshot(self.disk)),
            refinements=refinements,
        )

    def range_query(self, query: np.ndarray, radius: float) -> QueryAnswer:
        """All points within ``radius``: filter on bounds, then refine."""
        if radius < 0:
            raise SearchError("radius must be non-negative")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise SearchError(f"query must have shape ({self.dim},)")
        before = io_snapshot(self.disk)
        lower_b, _upper_b = self._scan_bounds(query)
        cache: dict[int, bytes] = {}
        ids: list[int] = []
        dists: list[float] = []
        refinements = 0
        for idx in np.flatnonzero(lower_b <= radius):
            coords = self._fetch_exact(int(idx), cache)
            refinements += 1
            dist = self.metric.distance(query, coords)
            if dist <= radius:
                ids.append(int(idx))
                dists.append(dist)
        order = np.argsort(dists, kind="stable")
        return QueryAnswer(
            ids=np.array(ids, dtype=np.int64)[order],
            distances=np.array(dists)[order],
            io=io_delta(before, io_snapshot(self.disk)),
            refinements=refinements,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _scan_bounds(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sequential pass over the approximation file -> (lower, upper)."""
        payload = b"".join(self._approx_file.scan())
        codes = unpack_codes(payload, self.bits, self.n_points, self.dim)
        lower = self._quantizer.cell_mindist(query, codes, self.metric)
        upper = self._quantizer.cell_maxdist(query, codes, self.metric)
        return lower, upper

    def _fetch_exact(self, index: int, cache: dict[int, bytes]) -> np.ndarray:
        """Random-access one exact record (per-query block cache)."""
        record = serializer.exact_point_record_size(self.dim)
        block_size = self.disk.model.block_size
        start = index * record
        end = start + record
        b0 = start // block_size
        b1 = (end - 1) // block_size
        data = bytearray()
        for b in range(b0, b1 + 1):
            if b not in cache:
                cache[b] = self._exact_file.read_block(b)
            data += cache[b]
        offset = start - b0 * block_size
        coords, _ids = serializer.decode_exact_record(
            bytes(data[offset : offset + record]), 1, self.dim
        )
        return coords[0]

    def __repr__(self) -> str:
        return (
            f"VAFile(n={self.n_points}, dim={self.dim}, bits={self.bits})"
        )
