"""The Pyramid Technique (Berchtold, Boehm, Kriegel -- SIGMOD 1998).

A fourth comparator from the paper's related-work section.  The data
space is cut into ``2d`` pyramids meeting at the center; each point maps
to a scalar *pyramid value* ``pv = i + h`` where ``i`` is its pyramid
and ``h`` its height (center distance in the dominating dimension), and
the points live in a B+-tree keyed by ``pv``.  A hypercube window query
turns into at most ``2d`` one-dimensional range scans (with exact
post-filtering); nearest-neighbor queries are answered by iteratively
enlarged window queries.

Coordinates are affinely normalized into ``[0, 1]^d`` at build time (the
technique is defined on the unit space).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BuildError, SearchError
from repro.baselines.common import QueryAnswer, io_delta, io_snapshot
from repro.core.tree import canonicalize
from repro.geometry.metrics import get_metric
from repro.storage.bptree import BPlusTree
from repro.storage.disk import SimulatedDisk

__all__ = ["PyramidTechnique"]


class PyramidTechnique:
    """Pyramid-mapped B+-tree index over a point data set.

    Parameters
    ----------
    data:
        Point data, shape ``(n, d)``; canonicalized to float32.
    disk:
        Simulated disk (a default one is created when omitted).
    metric:
        Query metric used for distances/filtering.
    """

    name = "pyramid"

    def __init__(
        self,
        data: np.ndarray,
        disk: SimulatedDisk | None = None,
        metric="euclidean",
    ):
        self.disk = disk or SimulatedDisk()
        self.metric = get_metric(metric)
        points = canonicalize(data)
        if points.ndim != 2 or points.shape[0] == 0:
            raise BuildError("pyramid needs a non-empty (n, d) array")
        self._points = points
        self._lo = points.min(axis=0)
        span = points.max(axis=0) - self._lo
        self._span = np.where(span > 0, span, 1.0)
        unit = self._to_unit(points)
        values = self._pyramid_values(unit)
        self._tree = BPlusTree(
            values,
            points,
            np.arange(points.shape[0], dtype=np.int64),
            self.disk,
        )

    # ------------------------------------------------------------------
    # Pyramid mapping
    # ------------------------------------------------------------------
    def _to_unit(self, points: np.ndarray) -> np.ndarray:
        return (points - self._lo) / self._span

    @staticmethod
    def _pyramid_values(unit: np.ndarray) -> np.ndarray:
        """Map unit-space points to pyramid values ``i + h``."""
        centered = unit - 0.5
        dominant = np.argmax(np.abs(centered), axis=1)
        rows = np.arange(unit.shape[0])
        coordinate = centered[rows, dominant]
        pyramid = np.where(
            coordinate < 0, dominant, dominant + unit.shape[1]
        )
        height = np.abs(coordinate)
        return pyramid + height

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """Canonical stored data."""
        return self._points

    @property
    def n_points(self) -> int:
        """Number of stored points."""
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        """Data dimensionality."""
        return int(self._points.shape[1])

    # ------------------------------------------------------------------
    # Window (hypercube) queries
    # ------------------------------------------------------------------
    def window_query(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> QueryAnswer:
        """All points inside the axis-aligned box ``[lower, upper]``."""
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        if lower.shape != (self.dim,) or upper.shape != (self.dim,):
            raise SearchError("window bounds must be (d,) vectors")
        if np.any(lower > upper):
            raise SearchError("window bounds inverted")
        before = io_snapshot(self.disk)
        ids, coords = self._window_candidates(lower, upper)
        inside = np.all(
            (coords >= lower) & (coords <= upper), axis=1
        )
        dists = np.zeros(int(np.count_nonzero(inside)))
        return QueryAnswer(
            ids=ids[inside],
            distances=dists,
            io=io_delta(before, io_snapshot(self.disk)),
        )

    def _window_candidates(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fetch candidates of every intersected pyramid (Lemma 4.2)."""
        d = self.dim
        a = (lower - self._lo) / self._span - 0.5
        b = (upper - self._lo) / self._span - 0.5
        a = np.clip(a, -0.5, 0.5)
        b = np.clip(b, -0.5, 0.5)
        # Per-dimension minimal |coordinate| inside the window.
        min_abs = np.where(
            (a <= 0) & (b >= 0), 0.0, np.minimum(np.abs(a), np.abs(b))
        )
        ids_parts, coords_parts = [], []
        for i in range(2 * d):
            j = i % d
            # Max achievable height inside the window for pyramid i.
            h_max = -a[j] if i < d else b[j]
            if h_max < 0:
                continue
            h_low = float(np.max(min_abs))
            if h_low > h_max:
                continue
            keys_lo = i + h_low
            keys_hi = i + min(h_max, 0.5)
            _keys, coords, ids = self._tree.range_scan(keys_lo, keys_hi)
            if ids.size:
                ids_parts.append(ids)
                coords_parts.append(coords)
        if not ids_parts:
            return np.empty(0, dtype=np.int64), np.empty((0, d))
        return np.concatenate(ids_parts), np.concatenate(coords_parts)

    # ------------------------------------------------------------------
    # Nearest neighbors via expanding windows
    # ------------------------------------------------------------------
    def nearest(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        """Exact k-NN by iteratively enlarged window queries.

        The initial window half-side comes from the expected k-NN
        radius at the data's global density; the window doubles until
        the k-th candidate distance is certified (<= the half-side, so
        no point outside the window can be closer).
        """
        if k < 1 or k > self.n_points:
            raise SearchError("k out of range")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise SearchError(f"query must have shape ({self.dim},)")
        before = io_snapshot(self.disk)
        radius = self._initial_radius(k)
        span = float(np.max(self._span))
        while True:
            lower = query - radius
            upper = query + radius
            ids, coords = self._window_candidates(lower, upper)
            if ids.size >= k:
                # Exact distances; certified when the k-th fits the box.
                unique_ids, first = np.unique(ids, return_index=True)
                dists = self.metric.distances(query, coords[first])
                order = np.argsort(dists, kind="stable")
                if dists[order[k - 1]] <= radius:
                    top = order[:k]
                    return QueryAnswer(
                        ids=unique_ids[top],
                        distances=dists[top],
                        io=io_delta(before, io_snapshot(self.disk)),
                    )
            if radius > 2.0 * span * np.sqrt(self.dim):
                # Window covers everything: finalize unconditionally.
                unique_ids, first = np.unique(ids, return_index=True)
                dists = self.metric.distances(query, coords[first])
                order = np.argsort(dists, kind="stable")[:k]
                return QueryAnswer(
                    ids=unique_ids[order],
                    distances=dists[order],
                    io=io_delta(before, io_snapshot(self.disk)),
                )
            radius *= 2.0

    def range_query(self, query: np.ndarray, radius: float) -> QueryAnswer:
        """All points within ``radius``: a window query plus filtering."""
        if radius < 0:
            raise SearchError("radius must be non-negative")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise SearchError(f"query must have shape ({self.dim},)")
        before = io_snapshot(self.disk)
        ids, coords = self._window_candidates(
            query - radius, query + radius
        )
        if ids.size == 0:
            return QueryAnswer(
                ids=np.empty(0, dtype=np.int64),
                distances=np.empty(0),
                io=io_delta(before, io_snapshot(self.disk)),
            )
        unique_ids, first = np.unique(ids, return_index=True)
        dists = self.metric.distances(query, coords[first])
        inside = dists <= radius
        order = np.argsort(dists[inside], kind="stable")
        return QueryAnswer(
            ids=unique_ids[inside][order],
            distances=dists[inside][order],
            io=io_delta(before, io_snapshot(self.disk)),
        )

    def _initial_radius(self, k: int) -> float:
        volume = float(np.prod(self._span))
        density = self.n_points / max(volume, 1e-12)
        return self.metric.ball_radius(k / density, self.dim)

    def __repr__(self) -> str:
        return (
            f"PyramidTechnique(n={self.n_points}, dim={self.dim}, "
            f"tree={self._tree!r})"
        )
