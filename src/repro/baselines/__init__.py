"""The comparison techniques used in the paper's evaluation.

* :mod:`repro.baselines.scan` -- sequential scan of the exact data (the
  reference technique; one seek plus a full sequential transfer).
* :mod:`repro.baselines.vafile` -- the VA-file [Weber et al., VLDB 1998]:
  a globally quantized approximation file scanned sequentially, followed
  by random-access refinement of the surviving candidates.
* :mod:`repro.baselines.xtree` -- an X-tree-family hierarchical index
  [Berchtold et al., VLDB 1996]: bulk-loaded MBR directory with
  supernodes, exact data pages, best-first NN search with one random
  read per accessed page.
* :mod:`repro.baselines.pyramid` -- the Pyramid Technique [Berchtold
  et al., SIGMOD 1998], from the paper's related-work section: the
  one-dimensional pyramid-value mapping over a B+-tree.
* :mod:`repro.baselines.sstree` -- the SS-tree [White & Jain, ICDE
  1996], also from the related-work section: bounding *spheres* in the
  directory instead of rectangles.

All baselines share the IQ-tree's canonical float32 data representation
and run against the same simulated disk, so their reported times are
directly comparable.
"""

from repro.baselines.common import QueryAnswer
from repro.baselines.pyramid import PyramidTechnique
from repro.baselines.scan import SequentialScan
from repro.baselines.sstree import SSTree
from repro.baselines.vafile import VAFile
from repro.baselines.xtree import XTree

__all__ = [
    "QueryAnswer",
    "PyramidTechnique",
    "SequentialScan",
    "SSTree",
    "VAFile",
    "XTree",
]
