"""An X-tree-family hierarchical index (Berchtold, Keim, Kriegel 1996).

The X-tree is an R-tree variant engineered for high dimensionality: it
uses an overlap-minimal split algorithm guided by the split history and,
when no overlap-free split exists, *supernodes* -- directory nodes
enlarged to a multiple of the block size instead of being split.

This implementation provides what the IQ-tree paper's experiments
exercise:

* a packed **bulk load** (the same top-down balanced partitioning the
  IQ-tree uses, so both trees see identical point placements),
* best-first (Hjaltason-Samet) **nearest-neighbor search** paying one
  random multi-block read per visited node and one random single-block
  read per visited leaf, and
* **dynamic insert** with least-enlargement descent, split-history-based
  topological splits, and supernode creation when a split would produce
  overlapping halves.

Simplifications relative to the original system are documented on the
methods; none affect the query-time I/O pattern the experiments measure.
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np

from repro.exceptions import BuildError, SearchError
from repro.baselines.common import QueryAnswer, io_delta, io_snapshot
from repro.core.build import partitions_for_capacity
from repro.core.tree import canonicalize
from repro.geometry.mbr import MBR, mindist_to_boxes
from repro.geometry.metrics import get_metric
from repro.storage.blockfile import BlockFile
from repro.storage.disk import SimulatedDisk
from repro.storage import serializer

__all__ = ["XTree"]

#: maximum tolerated MBR overlap fraction of a directory split before a
#: supernode is created instead (the X-tree paper's MAX_OVERLAP).
MAX_OVERLAP = 0.2

#: supernodes may grow to at most this many blocks.
MAX_SUPERNODE_BLOCKS = 8


class _Leaf:
    """A leaf: point rows of the data set, stored exactly."""

    __slots__ = ("indices", "mbr", "block")

    def __init__(self, indices: np.ndarray, mbr: MBR):
        self.indices = np.asarray(indices, dtype=np.int64)
        self.mbr = mbr
        self.block = -1  # assigned at layout time


class _Node:
    """A directory node; ``children`` are nodes or leaves."""

    __slots__ = ("children", "mbr", "split_history", "first_block", "n_blocks")

    def __init__(self, children: list, split_history: set[int] | None = None):
        self.children = children
        self.split_history: set[int] = split_history or set()
        self.first_block = -1
        self.n_blocks = 1
        self.refresh_mbr()

    def refresh_mbr(self) -> None:
        mbr = self.children[0].mbr
        for child in self.children[1:]:
            mbr = mbr.union(child.mbr)
        self.mbr = mbr


class XTree:
    """A bulk-loaded X-tree over a point data set.

    Parameters
    ----------
    data:
        Point data, shape ``(n, d)``; canonicalized to float32.
    disk:
        Simulated disk (a default one is created when omitted).
    metric:
        Query metric.
    """

    name = "x-tree"

    def __init__(
        self,
        data: np.ndarray,
        disk: SimulatedDisk | None = None,
        metric="euclidean",
    ):
        self.disk = disk or SimulatedDisk()
        self.metric = get_metric(metric)
        points = canonicalize(data)
        if points.ndim != 2 or points.shape[0] == 0:
            raise BuildError("X-tree needs a non-empty (n, d) array")
        self._points = points
        block_size = self.disk.model.block_size
        self._leaf_capacity = serializer.quantized_page_capacity(
            block_size, self.dim, 32
        )
        if self._leaf_capacity < 1:
            raise BuildError("block size too small for one exact point")
        self._fanout = block_size // serializer.directory_entry_size(self.dim)
        if self._fanout < 2:
            raise BuildError("block size too small for a directory node")
        self._root = self._bulk_load()
        self._dirty = True
        self._ensure_clean()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _bulk_load(self) -> _Node:
        """Packed bottom-up build over the balanced leaf partitioning."""
        parts = partitions_for_capacity(self._points, self._leaf_capacity)
        level: list = [_Leaf(p.indices, p.mbr) for p in parts]
        while len(level) > 1:
            groups = [
                level[i : i + self._fanout]
                for i in range(0, len(level), self._fanout)
            ]
            # Avoid a trailing single-child node: move one child over
            # from the (full) neighbor so every node has >= 2 children
            # and none exceeds the fanout.
            if len(groups) > 1 and len(groups[-1]) < 2:
                groups[-1].insert(0, groups[-2].pop())
            level = [_Node(children) for children in groups]
        if isinstance(level[0], _Leaf):
            return _Node(level)
        return level[0]

    # ------------------------------------------------------------------
    # File layout (lazy, mirrors the IQ-tree's approach)
    # ------------------------------------------------------------------
    def _ensure_clean(self) -> None:
        if not self._dirty:
            return
        block_size = self.disk.model.block_size
        dir_file = BlockFile(self.disk, "xtree-directory")
        data_file = BlockFile(self.disk, "xtree-data")
        # Depth-first layout keeps subtrees contiguous on disk.
        nodes: list[_Node] = []
        leaves: list[_Leaf] = []
        stack: list = [self._root]
        while stack:
            item = stack.pop()
            if isinstance(item, _Leaf):
                leaves.append(item)
                continue
            nodes.append(item)
            stack.extend(reversed(item.children))
        for node in nodes:
            entries = len(node.children)
            per_block = self._fanout
            node.n_blocks = max(1, math.ceil(entries / per_block))
            node.first_block = dir_file.n_blocks
            # The byte contents are opaque to the search (it walks the
            # in-memory mirror); blocks are sized honestly regardless.
            for _ in range(node.n_blocks):
                dir_file.append_block(b"\0" * block_size)
        for leaf in leaves:
            payload = serializer.encode_quantized_page(
                self._points[leaf.indices],
                32,
                block_size,
                ids=leaf.indices,
            )
            leaf.block = data_file.append_block(payload)
        dir_file.seal()
        data_file.seal()
        self._dir_file = dir_file
        self._data_file = data_file
        self._dirty = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """Canonical stored data."""
        return self._points

    @property
    def n_points(self) -> int:
        """Number of stored points."""
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        """Data dimensionality."""
        return int(self._points.shape[1])

    def n_leaves(self) -> int:
        """Number of leaf pages."""
        return sum(1 for _ in self._iter_leaves(self._root))

    def n_supernodes(self) -> int:
        """Directory nodes spanning more than one block."""
        count = 0
        stack: list = [self._root]
        while stack:
            item = stack.pop()
            if isinstance(item, _Node):
                if len(item.children) > self._fanout:
                    count += 1
                stack.extend(item.children)
        return count

    def height(self) -> int:
        """Tree height (root = level 1, leaves excluded)."""
        h = 0
        item = self._root
        while isinstance(item, _Node):
            h += 1
            item = item.children[0]
        return h

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        """Best-first exact k-NN with per-page random I/O."""
        if k < 1 or k > self.n_points:
            raise SearchError("k out of range")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise SearchError(f"query must have shape ({self.dim},)")
        self._ensure_clean()
        before = io_snapshot(self.disk)

        tie = itertools.count()
        heap: list[tuple] = [(0.0, next(tie), self._root)]
        best: list[tuple[float, int]] = []  # max-heap via negation

        def bound() -> float:
            return -best[0][0] if len(best) == k else np.inf

        while heap and heap[0][0] <= bound():
            _dist, _t, item = heapq.heappop(heap)
            if isinstance(item, _Leaf):
                coords, ids = self._read_leaf(item)
                dists = self.metric.distances(query, coords)
                for dist, pid in zip(dists, ids):
                    if len(best) < k:
                        heapq.heappush(best, (-float(dist), int(pid)))
                    elif dist < -best[0][0]:
                        heapq.heapreplace(best, (-float(dist), int(pid)))
                continue
            self._read_node(item)
            child_lowers = np.array([c.mbr.lower for c in item.children])
            child_uppers = np.array([c.mbr.upper for c in item.children])
            mindists = mindist_to_boxes(
                query, child_lowers, child_uppers, self.metric
            )
            b = bound()
            for child, mindist in zip(item.children, mindists):
                if mindist <= b:
                    heapq.heappush(heap, (float(mindist), next(tie), child))

        pairs = sorted((-nd, pid) for nd, pid in best)
        return QueryAnswer(
            ids=np.array([p[1] for p in pairs], dtype=np.int64),
            distances=np.array([p[0] for p in pairs]),
            io=io_delta(before, io_snapshot(self.disk)),
        )

    def range_query(self, query: np.ndarray, radius: float) -> QueryAnswer:
        """All points within ``radius`` by recursive MBR filtering."""
        if radius < 0:
            raise SearchError("radius must be non-negative")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise SearchError(f"query must have shape ({self.dim},)")
        self._ensure_clean()
        before = io_snapshot(self.disk)
        ids: list[int] = []
        dists: list[float] = []
        stack: list = [self._root]
        while stack:
            item = stack.pop()
            if isinstance(item, _Leaf):
                coords, leaf_ids = self._read_leaf(item)
                d = self.metric.distances(query, coords)
                inside = d <= radius
                ids.extend(leaf_ids[inside].tolist())
                dists.extend(d[inside].tolist())
                continue
            self._read_node(item)
            for child in item.children:
                if child.mbr.mindist(query, self.metric) <= radius:
                    stack.append(child)
        order = np.argsort(dists, kind="stable")
        return QueryAnswer(
            ids=np.array(ids, dtype=np.int64)[order],
            distances=np.array(dists)[order],
            io=io_delta(before, io_snapshot(self.disk)),
        )

    # ------------------------------------------------------------------
    # Dynamic insert (Section 6-style maintenance)
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> int:
        """Insert one point; returns its assigned id.

        Least-enlargement descent to a leaf; overflowing leaves split on
        their longest MBR dimension (recorded in the parent's split
        history); overflowing directory nodes split along a
        split-history dimension if the halves' MBR overlap stays below
        ``MAX_OVERLAP``, otherwise the node becomes a supernode.
        """
        point = canonicalize(
            np.asarray(point, dtype=np.float64).reshape(1, -1)
        )
        if point.shape[1] != self.dim:
            raise SearchError(f"point must have {self.dim} dimensions")
        new_id = self._points.shape[0]
        self._points = np.vstack([self._points, point])
        split = self._insert_into(self._root, point[0], new_id)
        if split is not None:
            left, right, dim_split = split
            self._root = _Node([left, right], split_history={dim_split})
        self._dirty = True
        return new_id

    def _insert_into(self, node: _Node, point: np.ndarray, pid: int):
        """Recursive insert; returns a (left, right, dim) split or None."""
        child = _least_enlargement(node.children, point)
        if isinstance(child, _Leaf):
            child.indices = np.append(child.indices, pid)
            child.mbr = child.mbr.extended_by_point(point)
            if child.indices.size > self._leaf_capacity:
                self._split_leaf(node, child)
        else:
            split = self._insert_into(child, point, pid)
            if split is not None:
                left, right, dim_split = split
                node.children.remove(child)
                node.children.extend([left, right])
                node.split_history.add(dim_split)
        node.refresh_mbr()
        if len(node.children) > self._node_capacity():
            return self._split_node(node)
        return None

    def _node_capacity(self) -> int:
        return self._fanout * MAX_SUPERNODE_BLOCKS

    def _split_leaf(self, parent: _Node, leaf: _Leaf) -> None:
        points = self._points[leaf.indices]
        dim_split = int(np.argmax(points.max(axis=0) - points.min(axis=0)))
        order = np.argsort(points[:, dim_split], kind="stable")
        half = order.size // 2
        left_idx = leaf.indices[order[:half]]
        right_idx = leaf.indices[order[half:]]
        parent.children.remove(leaf)
        parent.children.append(
            _Leaf(left_idx, MBR.of_points(self._points[left_idx]))
        )
        parent.children.append(
            _Leaf(right_idx, MBR.of_points(self._points[right_idx]))
        )
        parent.split_history.add(dim_split)

    def _split_node(self, node: _Node):
        """Topological split; falls back to supernode on high overlap."""
        if len(node.children) <= self._fanout:
            return None
        candidates = sorted(node.split_history) or list(range(self.dim))
        best = None
        for dim_split in candidates:
            centers = np.array(
                [c.mbr.center[dim_split] for c in node.children]
            )
            order = np.argsort(centers, kind="stable")
            half = order.size // 2
            left = [node.children[i] for i in order[:half]]
            right = [node.children[i] for i in order[half:]]
            overlap = _group_overlap(left, right)
            if best is None or overlap < best[0]:
                best = (overlap, left, right, dim_split)
        overlap, left, right, dim_split = best
        if overlap > MAX_OVERLAP:
            # No acceptable split: let the node grow into a supernode
            # (up to the cap; beyond it the least-bad split is forced).
            if len(node.children) <= self._node_capacity():
                return None
        history = set(node.split_history)
        return (
            _Node(left, split_history=set(history)),
            _Node(right, split_history=set(history)),
            dim_split,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _read_node(self, node: _Node) -> None:
        """Charge the random multi-block read of one directory node."""
        self._dir_file.read_run(node.first_block, node.n_blocks)

    def _read_leaf(self, leaf: _Leaf) -> tuple[np.ndarray, np.ndarray]:
        payload = self._data_file.read_block(leaf.block)
        coords, _bits, ids, _aux = serializer.decode_quantized_page(
            payload, self.dim
        )
        return coords, ids

    def _iter_leaves(self, node: _Node):
        stack: list = [node]
        while stack:
            item = stack.pop()
            if isinstance(item, _Leaf):
                yield item
            else:
                stack.extend(item.children)

    def __repr__(self) -> str:
        return (
            f"XTree(n={self.n_points}, dim={self.dim}, "
            f"leaves={self.n_leaves()}, height={self.height()})"
        )


def _least_enlargement(children: list, point: np.ndarray):
    """The child whose MBR grows least (ties: smaller volume)."""
    best = None
    for child in children:
        lower = np.minimum(child.mbr.lower, point)
        upper = np.maximum(child.mbr.upper, point)
        new_vol = float(np.prod(upper - lower))
        growth = new_vol - child.mbr.volume()
        key = (growth, new_vol)
        if best is None or key < best[0]:
            best = (key, child)
    return best[1]


def _group_overlap(left: list, right: list) -> float:
    """Overlap fraction of the two groups' MBRs (0 = disjoint)."""
    lmbr = left[0].mbr
    for c in left[1:]:
        lmbr = lmbr.union(c.mbr)
    rmbr = right[0].mbr
    for c in right[1:]:
        rmbr = rmbr.union(c.mbr)
    inter = lmbr.intersection_volume(rmbr)
    denom = min(lmbr.volume(), rmbr.volume())
    if denom <= 0:
        return 0.0 if inter <= 0 else 1.0
    return inter / denom
