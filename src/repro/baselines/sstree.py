"""The SS-tree (White & Jain, ICDE 1996) -- spheres in the directory.

Another structure from the paper's related-work section: an R-tree
variant whose directory entries are bounding *spheres* (centroid +
radius) instead of rectangles.  Spheres have smaller volume than MBRs
for clustered data but, as the paper notes, "tend to overlap in
high-dimensional spaces" -- this implementation lets that effect be
measured directly against the other comparators.

Provided: packed bulk load (same balanced partitioning as every tree in
the repository), best-first exact k-NN and range search with one random
read per visited node/leaf, and centroid-based dynamic insert with
variance-driven splits.
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np

from repro.exceptions import BuildError, SearchError
from repro.baselines.common import QueryAnswer, io_delta, io_snapshot
from repro.core.build import partitions_for_capacity
from repro.core.tree import canonicalize
from repro.geometry.metrics import get_metric
from repro.storage.blockfile import BlockFile
from repro.storage.disk import SimulatedDisk
from repro.storage import serializer

__all__ = ["SSTree"]


class _Leaf:
    __slots__ = ("indices", "center", "radius", "block")

    def __init__(self, indices: np.ndarray, points: np.ndarray):
        self.indices = np.asarray(indices, dtype=np.int64)
        self.refresh(points)
        self.block = -1

    def refresh(self, points: np.ndarray) -> None:
        members = points[self.indices]
        self.center = members.mean(axis=0)
        self.radius = float(
            np.sqrt(((members - self.center) ** 2).sum(axis=1)).max()
        )


class _Node:
    __slots__ = ("children", "center", "radius", "first_block", "n_blocks")

    def __init__(self, children: list):
        self.children = children
        self.first_block = -1
        self.n_blocks = 1
        self.refresh()

    def refresh(self) -> None:
        centers = np.array([c.center for c in self.children])
        self.center = centers.mean(axis=0)
        self.radius = float(
            max(
                np.sqrt(((c.center - self.center) ** 2).sum()) + c.radius
                for c in self.children
            )
        )


class SSTree:
    """A bulk-loaded SS-tree over a point data set.

    Parameters
    ----------
    data:
        Point data, shape ``(n, d)``; canonicalized to float32.
    disk:
        Simulated disk (a default one is created when omitted).
    metric:
        Query metric.  Bounding spheres are Euclidean; for other
        metrics the Euclidean sphere is still a valid (conservative)
        bound because the repository's metrics are all within a
        constant of L2 on the same coordinates -- mindist uses the
        query metric's distance to the center minus the L2 radius,
        which is only exact for L2, so non-L2 metrics fall back to a
        documented conservative bound.
    """

    name = "ss-tree"

    def __init__(
        self,
        data: np.ndarray,
        disk: SimulatedDisk | None = None,
        metric="euclidean",
    ):
        self.disk = disk or SimulatedDisk()
        self.metric = get_metric(metric)
        if self.metric.name != "euclidean":
            raise BuildError(
                "the SS-tree's bounding spheres are Euclidean; "
                "use metric='euclidean'"
            )
        points = canonicalize(data)
        if points.ndim != 2 or points.shape[0] == 0:
            raise BuildError("SS-tree needs a non-empty (n, d) array")
        self._points = points
        block_size = self.disk.model.block_size
        self._leaf_capacity = serializer.quantized_page_capacity(
            block_size, self.dim, 32
        )
        if self._leaf_capacity < 1:
            raise BuildError("block size too small for one exact point")
        # Directory entry: f4 center per dim + f4 radius + u4 pointer.
        self._fanout = block_size // (4 * self.dim + 8)
        if self._fanout < 2:
            raise BuildError("block size too small for a directory node")
        self._root = self._bulk_load()
        self._dirty = True
        self._ensure_clean()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _bulk_load(self) -> _Node:
        parts = partitions_for_capacity(self._points, self._leaf_capacity)
        level: list = [_Leaf(p.indices, self._points) for p in parts]
        while len(level) > 1:
            groups = [
                level[i : i + self._fanout]
                for i in range(0, len(level), self._fanout)
            ]
            if len(groups) > 1 and len(groups[-1]) < 2:
                groups[-1].insert(0, groups[-2].pop())
            level = [_Node(children) for children in groups]
        if isinstance(level[0], _Leaf):
            return _Node(level)
        return level[0]

    def _ensure_clean(self) -> None:
        if not self._dirty:
            return
        block_size = self.disk.model.block_size
        dir_file = BlockFile(self.disk, "sstree-directory")
        data_file = BlockFile(self.disk, "sstree-data")
        nodes: list[_Node] = []
        leaves: list[_Leaf] = []
        stack: list = [self._root]
        while stack:
            item = stack.pop()
            if isinstance(item, _Leaf):
                leaves.append(item)
                continue
            nodes.append(item)
            stack.extend(reversed(item.children))
        for node in nodes:
            node.n_blocks = max(
                1, math.ceil(len(node.children) / self._fanout)
            )
            node.first_block = dir_file.n_blocks
            for _ in range(node.n_blocks):
                dir_file.append_block(b"\0" * block_size)
        for leaf in leaves:
            payload = serializer.encode_quantized_page(
                self._points[leaf.indices], 32, block_size,
                ids=leaf.indices,
            )
            leaf.block = data_file.append_block(payload)
        dir_file.seal()
        data_file.seal()
        self._dir_file = dir_file
        self._data_file = data_file
        self._dirty = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """Canonical stored data."""
        return self._points

    @property
    def n_points(self) -> int:
        """Number of stored points."""
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        """Data dimensionality."""
        return int(self._points.shape[1])

    def n_leaves(self) -> int:
        """Number of leaf pages."""
        count = 0
        stack: list = [self._root]
        while stack:
            item = stack.pop()
            if isinstance(item, _Leaf):
                count += 1
            else:
                stack.extend(item.children)
        return count

    def mean_leaf_radius(self) -> float:
        """Average bounding-sphere radius of the leaves (overlap proxy)."""
        radii = []
        stack: list = [self._root]
        while stack:
            item = stack.pop()
            if isinstance(item, _Leaf):
                radii.append(item.radius)
            else:
                stack.extend(item.children)
        return float(np.mean(radii))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _sphere_mindist(self, query: np.ndarray, item) -> float:
        return max(
            0.0,
            float(np.sqrt(((query - item.center) ** 2).sum()))
            - item.radius,
        )

    def nearest(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        """Best-first exact k-NN over the sphere directory."""
        if k < 1 or k > self.n_points:
            raise SearchError("k out of range")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise SearchError(f"query must have shape ({self.dim},)")
        self._ensure_clean()
        before = io_snapshot(self.disk)
        tie = itertools.count()
        heap: list[tuple] = [(0.0, next(tie), self._root)]
        best: list[tuple[float, int]] = []

        def bound() -> float:
            return -best[0][0] if len(best) == k else np.inf

        while heap and heap[0][0] <= bound():
            _d, _t, item = heapq.heappop(heap)
            if isinstance(item, _Leaf):
                coords, ids = self._read_leaf(item)
                dists = self.metric.distances(query, coords)
                for dist, pid in zip(dists, ids):
                    if len(best) < k:
                        heapq.heappush(best, (-float(dist), int(pid)))
                    elif dist < -best[0][0]:
                        heapq.heapreplace(best, (-float(dist), int(pid)))
                continue
            self._dir_file.read_run(item.first_block, item.n_blocks)
            b = bound()
            for child in item.children:
                mindist = self._sphere_mindist(query, child)
                if mindist <= b:
                    heapq.heappush(heap, (mindist, next(tie), child))

        pairs = sorted((-nd, pid) for nd, pid in best)
        return QueryAnswer(
            ids=np.array([p[1] for p in pairs], dtype=np.int64),
            distances=np.array([p[0] for p in pairs]),
            io=io_delta(before, io_snapshot(self.disk)),
        )

    def range_query(self, query: np.ndarray, radius: float) -> QueryAnswer:
        """All points within ``radius`` via sphere filtering."""
        if radius < 0:
            raise SearchError("radius must be non-negative")
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise SearchError(f"query must have shape ({self.dim},)")
        self._ensure_clean()
        before = io_snapshot(self.disk)
        ids: list[int] = []
        dists: list[float] = []
        stack: list = [self._root]
        while stack:
            item = stack.pop()
            if self._sphere_mindist(query, item) > radius:
                continue
            if isinstance(item, _Leaf):
                coords, leaf_ids = self._read_leaf(item)
                d = self.metric.distances(query, coords)
                inside = d <= radius
                ids.extend(leaf_ids[inside].tolist())
                dists.extend(d[inside].tolist())
                continue
            self._dir_file.read_run(item.first_block, item.n_blocks)
            stack.extend(item.children)
        order = np.argsort(dists, kind="stable")
        return QueryAnswer(
            ids=np.array(ids, dtype=np.int64)[order],
            distances=np.array(dists)[order],
            io=io_delta(before, io_snapshot(self.disk)),
        )

    # ------------------------------------------------------------------
    # Dynamic insert
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> int:
        """Insert a point (closest-centroid descent, variance split)."""
        point = canonicalize(
            np.asarray(point, dtype=np.float64).reshape(1, -1)
        )
        if point.shape[1] != self.dim:
            raise SearchError(f"point must have {self.dim} dimensions")
        new_id = self._points.shape[0]
        self._points = np.vstack([self._points, point])
        self._insert_into(self._root, point[0], new_id)
        if len(self._root.children) > self._fanout:
            left, right = self._split_children(self._root.children)
            self._root = _Node([_Node(left), _Node(right)])
        self._dirty = True
        return new_id

    def _insert_into(self, node: _Node, point: np.ndarray, pid: int) -> None:
        child = min(
            node.children,
            key=lambda c: float(((point - c.center) ** 2).sum()),
        )
        if isinstance(child, _Leaf):
            child.indices = np.append(child.indices, pid)
            child.refresh(self._points)
            if child.indices.size > self._leaf_capacity:
                node.children.remove(child)
                for half in self._split_leaf(child):
                    node.children.append(half)
        else:
            self._insert_into(child, point, pid)
            if len(child.children) > self._fanout:
                node.children.remove(child)
                left, right = self._split_children(child.children)
                node.children.append(_Node(left))
                node.children.append(_Node(right))
        node.refresh()

    def _split_leaf(self, leaf: _Leaf) -> tuple[_Leaf, _Leaf]:
        members = self._points[leaf.indices]
        dim_split = int(np.argmax(members.var(axis=0)))
        order = np.argsort(members[:, dim_split], kind="stable")
        half = order.size // 2
        return (
            _Leaf(leaf.indices[order[:half]], self._points),
            _Leaf(leaf.indices[order[half:]], self._points),
        )

    def _split_children(self, children: list) -> tuple[list, list]:
        centers = np.array([c.center for c in children])
        dim_split = int(np.argmax(centers.var(axis=0)))
        order = np.argsort(centers[:, dim_split], kind="stable")
        half = order.size // 2
        return (
            [children[i] for i in order[:half]],
            [children[i] for i in order[half:]],
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _read_leaf(self, leaf: _Leaf) -> tuple[np.ndarray, np.ndarray]:
        payload = self._data_file.read_block(leaf.block)
        coords, _bits, ids, _aux = serializer.decode_quantized_page(
            payload, self.dim
        )
        return coords, ids

    def __repr__(self) -> str:
        return (
            f"SSTree(n={self.n_points}, dim={self.dim}, "
            f"leaves={self.n_leaves()})"
        )
