"""A zero-dependency process-wide metrics registry.

Three instrument kinds are provided -- monotonically increasing
:class:`Counter`, last-value :class:`Gauge`, and fixed-boundary
:class:`Histogram` -- all optionally labeled.  Instruments are created
through (and owned by) a :class:`MetricsRegistry`, which exports the
whole catalogue as a JSON-friendly dict (:meth:`MetricsRegistry.collect`)
or in the Prometheus text exposition format
(:meth:`MetricsRegistry.to_prometheus`).

The registry carries a single :attr:`~MetricsRegistry.enabled` flag that
gates *every* write: a disabled registry makes ``inc``/``set``/
``observe`` early-return after one attribute check, so instrumentation
threaded through hot paths costs next to nothing until someone turns it
on (``python -m repro stats`` does, as do the observability tests).
Hot call sites additionally guard with ``if REGISTRY.enabled:`` to skip
the call entirely.

Everything here is deliberately standalone: no imports from the rest of
the package, so any layer (storage, engine, optimizer, persistence) can
depend on it without cycles.
"""

from __future__ import annotations

import re
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram boundaries (seconds-flavored, roughly logarithmic).
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Prometheus-friendly number rendering (ints without a dot)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _label_key(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set (values coerced to str)."""
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name: {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Instrument:
    """Base class: a named instrument bound to one registry."""

    kind = "untyped"

    __slots__ = ("name", "help", "_registry")

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help
        self._registry = registry

    def _reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Counter(_Instrument):
    """A monotonically increasing sum, optionally labeled."""

    kind = "counter"

    __slots__ = ("_values",)

    def __init__(self, name, help, registry):
        super().__init__(name, help, registry)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be non-negative) to the labeled series."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of one labeled series (0 when never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def _reset(self) -> None:
        self._values.clear()

    def _collect(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def _expose(self) -> Iterator[str]:
        for key, value in sorted(self._values.items()):
            yield f"{self.name}{_render_labels(key)} {_format_value(value)}"


class Gauge(_Instrument):
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    __slots__ = ("_values",)

    def __init__(self, name, help, registry):
        super().__init__(name, help, registry)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        """Set the labeled series to ``value``."""
        if not self._registry.enabled:
            return
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to the labeled series."""
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of one labeled series (0 when never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def _reset(self) -> None:
        self._values.clear()

    _collect = Counter._collect
    _expose = Counter._expose


class Histogram(_Instrument):
    """Bucketed distribution with fixed boundaries.

    Boundaries are upper bucket bounds (``le`` semantics); an implicit
    ``+Inf`` bucket always exists, so ``observe`` never drops a sample.
    """

    kind = "histogram"

    __slots__ = ("buckets", "_series")

    def __init__(self, name, help, registry, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, registry)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = bounds
        # label key -> [per-bucket counts..., +Inf count, sum, count]
        self._series: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one sample."""
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = (
                [0] * (len(self.buckets) + 1) + [0.0, 0]
            )
        value = float(value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series[i] += 1
                break
        else:
            series[len(self.buckets)] += 1
        series[-2] += value
        series[-1] += 1

    def count(self, **labels) -> int:
        """Number of samples observed in one labeled series."""
        series = self._series.get(_label_key(labels))
        return 0 if series is None else int(series[-1])

    def quantile(self, q: float, **labels) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) from the buckets.

        Classic Prometheus ``histogram_quantile`` estimation: find the
        bucket the target rank falls into and interpolate linearly
        inside it.  Samples in the implicit ``+Inf`` bucket clamp to
        the largest finite bound (there is nothing sounder to report).
        Returns NaN when the series is empty or unknown.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        series = self._series.get(_label_key(labels))
        if series is None or series[-1] == 0:
            return float("nan")
        total = int(series[-1])
        target = q * total
        cumulative = 0
        for i, bound in enumerate(self.buckets):
            in_bucket = int(series[i])
            if cumulative + in_bucket >= target and in_bucket:
                lower = self.buckets[i - 1] if i else 0.0
                fraction = (target - cumulative) / in_bucket
                return lower + (bound - lower) * min(fraction, 1.0)
            cumulative += in_bucket
        return float(self.buckets[-1])

    def sum(self, **labels) -> float:
        """Sum of samples observed in one labeled series."""
        series = self._series.get(_label_key(labels))
        return 0.0 if series is None else float(series[-2])

    def _reset(self) -> None:
        self._series.clear()

    def _collect(self) -> list[dict]:
        out = []
        for key, series in sorted(self._series.items()):
            buckets = {
                _format_value(b): int(n)
                for b, n in zip(self.buckets, series)
            }
            buckets["+Inf"] = int(series[len(self.buckets)])
            out.append(
                {
                    "labels": dict(key),
                    "buckets": buckets,
                    "sum": float(series[-2]),
                    "count": int(series[-1]),
                }
            )
        return out

    def _expose(self) -> Iterator[str]:
        for key, series in sorted(self._series.items()):
            cumulative = 0
            for bound, n in zip(self.buckets, series):
                cumulative += n
                labels = _render_labels(
                    key, f'le="{_format_value(bound)}"'
                )
                yield f"{self.name}_bucket{labels} {cumulative}"
            cumulative += series[len(self.buckets)]
            labels = _render_labels(key, 'le="+Inf"')
            yield f"{self.name}_bucket{labels} {cumulative}"
            plain = _render_labels(key)
            yield f"{self.name}_sum{plain} {_format_value(series[-2])}"
            yield f"{self.name}_count{plain} {series[-1]}"


class MetricsRegistry:
    """Owns a named set of instruments behind one enable flag."""

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._instruments: dict[str, _Instrument] = {}

    # ------------------------------------------------------------------
    # Instrument creation (get-or-create, kind-checked)
    # ------------------------------------------------------------------
    def _register(self, cls, name, help, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        instrument = cls(name, help, self, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._register(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create a histogram with fixed bucket boundaries."""
        return self._register(Histogram, name, help, buckets=buckets)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """Turn instrumentation on (writes start landing)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn instrumentation off (writes become cheap no-ops)."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every instrument's values (instruments stay registered)."""
        for instrument in self._instruments.values():
            instrument._reset()

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def get(self, name: str) -> _Instrument:
        """Look up one instrument by name (KeyError when absent)."""
        return self._instruments[name]

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def collect(self) -> dict:
        """The whole registry as a JSON-serializable dict."""
        return {
            name: {
                "type": inst.kind,
                "help": inst.help,
                "samples": inst._collect(),
            }
            for name, inst in sorted(self._instruments.items())
        }

    def to_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name, inst in sorted(self._instruments.items()):
            if inst.help:
                lines.append(f"# HELP {name} {_escape_help(inst.help)}")
            lines.append(f"# TYPE {name} {inst.kind}")
            lines.extend(inst._expose())
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({len(self)} instruments, {state})"
