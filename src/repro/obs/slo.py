"""Declarative SLOs evaluated from the metrics registry.

An :class:`Objective` states what "healthy" means in one line, in
terms of instruments the library already maintains:

* **quantile** objectives bound a histogram quantile, e.g. *"p99 of
  per-query simulated seconds stays under 50 ms"* --
  ``latency=iq_query_simulated_seconds:p99<=0.05``;
* **ratio** objectives bound the ratio of two counters, e.g. *"at most
  1% of batch queries degrade"* --
  ``degraded=iq_degraded_results_total/iq_batch_queries_total<=0.01``.

:meth:`SLOMonitor.evaluate` reads the registry, judges each objective,
and exports the verdicts through the ``iq_slo_*`` gauges (labelled by
objective name), so pass/burn status rides the same Prometheus text
endpoint as everything else -- ``python -m repro stats --slo SPEC``
wires it up.  The *burn ratio* is observed value over threshold: below
1.0 there is headroom, above it the objective is burning.

Objectives with no data yet (empty histogram, zero denominator) report
as met with zero burn -- absence of traffic is not a violation -- and
skip the observed-value gauge rather than exporting NaN.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.obs.instruments import (
    REGISTRY,
    SLO_BURN,
    SLO_MET,
    SLO_OBSERVED,
    SLO_THRESHOLD,
)
from repro.obs.registry import Counter, Gauge, Histogram

__all__ = ["Objective", "SLOStatus", "SLOMonitor", "parse_objective"]

_SPEC_RE = re.compile(
    r"^(?:(?P<name>[A-Za-z_][A-Za-z0-9_-]*)=)?"
    r"(?P<metric>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?::p(?P<quantile>[0-9]+(?:\.[0-9]+)?)"
    r"|/(?P<denominator>[A-Za-z_:][A-Za-z0-9_:]*))"
    r"<=(?P<threshold>[0-9.eE+-]+)$"
)


@dataclass(frozen=True)
class Objective:
    """One declarative objective over registry instruments."""

    name: str
    kind: str  # "quantile" | "ratio"
    metric: str
    threshold: float
    quantile: float = 0.0  # quantile objectives: in [0, 1]
    denominator: str = ""  # ratio objectives: the divisor counter

    def describe(self) -> str:
        if self.kind == "quantile":
            return (
                f"{self.name}: p{self.quantile * 100:g}"
                f"({self.metric}) <= {self.threshold:g}"
            )
        return (
            f"{self.name}: {self.metric}/{self.denominator}"
            f" <= {self.threshold:g}"
        )


def parse_objective(spec: str) -> Objective:
    """Parse one ``--slo`` spec string.

    Grammar: ``[name=]metric:pQQ<=bound`` (histogram quantile, ``QQ``
    in percent) or ``[name=]numerator/denominator<=bound`` (counter
    ratio).  The name defaults to the metric name.
    """
    match = _SPEC_RE.match(spec.strip())
    if match is None:
        raise ValueError(
            f"bad SLO spec {spec!r}; expected "
            "'[name=]metric:p99<=0.05' or "
            "'[name=]counter_a/counter_b<=0.01'"
        )
    threshold = float(match["threshold"])
    name = match["name"] or match["metric"]
    if match["quantile"] is not None:
        quantile = float(match["quantile"]) / 100.0
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile out of range in {spec!r}")
        return Objective(
            name=name,
            kind="quantile",
            metric=match["metric"],
            threshold=threshold,
            quantile=quantile,
        )
    return Objective(
        name=name,
        kind="ratio",
        metric=match["metric"],
        threshold=threshold,
        denominator=match["denominator"],
    )


@dataclass(frozen=True)
class SLOStatus:
    """Verdict of one objective at one evaluation."""

    objective: Objective
    observed: float | None  # None = no data yet
    met: bool
    burn: float  # observed / threshold (0 when no data)

    def describe(self) -> str:
        state = "OK" if self.met else "BURNING"
        if self.observed is None:
            return f"{self.objective.describe()} -- {state} (no data)"
        return (
            f"{self.objective.describe()} -- {state} "
            f"(observed {self.observed:.6g}, burn {self.burn:.3g})"
        )


class SLOMonitor:
    """Evaluates a set of objectives against a metrics registry."""

    def __init__(self, objectives):
        self.objectives = [
            parse_objective(o) if isinstance(o, str) else o
            for o in objectives
        ]

    def _observe(self, objective: Objective, registry) -> float | None:
        """The objective's current value, or None without data."""
        try:
            metric = registry.get(objective.metric)
        except KeyError:
            raise ValueError(
                f"SLO {objective.name!r} references unknown metric "
                f"{objective.metric!r}"
            ) from None
        if objective.kind == "quantile":
            if not isinstance(metric, Histogram):
                raise ValueError(
                    f"SLO {objective.name!r} needs a histogram, but "
                    f"{objective.metric!r} is a {metric.kind}"
                )
            value = metric.quantile(objective.quantile)
            return None if math.isnan(value) else value
        if not isinstance(metric, (Counter, Gauge)):
            raise ValueError(
                f"SLO {objective.name!r} needs counters, but "
                f"{objective.metric!r} is a {metric.kind}"
            )
        try:
            denominator = registry.get(objective.denominator)
        except KeyError:
            raise ValueError(
                f"SLO {objective.name!r} references unknown metric "
                f"{objective.denominator!r}"
            ) from None
        below = denominator.value()
        if below == 0:
            return None
        return metric.value() / below

    def evaluate(self, registry=None) -> list[SLOStatus]:
        """Judge every objective and export ``iq_slo_*`` gauges.

        Gauge export requires the registry to be enabled (like every
        other instrument write); evaluation itself always works.
        """
        registry = registry if registry is not None else REGISTRY
        statuses = []
        for objective in self.objectives:
            observed = self._observe(objective, registry)
            if observed is None:
                met, burn = True, 0.0
            else:
                met = observed <= objective.threshold
                if objective.threshold > 0:
                    burn = observed / objective.threshold
                else:
                    burn = 0.0 if observed == 0 else float("inf")
            statuses.append(
                SLOStatus(
                    objective=objective,
                    observed=observed,
                    met=met,
                    burn=burn,
                )
            )
            SLO_MET.set(1.0 if met else 0.0, objective=objective.name)
            SLO_BURN.set(burn, objective=objective.name)
            SLO_THRESHOLD.set(
                objective.threshold, objective=objective.name
            )
            if observed is not None:
                SLO_OBSERVED.set(observed, objective=objective.name)
        return statuses

    def summary(self, statuses=None) -> str:
        """One human-readable line per objective."""
        if statuses is None:
            statuses = self.evaluate()
        return "\n".join(status.describe() for status in statuses)
