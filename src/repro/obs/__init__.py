"""``repro.obs`` -- zero-dependency telemetry for the IQ-tree stack.

Three pieces, documented in :doc:`docs/observability.md`:

* a process-wide **metrics registry** (:data:`registry`, from
  :mod:`repro.obs.instruments`) of counters/gauges/histograms fed by
  hooks in the storage, engine, optimizer, and persistence layers;
  disabled by default, one-flag cheap until :func:`enable` is called;
* a **distributed tracing API** (:func:`trace_query` / :func:`span`)
  producing nested spans with wall-clock, simulated-seconds, and
  simulated-I/O attribution, stitched across worker and shard
  boundaries via picklable :class:`~repro.obs.tracing.SpanRecord`
  lists, and exportable as Chrome trace-event or OTLP-style JSON
  (:mod:`repro.obs.export`);
* a **flight recorder** (:class:`~repro.obs.flight.FlightRecorder`)
  keeping bounded postmortems -- span tree + counter deltas -- of
  slow, degraded, or faulted queries;
* an **SLO monitor** (:class:`~repro.obs.slo.SLOMonitor`) judging
  declarative latency/degradation objectives from the registry and
  exporting pass/burn gauges;
* a **cost-model drift monitor** (:data:`drift`,
  :class:`~repro.obs.drift.DriftMonitor`) recording predicted vs.
  measured query cost per executed query.

CLI frontends: ``python -m repro stats`` (registry dump, JSON or
Prometheus text exposition, ``--slo`` objectives), ``python -m repro
trace`` (span tree of one batch, ``--export chrome|otlp``), and
``python -m repro flight`` (flight-recorder dump).
"""

from repro.obs.drift import DriftMonitor, DriftReport, DriftSample
from repro.obs.drift import MONITOR as drift
from repro.obs.export import chrome_trace, export_trace, otlp_spans
from repro.obs.flight import FlightRecord, FlightRecorder
from repro.obs.instruments import REGISTRY as registry
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slo import Objective, SLOMonitor, SLOStatus
from repro.obs.tracing import (
    Span,
    SpanIO,
    SpanRecord,
    Tracer,
    active_tracer,
    span,
    trace_query,
)

__all__ = [
    "registry",
    "enable",
    "disable",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "SpanIO",
    "SpanRecord",
    "Tracer",
    "span",
    "trace_query",
    "active_tracer",
    "chrome_trace",
    "otlp_spans",
    "export_trace",
    "FlightRecord",
    "FlightRecorder",
    "Objective",
    "SLOMonitor",
    "SLOStatus",
    "DriftMonitor",
    "DriftReport",
    "DriftSample",
    "drift",
]


def enable() -> None:
    """Turn the process-wide metrics registry on."""
    registry.enable()


def disable() -> None:
    """Turn the process-wide metrics registry off (hooks become no-ops)."""
    registry.disable()
