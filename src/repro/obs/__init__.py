"""``repro.obs`` -- zero-dependency telemetry for the IQ-tree stack.

Three pieces, documented in :doc:`docs/observability.md`:

* a process-wide **metrics registry** (:data:`registry`, from
  :mod:`repro.obs.instruments`) of counters/gauges/histograms fed by
  hooks in the storage, engine, optimizer, and persistence layers;
  disabled by default, one-flag cheap until :func:`enable` is called;
* a **tracing API** (:func:`trace_query` / :func:`span`) producing
  nested spans with wall-clock and simulated-I/O attribution;
* a **cost-model drift monitor** (:data:`drift`,
  :class:`~repro.obs.drift.DriftMonitor`) recording predicted vs.
  measured query cost per executed query.

CLI frontends: ``python -m repro stats`` (registry dump, JSON or
Prometheus text exposition) and ``python -m repro trace`` (span tree of
one query).
"""

from repro.obs.drift import DriftMonitor, DriftReport, DriftSample
from repro.obs.drift import MONITOR as drift
from repro.obs.instruments import REGISTRY as registry
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import (
    Span,
    SpanIO,
    Tracer,
    active_tracer,
    span,
    trace_query,
)

__all__ = [
    "registry",
    "enable",
    "disable",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "SpanIO",
    "Tracer",
    "span",
    "trace_query",
    "active_tracer",
    "DriftMonitor",
    "DriftReport",
    "DriftSample",
    "drift",
]


def enable() -> None:
    """Turn the process-wide metrics registry on."""
    registry.enable()


def disable() -> None:
    """Turn the process-wide metrics registry off (hooks become no-ops)."""
    registry.disable()
