"""Query flight recorder: a bounded postmortem ring buffer.

Production question: *that* query was slow / wrong / degraded -- what
exactly did it do?  Aggregate metrics (:mod:`repro.obs.instruments`)
answer "how much", traces answer "what happened" but only for queries
someone thought to trace in advance.  The flight recorder closes the
gap: attached to a tree or shard router
(``tree.use_flight_recorder()``), it watches every query go by and
keeps a full :class:`FlightRecord` -- span tree, qualification reasons,
and cache/pool/fault counter deltas -- for the ones worth a postmortem:

* **slow** -- simulated seconds over an absolute threshold, or among
  the ``top_slow`` slowest seen so far (so the first queries qualify
  until a baseline forms);
* **degraded** -- the answer carries intervals or ``LostPage`` records;
* **faulted** -- the fault-tolerance machinery retried or quarantined
  during the query.

The ring is bounded (``capacity``): old records fall off the back and
are counted in ``dropped``, so a recorder left attached forever costs
bounded memory.  Qualification reads only deterministic inputs
(simulated seconds, degraded flags, fault counters), never wall clock,
so which queries a fixed workload captures is reproducible.

``repro flight`` (CLI) runs a workload with a recorder attached and
dumps the captured records as JSON.
"""

from __future__ import annotations

import bisect
import json
from collections import deque
from dataclasses import dataclass, field

from repro.obs.instruments import (
    FLIGHT_DROPPED,
    FLIGHT_RECORDS,
    FLIGHT_RESIDENT,
    REGISTRY,
)
from repro.obs.tracing import active_tracer, trace_query

__all__ = [
    "FlightRecord",
    "FlightRecorder",
    "observe_batch",
    "observe_single",
]


@dataclass
class FlightRecord:
    """One captured query (or batch) and the evidence around it."""

    kind: str  # knn-batch | range-batch | nearest | range
    query_id: int  # engine batch id / single-query id
    reasons: tuple  # subset of ("slow", "degraded", "faulted")
    sim_seconds: float  # simulated cost that was judged
    counters: dict  # cache/pool/fault counter deltas
    detail: dict = field(default_factory=dict)
    trace: dict | None = None  # span tree (sim_dict), when captured

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "query_id": self.query_id,
            "reasons": list(self.reasons),
            "sim_seconds": self.sim_seconds,
            "counters": dict(self.counters),
            "detail": dict(self.detail),
            "trace": self.trace,
        }


class FlightRecorder:
    """Bounded ring of :class:`FlightRecord` postmortems.

    Parameters
    ----------
    capacity:
        Maximum resident records; the oldest is evicted (and counted in
        ``dropped``) when a new record lands in a full ring.
    slow_threshold:
        Absolute simulated-seconds bound; any query at or over it
        qualifies as slow.  ``None`` (default) disables the absolute
        test.
    top_slow:
        Keep a query if it ranks among this many slowest seen so far
        (0 disables relative slow capture -- the chaos harness uses
        that to count only degraded/faulted captures).
    capture_traces:
        Record each captured query's span tree by opening a private
        ``trace_query`` around it.  When a user trace is already
        active, the query is recorded without a tree rather than
        stealing spans from the ambient tracer.
    """

    def __init__(
        self,
        capacity: int = 64,
        slow_threshold: float | None = None,
        top_slow: int = 8,
        capture_traces: bool = True,
    ):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = int(capacity)
        self.slow_threshold = slow_threshold
        self.top_slow = int(top_slow)
        self.capture_traces = bool(capture_traces)
        self._ring: deque[FlightRecord] = deque(maxlen=self.capacity)
        self._slow_marks: list[float] = []  # ascending, len <= top_slow
        self.recorded = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Qualification
    # ------------------------------------------------------------------
    def _is_slow(self, sim_seconds: float) -> bool:
        if (
            self.slow_threshold is not None
            and sim_seconds >= self.slow_threshold
        ):
            return True
        if self.top_slow <= 0:
            return False
        if len(self._slow_marks) < self.top_slow:
            bisect.insort(self._slow_marks, sim_seconds)
            return True
        if sim_seconds > self._slow_marks[0]:
            bisect.insort(self._slow_marks, sim_seconds)
            del self._slow_marks[0]
            return True
        return False

    def qualify(
        self,
        sim_seconds: float,
        degraded: bool = False,
        faulted: bool = False,
    ) -> tuple:
        """Reasons this query deserves a record (empty = none).

        Call once per observed query: the slowest-seen watermark
        updates even when the query does not qualify.
        """
        reasons = []
        if self._is_slow(sim_seconds):
            reasons.append("slow")
        if degraded:
            reasons.append("degraded")
        if faulted:
            reasons.append("faulted")
        return tuple(reasons)

    # ------------------------------------------------------------------
    # Recording / inspection
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        query_id: int,
        reasons: tuple,
        sim_seconds: float,
        counters: dict,
        detail: dict | None = None,
        trace: dict | None = None,
    ) -> FlightRecord | None:
        """Append one record (no-op when ``reasons`` is empty)."""
        if not reasons:
            return None
        if len(self._ring) == self.capacity:
            self.dropped += 1
            if REGISTRY.enabled:
                FLIGHT_DROPPED.inc()
        rec = FlightRecord(
            kind=kind,
            query_id=query_id,
            reasons=tuple(reasons),
            sim_seconds=float(sim_seconds),
            counters=dict(counters),
            detail=dict(detail or {}),
            trace=trace,
        )
        self._ring.append(rec)
        self.recorded += 1
        if REGISTRY.enabled:
            for reason in rec.reasons:
                FLIGHT_RECORDS.inc(reason=reason)
            FLIGHT_RESIDENT.set(len(self._ring))
        return rec

    def records(self, reason: str | None = None) -> list[FlightRecord]:
        """Resident records, oldest first (optionally one reason)."""
        if reason is None:
            return list(self._ring)
        return [r for r in self._ring if reason in r.reasons]

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        """Drop every resident record and the slow watermark."""
        self._ring.clear()
        self._slow_marks.clear()
        if REGISTRY.enabled:
            FLIGHT_RESIDENT.set(0)

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "records": [r.to_dict() for r in self._ring],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


# ----------------------------------------------------------------------
# Observation hooks (called by the engine / router / search wrappers)
# ----------------------------------------------------------------------
def _batch_counters(stats) -> dict:
    """Counter deltas of one batch, from its already-merged stats."""
    return {
        "pages_read": stats.pages_read,
        "refinements": stats.refinements,
        "pool_hits": stats.pool_hits,
        "pool_misses": stats.pool_misses,
        "decoded_pages_reused": stats.decoded_pages_reused,
        "retries": stats.retries,
        "quarantined": stats.quarantined,
        "degraded_results": stats.degraded_results,
        "lost_pages": stats.lost_pages,
    }


def observe_batch(recorder, target, kind: str, batch_id: int, run):
    """Run one batch under the recorder's watch.

    ``run`` executes the batch and returns its ``BatchResult``; the
    recorder captures a span tree around it (unless a user trace is
    already active), then judges the batch and each query: a batch
    that retried or quarantined yields one *faulted* record, and every
    degraded or slow query yields its own record carrying the batch's
    counter deltas and its index within the batch.  Per-query simulated
    seconds are the batch mean -- the engine amortizes I/O across the
    batch, so no sharper per-query figure exists.
    """
    trace_dict = None
    if recorder.capture_traces and active_tracer() is None:
        with trace_query(target, name=kind) as tracer:
            result = run()
        if tracer.root is not None:
            trace_dict = tracer.root.sim_dict()
    else:
        result = run()
    stats = result.stats
    counters = _batch_counters(stats)
    faulted = stats.retries > 0 or stats.quarantined > 0
    if faulted:
        recorder.record(
            kind,
            batch_id,
            ("faulted",),
            stats.io.elapsed,
            counters,
            detail={"n_queries": stats.n_queries},
            trace=trace_dict,
        )
    share = stats.io.elapsed / max(stats.n_queries, 1)
    for index, query in enumerate(result.queries):
        reasons = recorder.qualify(share, degraded=query.degraded)
        if reasons:
            recorder.record(
                kind,
                batch_id,
                reasons,
                share,
                counters,
                detail={
                    "query": index,
                    "intervals": len(query.intervals or {}),
                    "lost_pages": len(query.lost_pages),
                },
                trace=trace_dict,
            )
    return result


def observe_single(recorder, tree, kind: str, query_id: int, run):
    """Run one single-query search under the recorder's watch.

    Unlike batches, a single query has an exact per-query cost
    (``result.io``) and exact fault-counter deltas, so slow/degraded/
    faulted judgments here are precise.
    """
    ctx = tree._fault_ctx
    retries_before = ctx.retries if ctx is not None else 0
    quarantined_before = ctx.quarantined if ctx is not None else 0
    pool = tree._pool
    pool_before = (pool.hits, pool.misses) if pool is not None else (0, 0)
    trace_dict = None
    if recorder.capture_traces and active_tracer() is None:
        with trace_query(tree, name=kind) as tracer:
            result = run()
        if tracer.root is not None:
            trace_dict = tracer.root.sim_dict()
    else:
        result = run()
    retries = (ctx.retries - retries_before) if ctx is not None else 0
    quarantined = (
        (ctx.quarantined - quarantined_before) if ctx is not None else 0
    )
    counters = {
        "pages_read": result.pages_read,
        "refinements": result.refinements,
        "pool_hits": (
            (pool.hits - pool_before[0]) if pool is not None else 0
        ),
        "pool_misses": (
            (pool.misses - pool_before[1]) if pool is not None else 0
        ),
        "retries": retries,
        "quarantined": quarantined,
        "degraded_results": len(result.intervals or {}),
        "lost_pages": len(result.lost_pages),
    }
    reasons = recorder.qualify(
        result.io.elapsed,
        degraded=result.degraded,
        faulted=retries > 0 or quarantined > 0,
    )
    if reasons:
        recorder.record(
            kind,
            query_id,
            reasons,
            result.io.elapsed,
            counters,
            detail={
                "intervals": len(result.intervals or {}),
                "lost_pages": len(result.lost_pages),
            },
            trace=trace_dict,
        )
    return result
