"""Query tracing: nested spans with wall-clock and simulated-I/O cost.

A :class:`Tracer` produces a tree of :class:`Span` objects.  Entering a
span snapshots the bound :class:`~repro.storage.disk.SimulatedDisk`'s
ledger; leaving it records the delta, so every span carries the
simulated seeks/blocks/time that happened inside it.  Because children
nest inside their parent's snapshot window, a span's *own* I/O (its
total minus its children's) partitions the ledger exactly: summing
``own_io`` over the whole tree reproduces the root's total, which in
turn equals the disk's :class:`~repro.storage.disk.IOStats` delta for
the traced call.

Library code never takes a tracer argument.  Instead it calls the
ambient :func:`span` helper, which is a no-op context manager unless a
:func:`trace_query` block is active -- so instrumented code paths cost
one truthiness check when nobody is tracing.

Usage::

    from repro import obs

    with obs.trace_query(tree, name="knn") as tracer:
        tree.query_engine().knn_batch(queries, k=5)
    print(tracer.render())          # human-readable span tree
    payload = tracer.to_dict()      # JSON-friendly export
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanIO",
    "Tracer",
    "span",
    "trace_query",
    "active_tracer",
]


@dataclass(frozen=True)
class SpanIO:
    """Simulated-I/O figures attributed to one span."""

    seeks: int = 0
    blocks_read: int = 0
    blocks_overread: int = 0
    elapsed: float = 0.0

    def __sub__(self, other: "SpanIO") -> "SpanIO":
        return SpanIO(
            seeks=self.seeks - other.seeks,
            blocks_read=self.blocks_read - other.blocks_read,
            blocks_overread=self.blocks_overread - other.blocks_overread,
            elapsed=self.elapsed - other.elapsed,
        )

    def __add__(self, other: "SpanIO") -> "SpanIO":
        return SpanIO(
            seeks=self.seeks + other.seeks,
            blocks_read=self.blocks_read + other.blocks_read,
            blocks_overread=self.blocks_overread + other.blocks_overread,
            elapsed=self.elapsed + other.elapsed,
        )

    def to_dict(self) -> dict:
        return {
            "seeks": self.seeks,
            "blocks_read": self.blocks_read,
            "blocks_overread": self.blocks_overread,
            "elapsed": self.elapsed,
        }


def _snapshot(disk) -> SpanIO:
    if disk is None:
        return SpanIO()
    s = disk.stats
    return SpanIO(
        seeks=s.seeks,
        blocks_read=s.blocks_read,
        blocks_overread=s.blocks_overread,
        elapsed=s.elapsed,
    )


@dataclass
class Span:
    """One node of a trace: a named, timed, I/O-attributed interval."""

    name: str
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    wall_seconds: float = 0.0
    io: SpanIO = field(default_factory=SpanIO)

    @property
    def own_io(self) -> SpanIO:
        """This span's I/O minus everything attributed to children."""
        own = self.io
        for child in self.children:
            own = own - child.io
        return own

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def to_dict(self) -> dict:
        """JSON-friendly recursive export."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "wall_seconds": self.wall_seconds,
            "io": self.io.to_dict(),
            "own_io": self.own_io.to_dict(),
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """Builds a span tree around a simulated disk's ledger."""

    def __init__(self, disk=None):
        self.disk = disk
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def root(self) -> Span | None:
        """The first top-level span (the usual single-root case)."""
        return self.roots[0] if self.roots else None

    @contextmanager
    def span(self, name: str, disk=None, **attrs):
        """Open a child span of whatever span is currently active."""
        node = Span(name=name, attrs=attrs)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        disk = disk if disk is not None else self.disk
        io_before = _snapshot(disk)
        t0 = time.perf_counter()
        try:
            yield node
        finally:
            node.wall_seconds = time.perf_counter() - t0
            node.io = _snapshot(disk) - io_before
            self._stack.pop()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"spans": [r.to_dict() for r in self.roots]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable span tree with per-span I/O attribution.

        The ``own`` column is each span's exclusive share; own figures
        over the whole tree sum to the root's total.
        """
        lines = [
            f"{'span':<42} {'wall':>9}  {'sim-io':>10}  "
            f"{'own':>10}  {'seeks':>5}  {'blocks':>6}"
        ]
        for root in self.roots:
            self._render_into(root, "", "", lines)
        return "\n".join(lines)

    def _render_into(self, node, prefix, child_prefix, lines) -> None:
        label = prefix + node.name
        own = node.own_io
        lines.append(
            f"{label:<42} {node.wall_seconds * 1e3:>7.2f}ms  "
            f"{node.io.elapsed * 1e3:>8.2f}ms  "
            f"{own.elapsed * 1e3:>8.2f}ms  "
            f"{own.seeks:>5}  {own.blocks_read:>6}"
        )
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            branch = "└─ " if last else "├─ "
            extend = "   " if last else "│  "
            self._render_into(
                child,
                child_prefix + branch,
                child_prefix + extend,
                lines,
            )


# ----------------------------------------------------------------------
# Ambient API used by instrumented library code
# ----------------------------------------------------------------------
_ACTIVE: list[Tracer] = []


class _NullSpan:
    """Reusable no-op context manager for the untraced fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def active_tracer() -> Tracer | None:
    """The innermost active tracer, or None outside ``trace_query``."""
    return _ACTIVE[-1] if _ACTIVE else None


def span(name: str, disk=None, **attrs):
    """Context manager: a span on the active tracer, or a no-op.

    Library hooks call this unconditionally; without an active
    :func:`trace_query` block it returns a shared null context manager,
    so instrumentation costs one list-truthiness check.
    """
    if not _ACTIVE:
        return _NULL_SPAN
    return _ACTIVE[-1].span(name, disk=disk, **attrs)


def _resolve_disk(target):
    """Find the simulated disk behind whatever the caller handed us."""
    if target is None:
        return None
    for candidate in (target, getattr(target, "tree", None)):
        if candidate is None:
            continue
        disk = getattr(candidate, "disk", None)
        if disk is not None and hasattr(disk, "stats"):
            return disk
    # A bare disk (anything exposing an IOStats-shaped ledger).
    return target if hasattr(target, "stats") else None


@contextmanager
def trace_query(target=None, name: str = "query"):
    """Trace everything executed inside the block as a span tree.

    ``target`` is an :class:`~repro.core.tree.IQTree`, a
    :class:`~repro.engine.QueryEngine`, a
    :class:`~repro.storage.disk.SimulatedDisk`, or None (wall-clock
    only).  Yields the :class:`Tracer`; after the block exits,
    ``tracer.root`` holds the finished span tree.
    """
    disk = _resolve_disk(target)
    tracer = Tracer(disk)
    _ACTIVE.append(tracer)
    try:
        with tracer.span(name):
            yield tracer
    finally:
        _ACTIVE.pop()
