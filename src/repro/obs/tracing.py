"""Query tracing: nested spans with wall-clock and simulated-I/O cost.

A :class:`Tracer` produces a tree of :class:`Span` objects.  Entering a
span snapshots the bound :class:`~repro.storage.disk.SimulatedDisk`'s
ledger; leaving it records the delta, so every span carries the
simulated seeks/blocks/time that happened inside it.  Because children
nest inside their parent's snapshot window, a span's *own* I/O (its
total minus its children's) partitions the ledger exactly: summing
``own_io`` over the whole tree reproduces the root's total, which in
turn equals the disk's :class:`~repro.storage.disk.IOStats` delta for
the traced call.

Spans carry **two** clocks.  ``wall_seconds`` is the host's
``perf_counter`` delta -- useful to humans, worthless for comparison
(it varies run to run).  ``sim_start``/``sim_seconds`` place the span
on the *simulated-seconds* timeline read from the tracer's clock disk,
so a trace of a fixed workload is bit-identical across runs, worker
counts, and executor backends; the exporters in
:mod:`repro.obs.export` emit only the simulated timeline.

Work executed in worker threads or processes cannot touch the ambient
tracer (a process cannot see it, and a thread mutating the shared stack
would interleave with the coordinator).  Worker kernels instead return
compact, picklable :class:`SpanRecord` lists which the coordinator
grafts into the live tree with :meth:`Tracer.stitch` -- in query order,
so the stitched tree is independent of how work was sharded.

Library code never takes a tracer argument.  Instead it calls the
ambient :func:`span` helper, which is a no-op context manager unless a
:func:`trace_query` block is active -- so instrumented code paths cost
one truthiness check when nobody is tracing.

Usage::

    from repro import obs

    with obs.trace_query(tree, name="knn") as tracer:
        tree.query_engine().knn_batch(queries, k=5)
    print(tracer.render())          # human-readable span tree
    payload = tracer.to_dict()      # JSON-friendly export
    events = tracer.root.to_events()  # Chrome trace events (Perfetto)
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanIO",
    "SpanRecord",
    "Tracer",
    "span",
    "trace_query",
    "active_tracer",
]


@dataclass(frozen=True)
class SpanIO:
    """Simulated-I/O figures attributed to one span."""

    seeks: int = 0
    blocks_read: int = 0
    blocks_overread: int = 0
    elapsed: float = 0.0

    def __sub__(self, other: "SpanIO") -> "SpanIO":
        return SpanIO(
            seeks=self.seeks - other.seeks,
            blocks_read=self.blocks_read - other.blocks_read,
            blocks_overread=self.blocks_overread - other.blocks_overread,
            elapsed=self.elapsed - other.elapsed,
        )

    def __add__(self, other: "SpanIO") -> "SpanIO":
        return SpanIO(
            seeks=self.seeks + other.seeks,
            blocks_read=self.blocks_read + other.blocks_read,
            blocks_overread=self.blocks_overread + other.blocks_overread,
            elapsed=self.elapsed + other.elapsed,
        )

    def to_dict(self) -> dict:
        return {
            "seeks": self.seeks,
            "blocks_read": self.blocks_read,
            "blocks_overread": self.blocks_overread,
            "elapsed": self.elapsed,
        }


def _snapshot(disk) -> SpanIO:
    if disk is None:
        return SpanIO()
    s = disk.stats
    return SpanIO(
        seeks=s.seeks,
        blocks_read=s.blocks_read,
        blocks_overread=s.blocks_overread,
        elapsed=s.elapsed,
    )


@dataclass(frozen=True)
class SpanRecord:
    """A completed span as plain, picklable data.

    What a worker kernel hands back across the thread/process boundary:
    no live objects, only the name, attributes, and ledger deltas.
    ``sim_start``/``sim_seconds`` are read from the *worker's* private
    ledger (which the determinism contract keeps at zero -- workers
    charge no simulated I/O), so records are bit-identical for any
    worker count and either backend.  No wall clock is recorded: worker
    wall time is scheduling noise, and the enclosing coordinator span
    already times the whole phase for humans.

    :meth:`Tracer.stitch` turns records back into :class:`Span` nodes,
    re-basing ``sim_start`` onto the coordinator's simulated clock.
    """

    name: str
    attrs: tuple = ()  # ((key, value), ...) -- dicts don't hash/freeze
    sim_start: float = 0.0
    sim_seconds: float = 0.0
    seeks: int = 0
    blocks_read: int = 0
    blocks_overread: int = 0
    children: tuple = ()

    @staticmethod
    def capture(name: str, ledger, before, **attrs) -> "SpanRecord":
        """Build a record from a worker-ledger snapshot pair.

        ``before`` is ``ledger_state(ledger)`` taken when the unit of
        work started; the record's window is the delta since then.
        """
        after = ledger_state(ledger)
        return SpanRecord(
            name=name,
            attrs=tuple(sorted(attrs.items())),
            sim_start=before[3],
            sim_seconds=after[3] - before[3],
            seeks=after[0] - before[0],
            blocks_read=after[1] - before[1],
            blocks_overread=after[2] - before[2],
        )


def ledger_state(ledger) -> tuple[int, int, int, float]:
    """Snapshot an IOStats-shaped ledger as a plain tuple."""
    if ledger is None:
        return (0, 0, 0, 0.0)
    return (
        ledger.seeks,
        ledger.blocks_read,
        ledger.blocks_overread,
        ledger.elapsed,
    )


@dataclass
class Span:
    """One node of a trace: a named, timed, I/O-attributed interval.

    ``wall_seconds`` is host wall-clock (humans only).  ``sim_start``
    and ``sim_seconds`` are the span's interval on the simulated-seconds
    timeline -- deterministic, and what the exporters emit.
    """

    name: str
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    wall_seconds: float = 0.0
    io: SpanIO = field(default_factory=SpanIO)
    sim_start: float = 0.0
    sim_seconds: float = 0.0

    @property
    def own_io(self) -> SpanIO:
        """This span's I/O minus everything attributed to children."""
        own = self.io
        for child in self.children:
            own = own - child.io
        return own

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree (depth-first)."""
        return [node for node in self.walk() if node.name == name]

    def to_dict(self) -> dict:
        """JSON-friendly recursive export."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "wall_seconds": self.wall_seconds,
            "sim_start": self.sim_start,
            "sim_seconds": self.sim_seconds,
            "io": self.io.to_dict(),
            "own_io": self.own_io.to_dict(),
            "children": [c.to_dict() for c in self.children],
        }

    def sim_dict(self) -> dict:
        """Deterministic projection: everything except wall clock.

        Bit-identical across runs, worker counts, and backends for a
        fixed workload -- what the sweep tests compare and the
        exporters serialize.
        """
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "sim_start": self.sim_start,
            "sim_seconds": self.sim_seconds,
            "io": self.io.to_dict(),
            "own_io": self.own_io.to_dict(),
            "children": [c.sim_dict() for c in self.children],
        }

    def to_events(self, pid: int = 0, tid: int = 0) -> list[dict]:
        """This subtree as Chrome trace events (``B``/``E`` pairs).

        Timestamps are the simulated-seconds timeline in microseconds
        (the format's unit), so the events are deterministic and load
        directly in Perfetto / ``chrome://tracing``.  Events come out
        depth-first, which makes ``ts`` non-decreasing: a child's
        window nests inside its parent's because the simulated clock
        only advances inside the parent's snapshot window.
        """
        events: list[dict] = []
        self._emit_events(events, pid, tid)
        return events

    def _emit_events(self, out: list, pid: int, tid: int) -> None:
        args = dict(self.attrs)
        own = self.own_io
        args["own_seeks"] = own.seeks
        args["own_blocks"] = own.blocks_read
        out.append(
            {
                "name": self.name,
                "cat": "iq",
                "ph": "B",
                "ts": round(self.sim_start * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for child in self.children:
            child._emit_events(out, pid, tid)
        out.append(
            {
                "name": self.name,
                "cat": "iq",
                "ph": "E",
                "ts": round((self.sim_start + self.sim_seconds) * 1e6, 3),
                "pid": pid,
                "tid": tid,
            }
        )


class Tracer:
    """Builds a span tree around a simulated disk's ledger.

    ``disk`` doubles as the tracer's *clock*: every span's
    ``sim_start`` is read from it, even when the span attributes its
    I/O to a different disk (the shard router's per-shard sub-spans
    measure their delta on the shard disk but are placed on the
    router's composite timeline, which keeps sibling timestamps
    monotone).
    """

    def __init__(self, disk=None):
        self.disk = disk
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def root(self) -> Span | None:
        """The first top-level span (the usual single-root case)."""
        return self.roots[0] if self.roots else None

    @contextmanager
    def span(self, name: str, disk=None, **attrs):
        """Open a child span of whatever span is currently active."""
        node = Span(name=name, attrs=attrs)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        disk = disk if disk is not None else self.disk
        clock = self.disk if self.disk is not None else disk
        node.sim_start = _snapshot(clock).elapsed
        io_before = _snapshot(disk)
        t0 = time.perf_counter()
        try:
            yield node
        finally:
            node.wall_seconds = time.perf_counter() - t0
            node.io = _snapshot(disk) - io_before
            node.sim_seconds = node.io.elapsed
            self._stack.pop()

    # ------------------------------------------------------------------
    # Worker-record stitching
    # ------------------------------------------------------------------
    def stitch(self, records, parent: Span | None = None) -> list[Span]:
        """Graft worker :class:`SpanRecord` lists into the live tree.

        Records become children of ``parent`` (default: the currently
        open span), re-based onto this tracer's simulated clock: a
        record's ``sim_start`` is its offset within the worker's
        private ledger (zero under the workers-charge-nothing
        contract), added to the clock's reading *now*.  Call in query
        order so the stitched tree does not depend on how the work was
        sharded across workers.
        """
        if parent is None:
            parent = self._stack[-1] if self._stack else None
        base = _snapshot(self.disk).elapsed
        spans = [self._materialize(rec, base) for rec in records]
        if parent is None:
            self.roots.extend(spans)
        else:
            parent.children.extend(spans)
        return spans

    def _materialize(self, rec: SpanRecord, base: float) -> Span:
        node = Span(
            name=rec.name,
            attrs=dict(rec.attrs),
            sim_start=base + rec.sim_start,
            sim_seconds=rec.sim_seconds,
            io=SpanIO(
                seeks=rec.seeks,
                blocks_read=rec.blocks_read,
                blocks_overread=rec.blocks_overread,
                elapsed=rec.sim_seconds,
            ),
        )
        node.children = [
            self._materialize(child, base) for child in rec.children
        ]
        return node

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"spans": [r.to_dict() for r in self.roots]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable span tree with per-span I/O attribution.

        The ``own`` column is each span's exclusive share; own figures
        over the whole tree sum to the root's total.
        """
        lines = [
            f"{'span':<42} {'wall':>9}  {'sim-io':>10}  "
            f"{'own':>10}  {'seeks':>5}  {'blocks':>6}"
        ]
        for root in self.roots:
            self._render_into(root, "", "", lines)
        return "\n".join(lines)

    def _render_into(self, node, prefix, child_prefix, lines) -> None:
        label = prefix + node.name
        own = node.own_io
        lines.append(
            f"{label:<42} {node.wall_seconds * 1e3:>7.2f}ms  "
            f"{node.io.elapsed * 1e3:>8.2f}ms  "
            f"{own.elapsed * 1e3:>8.2f}ms  "
            f"{own.seeks:>5}  {own.blocks_read:>6}"
        )
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            branch = "└─ " if last else "├─ "
            extend = "   " if last else "│  "
            self._render_into(
                child,
                child_prefix + branch,
                child_prefix + extend,
                lines,
            )


# ----------------------------------------------------------------------
# Ambient API used by instrumented library code
# ----------------------------------------------------------------------
_ACTIVE: list[Tracer] = []


class _NullSpan:
    """Reusable no-op context manager for the untraced fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def active_tracer() -> Tracer | None:
    """The innermost active tracer, or None outside ``trace_query``."""
    return _ACTIVE[-1] if _ACTIVE else None


def span(name: str, disk=None, **attrs):
    """Context manager: a span on the active tracer, or a no-op.

    Library hooks call this unconditionally; without an active
    :func:`trace_query` block it returns a shared null context manager,
    so instrumentation costs one list-truthiness check.
    """
    if not _ACTIVE:
        return _NULL_SPAN
    return _ACTIVE[-1].span(name, disk=disk, **attrs)


def _resolve_disk(target):
    """Find the simulated disk behind whatever the caller handed us."""
    if target is None:
        return None
    for candidate in (target, getattr(target, "tree", None)):
        if candidate is None:
            continue
        disk = getattr(candidate, "disk", None)
        if disk is not None and hasattr(disk, "stats"):
            return disk
    # A bare disk (anything exposing an IOStats-shaped ledger).
    return target if hasattr(target, "stats") else None


@contextmanager
def trace_query(target=None, name: str = "query"):
    """Trace everything executed inside the block as a span tree.

    ``target`` is an :class:`~repro.core.tree.IQTree`, a
    :class:`~repro.engine.QueryEngine`, a
    :class:`~repro.engine.sharding.ShardRouter` (whose composite ledger
    view becomes the clock), a
    :class:`~repro.storage.disk.SimulatedDisk`, or None (wall-clock
    only).  Yields the :class:`Tracer`; after the block exits,
    ``tracer.root`` holds the finished span tree.
    """
    disk = _resolve_disk(target)
    tracer = Tracer(disk)
    _ACTIVE.append(tracer)
    try:
        with tracer.span(name):
            yield tracer
    finally:
        _ACTIVE.pop()
