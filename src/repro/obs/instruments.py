"""The process-wide instrument catalogue.

One :data:`REGISTRY` (disabled by default) and every named instrument
the library's hooks write to.  Hooks in hot paths guard with
``if REGISTRY.enabled:`` so a disabled registry costs one attribute
check; everything funnels through this module so ``python -m repro
stats`` and the tests see a single coherent catalogue.

Accounting discipline (kept in sync with the tests in
``tests/test_obs_registry.py``):

* disk counters are fed **only** by the physical charge points on
  :class:`~repro.storage.disk.SimulatedDisk`
  (:meth:`~repro.storage.disk.SimulatedDisk.read_blocks` and the retry
  backoff :meth:`~repro.storage.disk.SimulatedDisk.charge_backoff`) --
  never by :class:`~repro.storage.disk.IOStats` ledger arithmetic
  (``merged_with``/``reset``/snapshots), so ledger bookkeeping in the
  query engine cannot double-count;
* buffer-pool counters are fed only by :class:`~repro.storage.cache.
  BufferPool` itself, so every caller (single-query, batched, planned)
  shares one accounting path.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

__all__ = ["REGISTRY"]

#: The process-wide registry all library hooks write to.
REGISTRY = MetricsRegistry(enabled=False)

# ----------------------------------------------------------------------
# Simulated disk (fed by SimulatedDisk.read_blocks only)
# ----------------------------------------------------------------------
DISK_SEEKS = REGISTRY.counter(
    "iq_disk_seeks_total",
    "Random positioning operations on the simulated disk",
)
DISK_BLOCKS_READ = REGISTRY.counter(
    "iq_disk_blocks_read_total",
    "Blocks transferred from the simulated disk (wanted or over-read)",
)
DISK_BLOCKS_OVERREAD = REGISTRY.counter(
    "iq_disk_blocks_overread_total",
    "Blocks transferred purely to bridge a gap between wanted blocks",
)
DISK_SIM_SECONDS = REGISTRY.counter(
    "iq_disk_simulated_seconds_total",
    "Simulated I/O time accrued by the disk model",
)

# ----------------------------------------------------------------------
# Buffer pool
# ----------------------------------------------------------------------
POOL_HITS = REGISTRY.counter(
    "iq_buffer_pool_hits_total", "Block lookups served from the pool"
)
POOL_MISSES = REGISTRY.counter(
    "iq_buffer_pool_misses_total", "Block lookups that missed the pool"
)
POOL_EVICTIONS = REGISTRY.counter(
    "iq_buffer_pool_evictions_total", "LRU evictions from the pool"
)

# ----------------------------------------------------------------------
# Page scheduler (Section 2)
# ----------------------------------------------------------------------
SCHED_BATCH_PLANS = REGISTRY.counter(
    "iq_scheduler_batched_plans_total",
    "Optimal batched-fetch plans computed",
)
SCHED_PLANNED_RUNS = REGISTRY.counter(
    "iq_scheduler_planned_runs_total",
    "Sequential runs emitted by batched-fetch plans",
)
SCHED_WINDOWS = REGISTRY.counter(
    "iq_scheduler_cost_balance_windows_total",
    "Cost-balance windows evaluated (Section 2.1 NN scheduling)",
)
SCHED_WINDOW_BLOCKS = REGISTRY.histogram(
    "iq_scheduler_window_blocks",
    "Blocks per cost-balance window (1 = no speculative read)",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128),
)

# ----------------------------------------------------------------------
# Query execution
# ----------------------------------------------------------------------
PAGES_DECODED = REGISTRY.counter(
    "iq_pages_decoded_total",
    "Quantized data pages decoded, by bit-width (label: bits)",
)
REFINEMENTS = REGISTRY.counter(
    "iq_refinements_total",
    "Third-level exact-coordinate look-ups",
)
QUERY_SECONDS = REGISTRY.histogram(
    "iq_query_simulated_seconds",
    "Simulated I/O time per query (batched queries report the "
    "per-query share of their batch)",
)
BATCHES = REGISTRY.counter(
    "iq_batches_total", "Query batches executed by the engine"
)
BATCH_QUERIES = REGISTRY.counter(
    "iq_batch_queries_total", "Queries executed through the batch engine"
)

# ----------------------------------------------------------------------
# Shard router (repro.engine.sharding)
# ----------------------------------------------------------------------
ROUTER_BATCHES = REGISTRY.counter(
    "iq_router_batches_total",
    "Scatter-gather batches executed by the shard router",
)
SHARDS_CONTACTED = REGISTRY.histogram(
    "iq_router_shards_contacted",
    "Live shards contacted per query (global bound pruning skips the "
    "rest)",
    buckets=(0, 1, 2, 4, 8, 16, 32, 64),
)
SHARDS_SKIPPED = REGISTRY.counter(
    "iq_router_shards_skipped_total",
    "Per-query shard visits avoided because the shard's best mindist "
    "exceeded the query's running bound",
)
DEAD_SHARD_QUERIES = REGISTRY.counter(
    "iq_router_dead_shard_queries_total",
    "Query/shard encounters degraded to LostPage bounds because the "
    "shard was dead or failing",
)
SHARDED_QUERY_SECONDS = REGISTRY.histogram(
    "iq_sharded_query_simulated_seconds",
    "Open-loop per-query latency (queue wait + service) observed by "
    "the sharded serving benchmark",
)

# ----------------------------------------------------------------------
# Decoded-page cache (repro.engine.page_cache)
# ----------------------------------------------------------------------
DECODED_CACHE_HITS = REGISTRY.counter(
    "iq_decoded_page_cache_hits_total",
    "Quantized pages served already-decoded from the tree-level cache",
)
DECODED_CACHE_MISSES = REGISTRY.counter(
    "iq_decoded_page_cache_misses_total",
    "Decoded-page cache lookups that had to fetch and decode",
)
DECODED_CACHE_EVICTIONS = REGISTRY.counter(
    "iq_decoded_page_cache_evictions_total",
    "Decoded pages evicted to stay within the memory budget",
)
DECODED_CACHE_INVALIDATIONS = REGISTRY.counter(
    "iq_decoded_page_cache_invalidations_total",
    "Decoded pages dropped because the backing block changed "
    "(CRC mismatch, replace_block, re-layout, or quarantine)",
)
DECODED_CACHE_BYTES = REGISTRY.gauge(
    "iq_decoded_page_cache_resident_bytes",
    "Bytes of decoded code matrices and cell bounds currently resident",
)

# ----------------------------------------------------------------------
# Build / optimizer (Sections 3.4-3.6)
# ----------------------------------------------------------------------
OPT_RUNS = REGISTRY.counter(
    "iq_optimizer_runs_total", "Optimal-quantization runs"
)
OPT_SPLITS = REGISTRY.counter(
    "iq_optimizer_splits_total",
    "Split-tree iterations performed by the optimizer",
)
OPT_PAGES = REGISTRY.gauge(
    "iq_optimizer_pages",
    "Page counts of the last optimizer run (label: stage = "
    "initial | final)",
)

# ----------------------------------------------------------------------
# Read-path fault tolerance (repro.storage.runtime_faults)
# ----------------------------------------------------------------------
READ_FAULTS = REGISTRY.counter(
    "iq_read_faults_total",
    "Injected read faults observed on the timed read path "
    "(label: kind = transient | persistent | corrupt)",
)
FAULT_RETRIES = REGISTRY.counter(
    "iq_read_retries_total",
    "Timed reads retried after a fault (backoff charged as seeks)",
)
FAULT_QUARANTINES = REGISTRY.counter(
    "iq_quarantined_blocks_total",
    "Block addresses quarantined after a permanent read failure",
)
DEGRADED_RESULTS = REGISTRY.counter(
    "iq_degraded_results_total",
    "Query results returned with a quantization interval instead of an "
    "exact distance",
)
LOST_PAGES = REGISTRY.counter(
    "iq_lost_pages_total",
    "Second-level pages reported lost to a query (partition skipped)",
)

# ----------------------------------------------------------------------
# Flight recorder (fed by repro.obs.flight.FlightRecorder)
# ----------------------------------------------------------------------
FLIGHT_RECORDS = REGISTRY.counter(
    "iq_flight_records_total",
    "Queries captured by the flight recorder, by qualification reason "
    "(label: reason = slow | degraded | faulted)",
)
FLIGHT_DROPPED = REGISTRY.counter(
    "iq_flight_records_dropped_total",
    "Flight records evicted from the bounded ring to admit newer ones",
)
FLIGHT_RESIDENT = REGISTRY.gauge(
    "iq_flight_resident_records",
    "Flight records currently resident in the ring buffer",
)

# ----------------------------------------------------------------------
# SLO monitor (fed by repro.obs.slo.SLOMonitor.evaluate)
# ----------------------------------------------------------------------
SLO_MET = REGISTRY.gauge(
    "iq_slo_objective_met",
    "1 when the objective currently meets its threshold, else 0 "
    "(label: objective)",
)
SLO_BURN = REGISTRY.gauge(
    "iq_slo_burn_ratio",
    "Observed value over threshold; above 1.0 the objective is burning "
    "(label: objective)",
)
SLO_OBSERVED = REGISTRY.gauge(
    "iq_slo_observed_value",
    "Value the objective was last evaluated against "
    "(label: objective)",
)
SLO_THRESHOLD = REGISTRY.gauge(
    "iq_slo_threshold",
    "Declared threshold of the objective (label: objective)",
)

# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
CONTAINER_OPS = REGISTRY.counter(
    "iq_container_operations_total",
    "Container save/load/fsck outcomes (labels: op, outcome)",
)

# ----------------------------------------------------------------------
# Write-ahead journal (repro.storage.journal)
# ----------------------------------------------------------------------
WAL_APPENDS = REGISTRY.counter(
    "iq_wal_appends_total",
    "Operations appended to the write-ahead journal (label: op = "
    "insert | delete)",
)
WAL_APPENDED_BYTES = REGISTRY.counter(
    "iq_wal_appended_bytes_total",
    "Bytes written to the write-ahead journal (records only, not the "
    "header)",
)
WAL_FSYNCS = REGISTRY.counter(
    "iq_wal_fsyncs_total",
    "fsync calls issued by the journal append path",
)
WAL_REPLAYED = REGISTRY.counter(
    "iq_wal_replayed_records_total",
    "Journal records re-applied during recovery (records at or below "
    "the checkpointed wal_seq are skipped, not counted)",
)
WAL_RECOVERIES = REGISTRY.counter(
    "iq_wal_recoveries_total",
    "Journal scans at open time (label: outcome = clean | torn-tail "
    "| corrupt)",
)
WAL_CHECKPOINTS = REGISTRY.counter(
    "iq_wal_checkpoints_total",
    "Checkpoints of the journal into the container (label: outcome)",
)
WAL_SIZE = REGISTRY.gauge(
    "iq_wal_size_bytes", "Current byte size of the write-ahead journal"
)

# ----------------------------------------------------------------------
# Background maintenance (repro.core.maintenance.MaintenanceManager)
# ----------------------------------------------------------------------
MAINT_SWEEPS = REGISTRY.counter(
    "iq_maintenance_sweeps_total",
    "Background re-quantization sweeps (label: outcome = ok | noop "
    "| error)",
)
MAINT_REQUANTIZED = REGISTRY.counter(
    "iq_maintenance_pages_requantized_total",
    "Pages re-quantized in place via replace_block (bits-only change)",
)
MAINT_RESTRUCTURED = REGISTRY.counter(
    "iq_maintenance_pages_restructured_total",
    "Dirty pages whose sweep required a structural re-layout "
    "(split, exact transition, or quarantined block address)",
)
MAINT_DIRTY = REGISTRY.gauge(
    "iq_maintenance_dirty_pages",
    "Dirty pages seen by the most recent maintenance sweep",
)

# ----------------------------------------------------------------------
# Cost-model drift (fed by repro.obs.drift.DriftMonitor)
# ----------------------------------------------------------------------
_DRIFT_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0)
DRIFT_PAGE_ERROR = REGISTRY.histogram(
    "iq_costmodel_drift_page_relative_error",
    "Relative error |actual - predicted| / predicted of the cost "
    "model's per-query page-access prediction (eqs. 16-18)",
    buckets=_DRIFT_BUCKETS,
)
DRIFT_TIME_ERROR = REGISTRY.histogram(
    "iq_costmodel_drift_seconds_relative_error",
    "Relative error of the cost model's per-query simulated-time "
    "prediction (eq. 23)",
    buckets=_DRIFT_BUCKETS,
)
