"""Trace exporters: Chrome trace-event JSON and OTLP-style spans.

Both exporters serialize only the *simulated* timeline
(``Span.sim_start``/``sim_seconds``), never wall clock or random ids,
so exporting the same fixed workload twice -- or once with 1 worker
and once with 8 on the process backend -- produces byte-identical
output.  That determinism is what lets CI diff exported traces and
``scripts/validate_trace.py`` assert structural invariants.

* :func:`chrome_trace` emits the Chrome trace-event format (``B``/``E``
  duration pairs, timestamps in microseconds): load the file in
  `Perfetto <https://ui.perfetto.dev>`_ or ``chrome://tracing`` and the
  span tree renders as a flame chart over simulated time.
* :func:`otlp_spans` emits an OTLP/JSON-shaped span dump
  (``resourceSpans`` → ``scopeSpans`` → ``spans``) with deterministic
  sequential span ids, for tooling that speaks the OpenTelemetry wire
  shape.
"""

from __future__ import annotations

import json

from repro.obs.tracing import Span, Tracer

__all__ = ["chrome_trace", "otlp_spans", "export_trace"]


def _roots(trace) -> list[Span]:
    """Accept a Tracer, a Span, or a list of Spans."""
    if isinstance(trace, Tracer):
        return list(trace.roots)
    if isinstance(trace, Span):
        return [trace]
    return list(trace)


def chrome_trace(trace) -> dict:
    """The trace as a Chrome trace-event JSON object.

    One synthetic process/thread per root span (roots are independent
    traced calls); events within a root nest by B/E pairing.
    """
    events: list[dict] = []
    for tid, root in enumerate(_roots(trace)):
        events.extend(root.to_events(pid=0, tid=tid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _otlp_value(value) -> dict:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    if isinstance(value, str):
        return {"stringValue": value}
    return {"stringValue": json.dumps(value, default=str)}


def otlp_spans(trace, service_name: str = "repro-iq") -> dict:
    """The trace as an OTLP/JSON-shaped span dump.

    Ids are deterministic -- one fixed trace id, span ids numbered in
    depth-first visit order -- because the point of this exporter is
    comparable output, not wire-exact OTLP (there is no collector in a
    simulation).  Timestamps are simulated nanoseconds since the
    workload's time zero.
    """
    spans: list[dict] = []
    next_id = [0]

    def visit(node: Span, parent_id: str) -> None:
        next_id[0] += 1
        span_id = f"{next_id[0]:016x}"
        attributes = [
            {"key": key, "value": _otlp_value(value)}
            for key, value in sorted(node.attrs.items())
        ]
        own = node.own_io
        attributes.extend(
            [
                {"key": "io.seeks", "value": _otlp_value(node.io.seeks)},
                {
                    "key": "io.blocks_read",
                    "value": _otlp_value(node.io.blocks_read),
                },
                {"key": "io.own_seeks", "value": _otlp_value(own.seeks)},
                {
                    "key": "io.own_blocks_read",
                    "value": _otlp_value(own.blocks_read),
                },
            ]
        )
        spans.append(
            {
                "traceId": f"{1:032x}",
                "spanId": span_id,
                "parentSpanId": parent_id,
                "name": node.name,
                "kind": "SPAN_KIND_INTERNAL",
                "startTimeUnixNano": str(int(round(node.sim_start * 1e9))),
                "endTimeUnixNano": str(
                    int(round((node.sim_start + node.sim_seconds) * 1e9))
                ),
                "attributes": attributes,
            }
        )
        for child in node.children:
            visit(child, span_id)

    for root in _roots(trace):
        visit(root, "")
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": service_name},
                        }
                    ]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.obs.tracing"},
                        "spans": spans,
                    }
                ],
            }
        ]
    }


def export_trace(trace, fmt: str) -> dict:
    """Dispatch on format name ("chrome" or "otlp")."""
    if fmt == "chrome":
        return chrome_trace(trace)
    if fmt == "otlp":
        return otlp_spans(trace)
    raise ValueError(f"unknown trace export format: {fmt!r}")
