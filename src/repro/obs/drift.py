"""Cost-model drift monitoring (the paper's eqs. 6-22 as an invariant).

The IQ-tree's layout is chosen by the Section 3 cost model, so the
model's accuracy is a standing claim the running system can check
itself: for every executed kNN query the :class:`DriftMonitor` stores
the model's *predicted* page accesses and simulated time next to the
*measured* figures from the :class:`~repro.storage.disk.IOStats`
ledger, and reports relative-error percentiles.  A drifting model --
because the data changed under maintenance, because the fractal
dimension estimate is stale, or because a code change broke an equation
-- shows up as a rising error percentile long before the optimizer's
layouts degrade.

Predictions are cached per ``(tree, layout, k)``: evaluating eqs. 16-18
and 23 costs a few hundred microseconds, far too much to pay per query.

The module-level :data:`MONITOR` is fed by the query paths whenever the
metrics registry is enabled; each recorded sample also lands in the
``iq_costmodel_drift_*`` histograms, so Prometheus scrapes see drift
without any extra wiring.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.obs import instruments

__all__ = ["DriftSample", "DriftReport", "DriftMonitor", "MONITOR"]

_EPS = 1e-12


def _relative_error(actual: float, predicted: float) -> float:
    return abs(actual - predicted) / max(abs(predicted), _EPS)


@dataclass(frozen=True)
class DriftSample:
    """Predicted vs. measured cost of one executed query."""

    predicted_pages: float
    actual_pages: float
    predicted_seconds: float
    actual_seconds: float

    @property
    def page_error(self) -> float:
        """Relative error of the page-access prediction."""
        return _relative_error(self.actual_pages, self.predicted_pages)

    @property
    def time_error(self) -> float:
        """Relative error of the simulated-time prediction."""
        return _relative_error(
            self.actual_seconds, self.predicted_seconds
        )


@dataclass(frozen=True)
class DriftReport:
    """Relative-error percentiles over the monitor's sample window."""

    count: int
    page_error_mean: float
    page_error_p50: float
    page_error_p90: float
    page_error_max: float
    time_error_mean: float
    time_error_p50: float
    time_error_p90: float
    time_error_max: float

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "page_error": {
                "mean": self.page_error_mean,
                "p50": self.page_error_p50,
                "p90": self.page_error_p90,
                "max": self.page_error_max,
            },
            "time_error": {
                "mean": self.time_error_mean,
                "p50": self.time_error_p50,
                "p90": self.time_error_p90,
                "max": self.time_error_max,
            },
        }

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        if self.count == 0:
            return "cost-model drift: no samples recorded"
        return (
            f"cost-model drift over {self.count} queries "
            "(relative error |actual-predicted|/predicted):\n"
            f"  pages  p50={self.page_error_p50:.2f} "
            f"p90={self.page_error_p90:.2f} "
            f"max={self.page_error_max:.2f} "
            f"mean={self.page_error_mean:.2f}\n"
            f"  time   p50={self.time_error_p50:.2f} "
            f"p90={self.time_error_p90:.2f} "
            f"max={self.time_error_max:.2f} "
            f"mean={self.time_error_mean:.2f}"
        )


class DriftMonitor:
    """Sliding-window collector of predicted-vs-actual query costs."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._samples: deque[DriftSample] = deque(maxlen=capacity)
        self._predictions: dict[tuple, tuple[float, float]] = {}

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[DriftSample]:
        """A copy of the current window."""
        return list(self._samples)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        predicted_pages: float,
        actual_pages: float,
        predicted_seconds: float,
        actual_seconds: float,
    ) -> DriftSample:
        """Store one predicted-vs-actual pair; feeds the histograms."""
        sample = DriftSample(
            predicted_pages=float(predicted_pages),
            actual_pages=float(actual_pages),
            predicted_seconds=float(predicted_seconds),
            actual_seconds=float(actual_seconds),
        )
        self._samples.append(sample)
        if instruments.REGISTRY.enabled:
            instruments.DRIFT_PAGE_ERROR.observe(sample.page_error)
            instruments.DRIFT_TIME_ERROR.observe(sample.time_error)
        return sample

    def observe_query(
        self, tree, k: int, actual_pages: float, actual_seconds: float
    ) -> DriftSample:
        """Record one executed kNN query against the tree's own model."""
        predicted_pages, predicted_seconds = self._prediction(tree, k)
        return self.record(
            predicted_pages, actual_pages, predicted_seconds,
            actual_seconds,
        )

    def _prediction(self, tree, k: int) -> tuple[float, float]:
        """Model-predicted (pages, seconds) per query, cached by layout.

        The cache key includes the page count and live-point count, so
        maintenance (insert/delete/reoptimize) invalidates it naturally.
        """
        key = (id(tree), tree.n_pages, tree.n_live_points, int(k))
        cached = self._predictions.get(key)
        if cached is not None:
            return cached
        # Local imports: obs must stay importable from the storage
        # layer without pulling the cost model in at module-import time.
        from repro.core.optimizer import stats_for
        from repro.costmodel.model import CostModel
        from repro.costmodel.pages import expected_page_accesses

        model = tree.cost_model
        if int(k) != model.k:
            model = CostModel(
                model.disk,
                model.dim,
                model.n_total,
                fractal_dim=model.fractal_dim,
                data_space_volume=model.data_space_volume,
                metric=model.metric,
                k=int(k),
            )
        pages = expected_page_accesses(
            tree.n_pages,
            tree.n_live_points,
            tree.dim,
            fractal_dim=model.fractal_dim,
            data_space_volume=model.data_space_volume,
            metric=model.metric,
            k=int(k),
        )
        # stats_for attributes per-codec refinement cost: PQ pages
        # report their codebook's grid-equivalent resolution, not the
        # grid bits, so mixed-codec trees do not show spurious drift.
        breakdown = model.breakdown(
            stats_for(opt) for opt in tree._partitions
        )
        prediction = (float(pages), float(breakdown.total))
        self._predictions[key] = prediction
        return prediction

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> DriftReport:
        """Percentile summary of the current window."""
        if not self._samples:
            return DriftReport(0, *([0.0] * 8))
        page = np.array([s.page_error for s in self._samples])
        time_ = np.array([s.time_error for s in self._samples])
        return DriftReport(
            count=len(self._samples),
            page_error_mean=float(page.mean()),
            page_error_p50=float(np.percentile(page, 50)),
            page_error_p90=float(np.percentile(page, 90)),
            page_error_max=float(page.max()),
            time_error_mean=float(time_.mean()),
            time_error_p50=float(np.percentile(time_, 50)),
            time_error_p90=float(np.percentile(time_, 90)),
            time_error_max=float(time_.max()),
        )

    def reset(self) -> None:
        """Drop all samples and cached predictions."""
        self._samples.clear()
        self._predictions.clear()


#: Process-wide monitor fed by the query paths when the registry is on.
MONITOR = DriftMonitor()
