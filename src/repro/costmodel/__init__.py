"""The IQ-tree cost model (paper Sections 2.2 and 3.4).

Two distinct uses of the model coexist:

* **Build time** (:mod:`~repro.costmodel.model` and friends): estimate
  the expected query cost of a candidate partitioning/quantization so the
  optimizer can pick the optimal one.  Components: first-level directory
  scan (eq. 22), second-level page accesses with optimized reading
  (eqs. 16-21), and third-level refinement look-ups (eqs. 6-15), with the
  fractal dimension correcting for correlated data.
* **Query time** (:mod:`~repro.costmodel.access_probability`): estimate,
  for the cost-balance scheduler, the probability that a specific data
  page will have to be loaded later during the running nearest-neighbor
  query (eqs. 2-5).
"""

from repro.costmodel.density import (
    point_density,
    fractal_point_density,
    nn_radius,
    knn_radius,
)
from repro.costmodel.fractal import (
    box_counting_dimension,
    correlation_dimension,
    estimate_fractal_dimension,
)
from repro.costmodel.minkowski import refinement_probability, cell_volume
from repro.costmodel.pages import (
    expected_page_accesses,
    optimized_read_cost,
    first_level_cost,
)
from repro.costmodel.access_probability import (
    PageView,
    access_probabilities,
)
from repro.costmodel.model import CostModel, CostBreakdown, PartitionStats

__all__ = [
    "point_density",
    "fractal_point_density",
    "nn_radius",
    "knn_radius",
    "box_counting_dimension",
    "correlation_dimension",
    "estimate_fractal_dimension",
    "refinement_probability",
    "cell_volume",
    "expected_page_accesses",
    "optimized_read_cost",
    "first_level_cost",
    "PageView",
    "access_probabilities",
    "CostModel",
    "CostBreakdown",
    "PartitionStats",
]
