"""Directory-level cost components (paper eqs. 16-22).

* :func:`expected_page_accesses` -- how many of the ``n`` second-level
  pages an NN query must read at minimum (eqs. 16-18): estimate the
  typical page-region and NN-sphere volumes from the global density,
  Minkowski-sum them, and scale by ``n``.
* :func:`optimized_read_cost` -- the time to read ``k`` of ``n``
  uniformly spread pages using the optimal over-read strategy (eq. 21):
  gaps shorter than the over-read window ``v`` are transferred, longer
  gaps pay a seek.
* :func:`first_level_cost` -- the linear scan of the flat first-level
  directory (eq. 22).
"""

from __future__ import annotations

import math

from repro.exceptions import CostModelError
from repro.geometry.metrics import EUCLIDEAN
from repro.storage.disk import DiskModel
from repro.storage.serializer import directory_entry_size

__all__ = [
    "expected_page_accesses",
    "optimized_read_cost",
    "first_level_cost",
]


def expected_page_accesses(
    n_pages: int,
    n_points: int,
    dim: int,
    fractal_dim: float | None = None,
    data_space_volume: float = 1.0,
    metric=None,
    k: int = 1,
) -> float:
    """Expected minimum number of second-level pages read (eqs. 16-18).

    The page-region volume is sized to contain ``N/n`` points and the
    query-sphere volume to contain ``k`` points, both with the fractal
    exponent ``d / D_F`` (eqs. 16-17); the access fraction is the
    Minkowski sum of the typical (cubic) page region and the
    query sphere relative to the data space, raised by ``D_F / d``
    (eq. 18), and multiplied by ``n``.  The result is clamped to
    ``[1, n]`` (the pivot page is always read).

    Boundary effects: when the enlarged page region overflows the data
    space the raw volume ratio grossly underestimates the touched
    fraction -- the adaptation the paper delegates to [8].  We apply
    the standard correction: normalize to the unit data space, clamp
    each enlarged side length at 1, and use the metric's volume-matched
    cube radius for the sphere's per-dimension reach.
    """
    metric = metric or EUCLIDEAN
    if n_pages <= 0 or n_points <= 0:
        raise CostModelError("page and point counts must be positive")
    if dim <= 0:
        raise CostModelError("dimension must be positive")
    if data_space_volume <= 0:
        raise CostModelError("data-space volume must be positive")
    if k <= 0:
        raise CostModelError("k must be positive")
    if fractal_dim is None:
        fractal_dim = float(dim)
    if not 0 < fractal_dim <= dim:
        raise CostModelError("fractal dimension out of range")

    from repro.costmodel.access_probability import effective_cube_radius

    exponent = dim / fractal_dim
    # Work in the unit-volume normalized data space.
    v_mbr = (n_pages / n_points) ** exponent  # eq. 16, as a fraction
    v_sphere = (k / n_points) ** exponent  # eq. 17, as a fraction
    side = v_mbr ** (1.0 / dim)
    radius = metric.ball_radius(v_sphere, dim)
    reach = effective_cube_radius(radius, dim, metric)
    # Boundary-clamped Minkowski fraction: each enlarged side cannot
    # exceed the data space's unit extent.
    fraction = min(side + 2.0 * reach, 1.0) ** dim
    accessed = n_pages * fraction ** (fractal_dim / dim)
    return float(min(max(accessed, 1.0), n_pages))


def optimized_read_cost(
    n_pages: int, k_accessed: float, model: DiskModel
) -> float:
    """Expected time to read ``k`` of ``n`` pages with over-reading (eq. 21).

    Assumes the ``k`` accessed pages are uniformly spread over the file.
    The distance to the next accessed page is geometric with success
    probability ``k/n``; distances up to the over-read window
    ``v = t_seek/t_xfer`` are transferred at ``a * t_xfer``, larger ones
    pay ``t_seek + t_xfer``.  The closed form below is the paper's
    eq. 21 written as an expectation (plus the initial seek).
    """
    if n_pages <= 0:
        raise CostModelError("page count must be positive")
    k_accessed = float(min(max(k_accessed, 0.0), n_pages))
    if k_accessed <= 0:
        return 0.0
    p = k_accessed / n_pages
    v = int(model.overread_window)
    if p >= 1.0:
        # Full scan: one seek, transfer everything.
        return model.t_seek + n_pages * model.t_xfer
    q = 1.0 - p
    # E[cost per accessed page] =
    #   sum_{a=1..v} P(dist = a) * a * t_xfer
    # + P(dist > v) * (t_seek + t_xfer)
    # with P(dist = a) = q^(a-1) * p  (geometric gap between accesses).
    # Closed form for the truncated geometric mean:
    #   sum_{a=1..v} a q^(a-1) p
    #     = (1 - q^v) / p - v q^v      (standard identity)
    qv = q**v if v > 0 else 1.0
    mean_short = (1.0 - qv) / p - v * qv if v > 0 else 0.0
    expected = mean_short * model.t_xfer + qv * (model.t_seek + model.t_xfer)
    return model.t_seek + k_accessed * expected


def first_level_cost(n_pages: int, dim: int, model: DiskModel) -> float:
    """Sequential scan of the flat first-level directory (eq. 22)."""
    if n_pages <= 0:
        raise CostModelError("page count must be positive")
    entry = directory_entry_size(dim)
    blocks = math.ceil(n_pages * entry / model.block_size)
    return model.t_seek + blocks * model.t_xfer
