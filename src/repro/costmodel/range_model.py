"""Cost and selectivity estimation for range queries.

The paper's model covers nearest-neighbor queries; range queries follow
from the same machinery with the query radius known instead of derived:

* **selectivity** -- the expected result count is ``N`` times the
  fraction of data inside the query ball, with the fractal exponent
  accounting for correlation (the growth law of eqs. 13-14);
* **page accesses** -- a page is touched when the query ball reaches
  its region: the Minkowski sum of the typical page region and the
  query ball (the eq. 18 construction at radius ``r``);
* **time** -- first-level scan + batched page fetch (eq. 21 at the
  estimated access count) + one refinement look-up per candidate
  (range answers must produce their exact records).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CostModelError
from repro.costmodel.access_probability import effective_cube_radius
from repro.costmodel.pages import first_level_cost, optimized_read_cost
from repro.geometry.metrics import EUCLIDEAN
from repro.storage.disk import DiskModel

__all__ = ["RangeEstimate", "estimate_range_query"]


@dataclass(frozen=True)
class RangeEstimate:
    """Model predictions for one range query."""

    expected_results: float
    expected_pages: float
    expected_time: float


def estimate_range_query(
    radius: float,
    n_pages: int,
    n_points: int,
    dim: int,
    disk: DiskModel,
    fractal_dim: float | None = None,
    data_space_volume: float = 1.0,
    metric=None,
) -> RangeEstimate:
    """Predict result count, page accesses, and time for a range query.

    Parameters mirror :func:`~repro.costmodel.pages.expected_page_accesses`
    with the query ball's ``radius`` given explicitly.
    """
    metric = metric or EUCLIDEAN
    if radius < 0:
        raise CostModelError("radius must be non-negative")
    if n_pages <= 0 or n_points <= 0 or dim <= 0:
        raise CostModelError("counts and dimension must be positive")
    if data_space_volume <= 0:
        raise CostModelError("data-space volume must be positive")
    if fractal_dim is None:
        fractal_dim = float(dim)
    if not 0 < fractal_dim <= dim:
        raise CostModelError("fractal dimension out of range")

    # Normalize to the unit data space.
    unit_scale = data_space_volume ** (1.0 / dim)
    r_unit = radius / unit_scale

    # Selectivity: fraction of data inside the ball under the fractal
    # growth law, boundary-clamped like the page model.
    ball_fraction = min(metric.ball_volume(r_unit, dim), 1.0)
    expected_results = n_points * ball_fraction ** (fractal_dim / dim)
    expected_results = float(min(expected_results, n_points))

    # Page accesses: enlarge the typical page region by the ball.
    exponent = dim / fractal_dim
    side = (n_pages / n_points) ** (exponent / dim)
    reach = effective_cube_radius(r_unit, dim, metric)
    fraction = min(side + 2.0 * reach, 1.0) ** dim
    expected_pages = n_pages * fraction ** (fractal_dim / dim)
    expected_pages = float(min(max(expected_pages, 0.0), n_pages))

    # Time: directory scan + batched fetch + per-candidate refinement.
    time = first_level_cost(n_pages, dim, disk)
    time += optimized_read_cost(n_pages, expected_pages, disk)
    time += expected_results * (disk.t_seek + disk.t_xfer)
    return RangeEstimate(
        expected_results=expected_results,
        expected_pages=expected_pages,
        expected_time=float(time),
    )
