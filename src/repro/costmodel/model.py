"""The assembled cost model ``T = T_1st + T_2nd + T_3rd`` (eq. 23).

:class:`CostModel` binds together the component formulas with a concrete
disk model and data-set summary, exposing exactly the quantities the
split-tree optimizer needs:

* the *variable cost* of a partition -- its expected third-level
  refinement time, which depends on the partition's own MBR, point
  count, and quantization resolution, and
* the *constant cost* of a solution -- first- and second-level time,
  which depends only on how many pages the solution has (this is the
  observation that makes the greedy algorithm optimal, Lemma 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.exceptions import CostModelError
from repro.costmodel.minkowski import refinement_probability
from repro.costmodel.pages import (
    expected_page_accesses,
    first_level_cost,
    optimized_read_cost,
)
from repro.geometry.metrics import EUCLIDEAN
from repro.storage.disk import DiskModel

__all__ = ["PartitionStats", "CostBreakdown", "CostModel"]


@dataclass(frozen=True)
class PartitionStats:
    """The cost-relevant summary of one candidate partition.

    Attributes
    ----------
    m:
        Number of points in the partition.
    side_lengths:
        Side lengths of the partition's MBR (tuple for hashability).
    bits:
        Bits per dimension the partition would be stored with (the
        finest ``g`` whose capacity admits ``m`` points).
    """

    m: int
    side_lengths: tuple[float, ...]
    bits: int


@dataclass(frozen=True)
class CostBreakdown:
    """Expected per-query cost, split by directory level (eq. 23)."""

    first_level: float
    second_level: float
    refinement: float

    @property
    def total(self) -> float:
        """``T = T_1st + T_2nd + T_3rd``."""
        return self.first_level + self.second_level + self.refinement


class CostModel:
    """Expected-query-cost estimator for a candidate IQ-tree layout.

    Parameters
    ----------
    disk:
        Disk timing model.
    dim:
        Data dimensionality ``d``.
    n_total:
        Total number of points ``N`` in the database.
    fractal_dim:
        Fractal dimension ``D_F`` of the data; defaults to ``d``
        (uniform/independence assumption).
    data_space_volume:
        Volume of the data space (1 for normalized data).
    metric:
        Query metric; defaults to Euclidean.
    k:
        Queries are k-nearest-neighbor with this ``k``.
    """

    def __init__(
        self,
        disk: DiskModel,
        dim: int,
        n_total: int,
        fractal_dim: float | None = None,
        data_space_volume: float = 1.0,
        metric=None,
        k: int = 1,
    ):
        if dim <= 0 or n_total <= 0:
            raise CostModelError("dim and n_total must be positive")
        if k <= 0:
            raise CostModelError("k must be positive")
        self.disk = disk
        self.dim = int(dim)
        self.n_total = int(n_total)
        self.fractal_dim = (
            float(fractal_dim) if fractal_dim is not None else float(dim)
        )
        if not 0 < self.fractal_dim <= dim:
            raise CostModelError("fractal dimension out of range")
        self.data_space_volume = float(data_space_volume)
        self.metric = metric or EUCLIDEAN
        self.k = int(k)

    # ------------------------------------------------------------------
    # Variable cost (per partition)
    # ------------------------------------------------------------------
    def refinement_lookups(self, stats: PartitionStats) -> float:
        """Expected third-level look-ups per query caused by a partition.

        ``m * P_refine`` -- each of the partition's ``m`` points is
        refined independently with the probability of eq. 15.
        """
        prob = refinement_probability(
            stats.m,
            np.asarray(stats.side_lengths),
            stats.bits,
            self.n_total,
            fractal_dim=self.fractal_dim,
            metric=self.metric,
            k=self.k,
        )
        return stats.m * prob

    def refinement_cost(self, stats: PartitionStats) -> float:
        """Expected third-level time per query caused by a partition.

        Each refinement is a random access to the exact-data file:
        one seek plus one block transfer.
        """
        per_lookup = self.disk.t_seek + self.disk.t_xfer
        return self.refinement_lookups(stats) * per_lookup

    # ------------------------------------------------------------------
    # Constant cost (per page count)
    # ------------------------------------------------------------------
    def directory_costs(self, n_pages: int) -> tuple[float, float]:
        """``(T_1st, T_2nd)`` for a solution with ``n_pages`` pages."""
        if n_pages <= 0:
            raise CostModelError("page count must be positive")
        t_first = first_level_cost(n_pages, self.dim, self.disk)
        accessed = expected_page_accesses(
            n_pages,
            self.n_total,
            self.dim,
            fractal_dim=self.fractal_dim,
            data_space_volume=self.data_space_volume,
            metric=self.metric,
            k=self.k,
        )
        t_second = optimized_read_cost(n_pages, accessed, self.disk)
        return t_first, t_second

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def breakdown(
        self, partitions: Iterable[PartitionStats]
    ) -> CostBreakdown:
        """Full cost breakdown of a solution (a set of partitions)."""
        partitions = list(partitions)
        if not partitions:
            raise CostModelError("a solution needs at least one partition")
        t_first, t_second = self.directory_costs(len(partitions))
        t_refine = sum(self.refinement_cost(p) for p in partitions)
        return CostBreakdown(t_first, t_second, t_refine)

    def total_cost(self, partitions: Iterable[PartitionStats]) -> float:
        """Convenience: the scalar total of :meth:`breakdown`."""
        return self.breakdown(partitions).total

    def total_from_aggregates(
        self, n_pages: int, refinement_cost_sum: float
    ) -> float:
        """Total cost from pre-aggregated terms.

        The optimizer maintains a running sum of per-partition
        refinement costs so each split step re-evaluates only the
        page-count-dependent terms.
        """
        t_first, t_second = self.directory_costs(n_pages)
        return t_first + t_second + refinement_cost_sum

    def __repr__(self) -> str:
        return (
            f"CostModel(dim={self.dim}, n_total={self.n_total}, "
            f"fractal_dim={self.fractal_dim:.2f}, k={self.k}, "
            f"metric={self.metric.name})"
        )
