"""Refinement probability of a quantized point (paper eqs. 10-15).

A point stored as a ``g``-bit grid cell must be refined (its exact
coordinates loaded from the third level) when the query ball touches its
cell.  Under the "queries follow the data distribution" assumption that
probability is the fraction of data points falling into the Minkowski
enlargement of the cell by the nearest-neighbor sphere -- with the
fractal exponent ``D_F / d`` correcting for correlation (eq. 15).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CostModelError
from repro.costmodel.density import fractal_point_density, fractal_nn_radius
from repro.geometry.metrics import EUCLIDEAN
from repro.geometry.volumes import minkowski_sum

__all__ = ["cell_volume", "minkowski_cell_volume", "refinement_probability"]


def cell_volume(side_lengths: np.ndarray, bits: int) -> float:
    """Volume of one quantization cell: ``V_mbr / 2^(d*g)`` (eq. 10)."""
    side_lengths = np.asarray(side_lengths, dtype=np.float64)
    if bits < 1:
        raise CostModelError("bits must be >= 1")
    d = side_lengths.size
    return float(np.prod(side_lengths)) / 2.0 ** (d * bits)


def minkowski_cell_volume(
    side_lengths: np.ndarray, bits: int, radius: float, metric=None
) -> float:
    """Volume of cell (+) NN-sphere for a ``g``-bit cell (eq. 11/12).

    The cell's side lengths are the MBR sides divided by ``2^g``; the
    Minkowski sum then follows the metric's formula (exact product form
    for the maximum metric, the binomial approximation for Euclidean).
    """
    metric = metric or EUCLIDEAN
    side_lengths = np.asarray(side_lengths, dtype=np.float64)
    if bits < 1:
        raise CostModelError("bits must be >= 1")
    cell_sides = side_lengths / 2.0**bits
    return minkowski_sum(cell_sides, radius, metric)


def refinement_probability(
    m: int,
    side_lengths: np.ndarray,
    bits: int,
    n_total: int,
    fractal_dim: float | None = None,
    metric=None,
    k: int = 1,
) -> float:
    """Probability that one stored point needs exact-geometry refinement.

    Implements paper eq. 15::

        P_refine = (rho_F / N) * V_mink(cell, NN-sphere) ** (D_F / d)

    Parameters
    ----------
    m:
        Number of points on the page.
    side_lengths:
        The page MBR's side lengths.
    bits:
        Quantization bits per dimension ``g``.  ``bits >= 32`` means the
        page stores exact data, so the refinement probability is zero.
    n_total:
        Total number of points ``N`` in the database.
    fractal_dim:
        Fractal dimension ``D_F`` of the data (defaults to the full
        embedding dimension ``d``, i.e. the uniform/independent model).
    metric:
        Query metric (defaults to Euclidean).
    k:
        Size the query ball for a k-nearest-neighbor query.
    """
    metric = metric or EUCLIDEAN
    side_lengths = np.asarray(side_lengths, dtype=np.float64)
    d = side_lengths.size
    if bits >= 32:
        return 0.0
    if n_total <= 0:
        raise CostModelError("total point count must be positive")
    if fractal_dim is None:
        fractal_dim = float(d)
    if not 0 < fractal_dim <= d:
        raise CostModelError("fractal dimension out of range")
    density_f = fractal_point_density(m, side_lengths, fractal_dim)
    radius = fractal_nn_radius(density_f, d, fractal_dim, metric, k=k)
    mink = minkowski_cell_volume(side_lengths, bits, radius, metric)
    prob = (density_f / n_total) * mink ** (fractal_dim / d)
    return float(min(prob, 1.0))
