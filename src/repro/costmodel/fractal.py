"""Fractal (intrinsic) dimension estimation.

The cost model uses the fractal dimension ``D_F`` to account for
correlation in the data: correlated points concentrate on a lower-
dimensional subset of the embedding space, so the number of points inside
a growing volume scales with exponent ``D_F``, not ``d``.

Two standard estimators are provided:

* **Box counting** (capacity dimension ``D_0``): count occupied grid
  cells at a ladder of scales and fit ``log N(eps)`` against
  ``log (1/eps)``.
* **Correlation integral** (correlation dimension ``D_2``): count point
  pairs within distance ``r`` at a ladder of radii and fit
  ``log C(r)`` against ``log r``.  ``D_2`` is the variant the paper's
  reference [2] recommends for selectivity estimation.

Both estimators work on a subsample for large inputs, clamp the result to
``(0, d]``, and are deterministic given the ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CostModelError

__all__ = [
    "box_counting_dimension",
    "correlation_dimension",
    "estimate_fractal_dimension",
]


def _normalize(points: np.ndarray) -> np.ndarray:
    """Scale points into the unit cube (degenerate dims collapse to 0)."""
    lower = points.min(axis=0)
    extent = points.max(axis=0) - lower
    safe = np.where(extent > 0, extent, 1.0)
    return (points - lower) / safe


def _subsample(points: np.ndarray, limit: int, seed: int) -> np.ndarray:
    if points.shape[0] <= limit:
        return points
    rng = np.random.default_rng(seed)
    idx = rng.choice(points.shape[0], size=limit, replace=False)
    return points[idx]


def box_counting_dimension(
    points: np.ndarray,
    scales: int = 6,
    max_points: int = 20000,
    seed: int = 0,
) -> float:
    """Estimate the box-counting dimension ``D_0``.

    Parameters
    ----------
    points:
        Data array of shape ``(n, d)`` with ``n >= 2``.
    scales:
        Number of dyadic grid levels (cell counts ``2^1 .. 2^scales``
        per dimension).
    max_points:
        Subsample size bound for tractability.
    seed:
        Seed for the subsample draw.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] < 2:
        raise CostModelError("need at least two points")
    if scales < 2:
        raise CostModelError("need at least two scales to fit a slope")
    points = _subsample(points, max_points, seed)
    unit = _normalize(points)
    d = unit.shape[1]
    log_inv_eps = []
    log_counts = []
    for level in range(1, scales + 1):
        cells_per_dim = 2**level
        codes = np.minimum(
            (unit * cells_per_dim).astype(np.int64), cells_per_dim - 1
        )
        # Hash each d-dim cell code to one integer key per point.
        keys = codes[:, 0].copy()
        for j in range(1, d):
            keys = keys * cells_per_dim + codes[:, j]
        occupied = np.unique(keys).size
        log_inv_eps.append(level * np.log(2.0))
        log_counts.append(np.log(occupied))
    slope = _fit_slope(np.array(log_inv_eps), np.array(log_counts))
    return float(np.clip(slope, 1e-6, d))


def correlation_dimension(
    points: np.ndarray,
    radii: int = 8,
    max_points: int = 2000,
    seed: int = 0,
) -> float:
    """Estimate the correlation dimension ``D_2``.

    Computes the correlation integral ``C(r)`` (fraction of point pairs
    within Euclidean distance ``r``) on a geometric ladder of radii and
    fits the log-log slope over the radii where ``C(r)`` is informative
    (strictly between its floor and saturation).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] < 2:
        raise CostModelError("need at least two points")
    if radii < 2:
        raise CostModelError("need at least two radii to fit a slope")
    points = _subsample(points, max_points, seed)
    d = points.shape[1]
    unit = _normalize(points)
    diffs = unit[:, None, :] - unit[None, :, :]
    dists = np.sqrt(np.sum(diffs * diffs, axis=-1))
    iu = np.triu_indices(unit.shape[0], k=1)
    pair_dists = dists[iu]
    positive = pair_dists[pair_dists > 0]
    if positive.size == 0:
        # All points identical: zero-dimensional support.
        return 1e-6
    r_lo = np.quantile(positive, 0.02)
    r_hi = np.quantile(positive, 0.5)
    if r_hi <= r_lo:
        r_hi = r_lo * 4.0
    ladder = np.geomspace(r_lo, r_hi, radii)
    log_r = []
    log_c = []
    n_pairs = pair_dists.size
    for r in ladder:
        c = np.count_nonzero(pair_dists <= r) / n_pairs
        if 0 < c < 1:
            log_r.append(np.log(r))
            log_c.append(np.log(c))
    if len(log_r) < 2:
        return float(d)
    slope = _fit_slope(np.array(log_r), np.array(log_c))
    return float(np.clip(slope, 1e-6, d))


def estimate_fractal_dimension(
    points: np.ndarray, method: str = "correlation", **kwargs
) -> float:
    """Dispatch to a fractal-dimension estimator by name."""
    if method == "correlation":
        return correlation_dimension(points, **kwargs)
    if method == "box":
        return box_counting_dimension(points, **kwargs)
    raise CostModelError(f"unknown fractal estimator: {method!r}")


def _fit_slope(x: np.ndarray, y: np.ndarray) -> float:
    """Least-squares slope of y against x."""
    x_mean = x.mean()
    y_mean = y.mean()
    denom = np.sum((x - x_mean) ** 2)
    if denom == 0:
        raise CostModelError("degenerate scale ladder")
    return float(np.sum((x - x_mean) * (y - y_mean)) / denom)
