"""Runtime per-page access probabilities (paper Section 2.2, eqs. 2-5).

During a nearest-neighbor search the cost-balance scheduler must decide
whether to pre-read a page near the pivot.  The page ``b_i`` will have to
be read later exactly when no point closer than its mindist has been
found by then, i.e. when the *b_i-sphere* (the ball around the query that
just touches ``b_i``) contains no data point of any higher-priority page.

For each higher-priority page ``b_k`` the probability of *not* having a
point in the intersection is ``(1 - V_int / V_mbr) ** M_k`` (eq. 3); the
access probability is the product over all higher-priority, not yet
processed pages (eq. 2).  The intersection volume uses the max-metric
closed form (eq. 5); for Euclidean (and other) metrics the sphere is
replaced by the *volume-matched* cube -- the cube whose volume equals
the metric ball's -- before applying the rectangular formula.  This is
the documented approximation (the paper likewise resorts to
approximations for non-max metrics); matching volumes rather than using
the enclosing bounding box keeps the intersection estimate unbiased in
high dimensions, where the enclosing cube exceeds the ball's volume by
orders of magnitude and would collapse every access probability to
zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CostModelError
from repro.geometry.metrics import MAXIMUM, Metric, MaximumMetric

__all__ = [
    "PageView",
    "access_probabilities",
    "intersection_volumes",
    "intersection_fractions",
    "effective_cube_radius",
]


@dataclass
class PageView:
    """Snapshot of the still-pending directory pages of one query.

    Arrays are aligned: row ``i`` describes pending page ``i``.

    Attributes
    ----------
    lowers, uppers:
        MBR bounds, shape ``(n, d)``.
    counts:
        Points stored on each page, shape ``(n,)``.
    mindists:
        Current mindist from the query to each page, shape ``(n,)``.
    """

    lowers: np.ndarray
    uppers: np.ndarray
    counts: np.ndarray
    mindists: np.ndarray

    def __post_init__(self) -> None:
        if self.lowers.shape != self.uppers.shape or self.lowers.ndim != 2:
            raise CostModelError("bounds must be matching (n, d) arrays")
        n = self.lowers.shape[0]
        if self.counts.shape != (n,) or self.mindists.shape != (n,):
            raise CostModelError("counts/mindists must be (n,) arrays")


def effective_cube_radius(radius: float, dim: int, metric: Metric) -> float:
    """Half-side of the cube whose volume matches the metric ball's.

    For the maximum metric the ball *is* a cube, so the radius passes
    through unchanged; for any other metric the cube is shrunk so
    ``(2 r_eff)^d = V_ball(r, d)``.
    """
    if isinstance(metric, MaximumMetric):
        return radius
    return 0.5 * radius * metric.unit_ball_volume(dim) ** (1.0 / dim)


def intersection_volumes(
    query: np.ndarray,
    radius: float,
    lowers: np.ndarray,
    uppers: np.ndarray,
) -> np.ndarray:
    """Volumes of box ∩ max-metric ball for many boxes (paper eq. 5).

    The ball is the cube ``[q - r, q + r]``; the intersection with each
    box is the product over dimensions of
    ``min(ub, q+r) - max(lb, q-r)`` clamped at zero.  Callers with a
    non-max metric should convert the ball radius with
    :func:`effective_cube_radius` first.
    """
    if radius < 0:
        raise CostModelError("radius must be non-negative")
    query = np.asarray(query, dtype=np.float64)
    side = np.minimum(uppers, query + radius) - np.maximum(
        lowers, query - radius
    )
    side = np.maximum(side, 0.0)
    return np.prod(side, axis=1)


def access_probabilities(
    query: np.ndarray,
    pages: PageView,
    targets: np.ndarray,
    metric: Metric = MAXIMUM,
    k: int = 1,
) -> np.ndarray:
    """Access probability (eq. 2) for each page index in ``targets``.

    Parameters
    ----------
    query:
        The query point, shape ``(d,)``.
    pages:
        Snapshot of all *pending* (not yet processed, not pruned) pages,
        sorted arbitrarily; priorities are derived from ``mindists``.
    targets:
        Indices into the snapshot for which probabilities are wanted.
    metric:
        Query metric (non-max metrics use the volume-matched cube).
    k:
        The query's neighbor count.  ``k = 1`` is the paper's eq. 2;
        for ``k > 1`` the page must be read unless at least ``k``
        points lie inside the b_i-sphere, so the probability becomes
        the lower tail of the point count's distribution -- the "k-NN
        extended model" the paper sketches but omits.  We model the
        count as Poisson with the exact k = 1 log-mass as its rate,
        which makes the k = 1 case coincide with eq. 2 exactly.

    Returns
    -------
    numpy.ndarray
        Probabilities in ``[0, 1]``, one per target.  A target whose
        mindist is the global minimum gets probability 1 (it is the
        pivot and must be read).

    Notes
    -----
    For target ``i`` with b_i-sphere radius ``r_i = mindist_i``, every
    page with a *smaller* mindist intersects the sphere and contributes
    the no-point-in-intersection factor of eq. 3; pages with larger
    mindist cannot contain a closer point and contribute nothing.
    """
    if k < 1:
        raise CostModelError("k must be at least 1")
    query = np.asarray(query, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    dim = pages.lowers.shape[1]
    results = np.empty(targets.size, dtype=np.float64)
    for out_idx, i in enumerate(targets):
        radius = pages.mindists[i]
        higher = pages.mindists < radius
        higher[i] = False
        if not np.any(higher):
            results[out_idx] = 1.0
            continue
        fraction = intersection_fractions(
            query,
            effective_cube_radius(float(radius), dim, metric),
            pages.lowers[higher],
            pages.uppers[higher],
        )
        fraction = np.clip(fraction, 0.0, 1.0 - 1e-15)
        # rate = -log P(no point in any intersection); exp(-rate) is
        # eq. 2 exactly, and doubles as the Poisson rate for k > 1.
        rate = -float(
            np.sum(pages.counts[higher] * np.log1p(-fraction))
        )
        results[out_idx] = _poisson_lower_tail(rate, k)
    return np.clip(results, 0.0, 1.0)


def _poisson_lower_tail(rate: float, k: int) -> float:
    """``P(Poisson(rate) < k)`` -- probability of fewer than k hits."""
    if rate <= 0.0:
        return 1.0
    log_term = -rate  # log of e^-rate * rate^0 / 0!
    total = np.exp(log_term)
    for i in range(1, k):
        log_term += np.log(rate) - np.log(i)
        total += np.exp(log_term)
    return float(min(total, 1.0))


def intersection_fractions(
    query: np.ndarray,
    radius: float,
    lowers: np.ndarray,
    uppers: np.ndarray,
) -> np.ndarray:
    """``V_int / V_mbr`` for many boxes, computed per dimension.

    Dividing the per-dimension interval overlaps (instead of the volume
    products) avoids floating-point underflow for tiny boxes and
    handles degenerate (zero-extent) dimensions exactly: a flat side
    contributes fraction 1 when its coordinate lies inside the query
    cube's interval and 0 otherwise.
    """
    if radius < 0:
        raise CostModelError("radius must be non-negative")
    query = np.asarray(query, dtype=np.float64)
    sides = uppers - lowers
    overlap = np.minimum(uppers, query + radius) - np.maximum(
        lowers, query - radius
    )
    overlap = np.maximum(overlap, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = np.where(
            sides > 0.0,
            overlap / np.where(sides > 0.0, sides, 1.0),
            # Degenerate side: inside the interval iff overlap >= 0,
            # which after clamping means the raw overlap was >= 0.
            (
                (lowers >= query - radius) & (lowers <= query + radius)
            ).astype(np.float64),
        )
    return np.prod(np.clip(frac, 0.0, 1.0), axis=1)
