"""Point densities and nearest-neighbor radii (paper eqs. 6-7, 13-14).

The cost model turns a page's point count and MBR volume into a local
point density, then sizes the expected nearest-neighbor sphere so that it
contains an expectation of one (or ``k``) data points.  Correlated data
is handled by the fractal variants: the exponent ``D_F / d`` shrinks the
effective volume, reflecting that correlated points concentrate on a
``D_F``-dimensional subset of the space.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CostModelError
from repro.geometry.metrics import EUCLIDEAN

__all__ = [
    "point_density",
    "fractal_point_density",
    "nn_radius",
    "knn_radius",
]

#: floor applied to degenerate side lengths when computing volumes, so a
#: page whose points share a coordinate still has a finite density.
_MIN_SIDE = 1e-12


def _effective_volume(side_lengths: np.ndarray, exponent: float) -> float:
    """``prod_i max(s_i, eps) ** exponent`` -- shared volume helper."""
    sides = np.maximum(np.asarray(side_lengths, dtype=np.float64), _MIN_SIDE)
    return float(np.prod(sides**exponent))


def point_density(m: int, side_lengths: np.ndarray) -> float:
    """Local point density ``rho = m / volume`` (paper eq. 6)."""
    if m <= 0:
        raise CostModelError("point count must be positive")
    return m / _effective_volume(side_lengths, 1.0)


def fractal_point_density(
    m: int, side_lengths: np.ndarray, fractal_dim: float
) -> float:
    """Fractal point density (paper eq. 13).

    The volume is computed with each side raised to ``D_F / d``, so the
    density measures points per unit of *effective* (occupied) volume.
    """
    side_lengths = np.asarray(side_lengths, dtype=np.float64)
    d = side_lengths.size
    if m <= 0:
        raise CostModelError("point count must be positive")
    if not 0 < fractal_dim <= d:
        raise CostModelError(
            f"fractal dimension must be in (0, {d}], got {fractal_dim}"
        )
    return m / _effective_volume(side_lengths, fractal_dim / d)


def nn_radius(density: float, dim: int, metric=None) -> float:
    """Expected nearest-neighbor radius for a given density (eq. 7).

    The radius is chosen so the metric ball of that radius contains an
    expectation of exactly one point: ``V_ball(r) = 1 / rho``.
    """
    return knn_radius(density, dim, 1, metric)


def knn_radius(density: float, dim: int, k: int, metric=None) -> float:
    """Radius of the ball expected to contain ``k`` points.

    This is the paper's k-NN extension (footnote to Section 3.4): size
    the query ball to hold an expectation of ``k`` points instead of one.
    """
    metric = metric or EUCLIDEAN
    if density <= 0:
        raise CostModelError("density must be positive")
    if k <= 0:
        raise CostModelError("k must be positive")
    return metric.ball_radius(k / density, dim)


def fractal_nn_radius(
    density_f: float, dim: int, fractal_dim: float, metric=None, k: int = 1
) -> float:
    """Fractal nearest-neighbor radius (paper eq. 14).

    With the fractal density ``rho_F``, the enclosed-point count grows
    with volume as ``V ** (D_F / d)``, so the volume that holds ``k``
    points solves ``rho_F * V ** (D_F / d) = k``.
    """
    metric = metric or EUCLIDEAN
    if density_f <= 0:
        raise CostModelError("density must be positive")
    if not 0 < fractal_dim <= dim:
        raise CostModelError("fractal dimension out of range")
    if k <= 0:
        raise CostModelError("k must be positive")
    volume = (k / density_f) ** (dim / fractal_dim)
    return metric.ball_radius(volume, dim)


__all__.append("fractal_nn_radius")
