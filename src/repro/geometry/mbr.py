"""Minimum bounding rectangles (MBRs) and box distance computations.

An :class:`MBR` is an axis-aligned box given by its per-dimension lower
and upper bounds.  The module also offers vectorized helpers that compute
mindist/maxdist from one query point to *many* boxes at once; these are
the hot path of every best-first search in the repository.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import GeometryError

__all__ = [
    "MBR",
    "mindist_to_boxes",
    "maxdist_to_boxes",
    "mindist_matrix",
    "maxdist_matrix",
    "mindist_components",
]


class MBR:
    """An axis-aligned minimum bounding rectangle.

    Parameters
    ----------
    lower, upper:
        Array-likes of equal length holding per-dimension bounds with
        ``lower[i] <= upper[i]`` for every dimension ``i``.

    Notes
    -----
    Instances are immutable: the bound arrays are copied and marked
    read-only, so an MBR can be shared freely between directory entries,
    cost-model snapshots, and quantizers.
    """

    __slots__ = ("_lower", "_upper")

    def __init__(self, lower: Iterable[float], upper: Iterable[float]):
        lower = np.asarray(lower, dtype=np.float64).copy()
        upper = np.asarray(upper, dtype=np.float64).copy()
        if lower.ndim != 1 or upper.ndim != 1:
            raise GeometryError("MBR bounds must be one-dimensional arrays")
        if lower.shape != upper.shape:
            raise GeometryError(
                f"bound shapes differ: {lower.shape} vs {upper.shape}"
            )
        if lower.size == 0:
            raise GeometryError("MBR must have at least one dimension")
        if np.any(lower > upper):
            raise GeometryError("MBR has lower > upper in some dimension")
        lower.flags.writeable = False
        upper.flags.writeable = False
        self._lower = lower
        self._upper = upper

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def of_points(cls, points: np.ndarray) -> "MBR":
        """Return the tightest MBR enclosing ``points`` (shape (n, d))."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise GeometryError("of_points needs a non-empty (n, d) array")
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def unit_cube(cls, dim: int) -> "MBR":
        """The unit hypercube ``[0, 1]^dim``."""
        if dim <= 0:
            raise GeometryError("dimension must be positive")
        return cls(np.zeros(dim), np.ones(dim))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def lower(self) -> np.ndarray:
        """Per-dimension lower bounds (read-only array)."""
        return self._lower

    @property
    def upper(self) -> np.ndarray:
        """Per-dimension upper bounds (read-only array)."""
        return self._upper

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return self._lower.size

    @property
    def extents(self) -> np.ndarray:
        """Per-dimension side lengths ``upper - lower``."""
        return self._upper - self._lower

    @property
    def center(self) -> np.ndarray:
        """The center point of the box."""
        return 0.5 * (self._lower + self._upper)

    def volume(self) -> float:
        """Product of the side lengths (zero for degenerate boxes)."""
        return float(np.prod(self.extents))

    def margin(self) -> float:
        """Sum of the side lengths (the R*-tree 'margin' heuristic)."""
        return float(np.sum(self.extents))

    def longest_dimension(self) -> int:
        """Index of the dimension with the largest extent."""
        return int(np.argmax(self.extents))

    # ------------------------------------------------------------------
    # Predicates and point queries
    # ------------------------------------------------------------------
    def contains_point(self, point: np.ndarray) -> bool:
        """True if ``point`` lies inside the box (boundary inclusive)."""
        point = np.asarray(point, dtype=np.float64)
        self._check_dim(point)
        return bool(
            np.all(point >= self._lower) and np.all(point <= self._upper)
        )

    def contains_mbr(self, other: "MBR") -> bool:
        """True if ``other`` lies entirely inside this box."""
        self._check_dim(other.lower)
        return bool(
            np.all(other.lower >= self._lower)
            and np.all(other.upper <= self._upper)
        )

    def intersects(self, other: "MBR") -> bool:
        """True if the two boxes share at least a boundary point."""
        self._check_dim(other.lower)
        return bool(
            np.all(self._lower <= other.upper)
            and np.all(other.lower <= self._upper)
        )

    def intersection_volume(self, other: "MBR") -> float:
        """Volume of the overlap region (zero when disjoint)."""
        self._check_dim(other.lower)
        side = np.minimum(self._upper, other.upper) - np.maximum(
            self._lower, other.lower
        )
        if np.any(side <= 0.0):
            return 0.0
        return float(np.prod(side))

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def union(self, other: "MBR") -> "MBR":
        """The smallest box containing both inputs."""
        self._check_dim(other.lower)
        return MBR(
            np.minimum(self._lower, other.lower),
            np.maximum(self._upper, other.upper),
        )

    def extended_by_point(self, point: np.ndarray) -> "MBR":
        """The smallest box containing this box and ``point``."""
        point = np.asarray(point, dtype=np.float64)
        self._check_dim(point)
        return MBR(
            np.minimum(self._lower, point), np.maximum(self._upper, point)
        )

    def minkowski_enlarged(self, radius: float) -> "MBR":
        """The box enlarged by ``radius`` on every side (max-metric sum)."""
        if radius < 0:
            raise GeometryError("enlargement radius must be non-negative")
        return MBR(self._lower - radius, self._upper + radius)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def mindist(self, point: np.ndarray, metric=None) -> float:
        """Minimum distance from ``point`` to any point of the box."""
        from repro.geometry.metrics import EUCLIDEAN

        metric = metric or EUCLIDEAN
        point = np.asarray(point, dtype=np.float64)
        self._check_dim(point)
        gap = np.maximum(
            np.maximum(self._lower - point, point - self._upper), 0.0
        )
        return metric.length(gap)

    def maxdist(self, point: np.ndarray, metric=None) -> float:
        """Maximum distance from ``point`` to any point of the box."""
        from repro.geometry.metrics import EUCLIDEAN

        metric = metric or EUCLIDEAN
        point = np.asarray(point, dtype=np.float64)
        self._check_dim(point)
        gap = np.maximum(
            np.abs(point - self._lower), np.abs(point - self._upper)
        )
        return metric.length(gap)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(
            self._lower.shape == other._lower.shape
            and np.array_equal(self._lower, other._lower)
            and np.array_equal(self._upper, other._upper)
        )

    def __hash__(self) -> int:
        return hash((self._lower.tobytes(), self._upper.tobytes()))

    def __repr__(self) -> str:
        return f"MBR(lower={self._lower.tolist()}, upper={self._upper.tolist()})"

    def _check_dim(self, array: np.ndarray) -> None:
        if array.shape[-1] != self.dim:
            raise GeometryError(
                f"dimension mismatch: MBR is {self.dim}-d, "
                f"argument is {array.shape[-1]}-d"
            )


# ----------------------------------------------------------------------
# Vectorized many-box helpers
# ----------------------------------------------------------------------
def mindist_components(
    query: np.ndarray, lowers: np.ndarray, uppers: np.ndarray
) -> np.ndarray:
    """Per-dimension gap between ``query`` and each of ``n`` boxes.

    Parameters
    ----------
    query:
        Query point, shape ``(d,)``.
    lowers, uppers:
        Box bounds, shape ``(n, d)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(n, d)`` of non-negative per-dimension distances from the
        query to the nearest face of each box (zero when the query's
        coordinate lies inside the box's interval).
    """
    query = np.asarray(query, dtype=np.float64)
    return np.maximum(np.maximum(lowers - query, query - uppers), 0.0)


def mindist_to_boxes(
    query: np.ndarray,
    lowers: np.ndarray,
    uppers: np.ndarray,
    metric=None,
) -> np.ndarray:
    """Vectorized mindist from one query point to ``n`` boxes.

    ``lowers``/``uppers`` have shape ``(n, d)``; the result has shape
    ``(n,)``.  This is the hot path of every best-first search.
    """
    from repro.geometry.metrics import EUCLIDEAN

    metric = metric or EUCLIDEAN
    return metric.lengths(mindist_components(query, lowers, uppers))


def maxdist_to_boxes(
    query: np.ndarray,
    lowers: np.ndarray,
    uppers: np.ndarray,
    metric=None,
) -> np.ndarray:
    """Vectorized maxdist from one query point to ``n`` boxes."""
    from repro.geometry.metrics import EUCLIDEAN

    metric = metric or EUCLIDEAN
    query = np.asarray(query, dtype=np.float64)
    gap = np.maximum(np.abs(query - lowers), np.abs(query - uppers))
    return metric.lengths(gap)


def _checked_query_matrix_args(
    queries: np.ndarray, lowers: np.ndarray, uppers: np.ndarray
) -> np.ndarray:
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2:
        raise GeometryError("queries must be a (q, d) array")
    if lowers.ndim != 2 or queries.shape[1] != lowers.shape[1]:
        raise GeometryError(
            f"dimension mismatch: queries are {queries.shape[1]}-d, "
            f"boxes are {lowers.shape[-1]}-d"
        )
    if lowers.shape != uppers.shape:
        raise GeometryError("box bound shapes differ")
    return queries


def mindist_matrix(
    queries: np.ndarray,
    lowers: np.ndarray,
    uppers: np.ndarray,
    metric=None,
) -> np.ndarray:
    """Mindist from ``q`` query points to ``n`` boxes in one numpy pass.

    ``queries`` has shape ``(q, d)`` and ``lowers``/``uppers`` shape
    ``(n, d)``; the result has shape ``(q, n)``.  This is the batch
    query engine's replacement for ``q`` separate
    :func:`mindist_to_boxes` passes over the directory.
    """
    from repro.geometry.metrics import EUCLIDEAN

    metric = metric or EUCLIDEAN
    queries = _checked_query_matrix_args(queries, lowers, uppers)
    q = queries[:, None, :]
    gap = np.maximum(
        np.maximum(lowers[None, :, :] - q, q - uppers[None, :, :]), 0.0
    )
    return metric.lengths(gap)


def maxdist_matrix(
    queries: np.ndarray,
    lowers: np.ndarray,
    uppers: np.ndarray,
    metric=None,
) -> np.ndarray:
    """Maxdist from ``q`` query points to ``n`` boxes in one numpy pass.

    Same shapes as :func:`mindist_matrix`.
    """
    from repro.geometry.metrics import EUCLIDEAN

    metric = metric or EUCLIDEAN
    queries = _checked_query_matrix_args(queries, lowers, uppers)
    q = queries[:, None, :]
    gap = np.maximum(
        np.abs(q - lowers[None, :, :]), np.abs(q - uppers[None, :, :])
    )
    return metric.lengths(gap)
