"""Geometric primitives: MBRs, metrics, and volume computations.

This subpackage provides the low-level geometry the index structures and
the cost model are built on:

* :mod:`repro.geometry.mbr` -- minimum bounding rectangles and the
  vectorized mindist/maxdist computations used by every search algorithm.
* :mod:`repro.geometry.metrics` -- the distance metrics (Euclidean,
  maximum, general L_p) supported by the indexes.
* :mod:`repro.geometry.volumes` -- hypersphere/hypercube volumes and the
  Minkowski-sum formulas from the paper (eqs. 8-12).
"""

from repro.geometry.mbr import MBR, mindist_to_boxes, maxdist_to_boxes
from repro.geometry.metrics import (
    Metric,
    EuclideanMetric,
    MaximumMetric,
    LpMetric,
    EUCLIDEAN,
    MAXIMUM,
    get_metric,
)
from repro.geometry.volumes import (
    sphere_volume,
    sphere_radius_for_volume,
    cube_volume,
    cube_radius_for_volume,
    minkowski_sum_max_metric,
    minkowski_sum_euclidean,
)

__all__ = [
    "MBR",
    "mindist_to_boxes",
    "maxdist_to_boxes",
    "Metric",
    "EuclideanMetric",
    "MaximumMetric",
    "LpMetric",
    "EUCLIDEAN",
    "MAXIMUM",
    "get_metric",
    "sphere_volume",
    "sphere_radius_for_volume",
    "cube_volume",
    "cube_radius_for_volume",
    "minkowski_sum_max_metric",
    "minkowski_sum_euclidean",
]
