"""Volume formulas from the paper: spheres, cubes, and Minkowski sums.

These implement eqs. 8-12 of the paper.  The Minkowski sum of a box and a
query ball is the box "inflated" by the ball; its volume, divided by the
data-space volume, is the probability that a query point falling
uniformly in the space touches the box.  For the maximum metric the sum
is exact (eq. 11); for the Euclidean metric the paper gives a binomial
approximation based on the geometric mean side length (eq. 12), which we
reproduce here.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import GeometryError

__all__ = [
    "sphere_volume",
    "sphere_radius_for_volume",
    "cube_volume",
    "cube_radius_for_volume",
    "minkowski_sum_max_metric",
    "minkowski_sum_euclidean",
    "minkowski_sum",
]


def sphere_volume(radius: float, dim: int) -> float:
    """Volume of a ``dim``-dimensional Euclidean ball (paper eq. 8)."""
    if dim <= 0:
        raise GeometryError("dimension must be positive")
    if radius < 0:
        raise GeometryError("radius must be non-negative")
    return math.pi ** (dim / 2.0) / math.gamma(dim / 2.0 + 1.0) * radius**dim


def sphere_radius_for_volume(volume: float, dim: int) -> float:
    """Radius of the Euclidean ball with the given volume."""
    if dim <= 0:
        raise GeometryError("dimension must be positive")
    if volume < 0:
        raise GeometryError("volume must be non-negative")
    unit = math.pi ** (dim / 2.0) / math.gamma(dim / 2.0 + 1.0)
    return (volume / unit) ** (1.0 / dim)


def cube_volume(radius: float, dim: int) -> float:
    """Volume of the max-metric ball, a cube of side ``2*radius`` (eq. 9)."""
    if dim <= 0:
        raise GeometryError("dimension must be positive")
    if radius < 0:
        raise GeometryError("radius must be non-negative")
    return (2.0 * radius) ** dim


def cube_radius_for_volume(volume: float, dim: int) -> float:
    """Half side length of the cube with the given volume."""
    if dim <= 0:
        raise GeometryError("dimension must be positive")
    if volume < 0:
        raise GeometryError("volume must be non-negative")
    return 0.5 * volume ** (1.0 / dim)


def minkowski_sum_max_metric(side_lengths: np.ndarray, radius: float) -> float:
    """Volume of box (+) max-metric ball: prod_i (s_i + 2r)  (paper eq. 11)."""
    side_lengths = np.asarray(side_lengths, dtype=np.float64)
    if radius < 0:
        raise GeometryError("radius must be non-negative")
    if np.any(side_lengths < 0):
        raise GeometryError("side lengths must be non-negative")
    return float(np.prod(side_lengths + 2.0 * radius))


def minkowski_sum_euclidean(side_lengths: np.ndarray, radius: float) -> float:
    """Approximate volume of box (+) Euclidean ball (paper eq. 12).

    Uses the paper's binomial approximation built from the geometric mean
    ``a`` of the box's side lengths::

        V  =  sum_{k=0..d}  C(d, k) * a^(d-k) * V_ball_k(r)

    where ``V_ball_k(r)`` is the volume of the k-dimensional Euclidean
    ball of radius ``r``.  For ``k = 0`` the ball volume is 1, making the
    ``k = 0`` term the box volume itself (computed with the geometric
    mean, which equals the true volume).
    """
    side_lengths = np.asarray(side_lengths, dtype=np.float64)
    if radius < 0:
        raise GeometryError("radius must be non-negative")
    if np.any(side_lengths < 0):
        raise GeometryError("side lengths must be non-negative")
    d = side_lengths.size
    if d == 0:
        raise GeometryError("need at least one dimension")
    if np.any(side_lengths == 0.0):
        # Degenerate box: fall back to exact geometric mean of zero,
        # keeping only the pure-ball term of the expansion.
        a = 0.0
    else:
        a = float(np.exp(np.mean(np.log(side_lengths))))
    total = 0.0
    for k in range(d + 1):
        ball_k = 1.0 if k == 0 else sphere_volume(radius, k)
        total += math.comb(d, k) * a ** (d - k) * ball_k
    return total


def minkowski_sum(side_lengths: np.ndarray, radius: float, metric) -> float:
    """Dispatch to the right Minkowski-sum formula for ``metric``.

    Exact for the maximum metric; the paper's approximation for the
    Euclidean metric; any other metric falls back to the Euclidean
    approximation (documented behaviour -- the paper, too, resorts to
    approximations for non-max metrics).
    """
    from repro.geometry.metrics import MaximumMetric

    if isinstance(metric, MaximumMetric):
        return minkowski_sum_max_metric(side_lengths, radius)
    return minkowski_sum_euclidean(side_lengths, radius)
