"""Distance metrics used by the indexes and the cost model.

The paper derives its formulas for two metrics: the Euclidean metric
(L2) and the maximum metric (L-infinity).  Both are implemented here
behind a small :class:`Metric` interface, along with general ``L_p``
metrics.  Each metric knows how to

* measure the length of one difference vector (:meth:`Metric.length`),
* measure many vectors at once (:meth:`Metric.lengths`), and
* report the volume of its unit ball, which the cost model needs to turn
  point densities into nearest-neighbor radii (eqs. 7-9 of the paper).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import GeometryError

__all__ = [
    "Metric",
    "EuclideanMetric",
    "MaximumMetric",
    "LpMetric",
    "EUCLIDEAN",
    "MAXIMUM",
    "get_metric",
]


class Metric:
    """Abstract distance metric over ``R^d``.

    Subclasses implement :meth:`lengths`; the remaining convenience
    methods are derived from it.
    """

    #: short, stable identifier (used in benchmark reports)
    name: str = "abstract"

    def lengths(self, vectors: np.ndarray) -> np.ndarray:
        """Lengths of ``vectors`` (shape ``(..., d)``) -> shape ``(...,)``."""
        raise NotImplementedError

    def length(self, vector: np.ndarray) -> float:
        """Length of a single difference vector."""
        return float(self.lengths(np.asarray(vector, dtype=np.float64)))

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Distance between two points."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        return self.length(a - b)

    def distances(self, query: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Distances from ``query`` (shape ``(d,)``) to rows of ``points``."""
        query = np.asarray(query, dtype=np.float64)
        points = np.asarray(points, dtype=np.float64)
        return self.lengths(points - query)

    def unit_ball_volume(self, dim: int) -> float:
        """Volume of the metric's unit ball in ``dim`` dimensions."""
        raise NotImplementedError

    def ball_volume(self, radius: float, dim: int) -> float:
        """Volume of the ball of the given radius."""
        if radius < 0:
            raise GeometryError("radius must be non-negative")
        return self.unit_ball_volume(dim) * radius**dim

    def ball_radius(self, volume: float, dim: int) -> float:
        """Radius of the ball with the given volume (inverse of above)."""
        if volume < 0:
            raise GeometryError("volume must be non-negative")
        unit = self.unit_ball_volume(dim)
        return (volume / unit) ** (1.0 / dim)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class EuclideanMetric(Metric):
    """The ordinary L2 metric."""

    name = "euclidean"

    def lengths(self, vectors: np.ndarray) -> np.ndarray:
        return np.sqrt(np.sum(np.square(vectors), axis=-1))

    def unit_ball_volume(self, dim: int) -> float:
        # V_sphere(r) = sqrt(pi)^d / Gamma(d/2 + 1) * r^d   (paper eq. 8)
        if dim <= 0:
            raise GeometryError("dimension must be positive")
        return math.pi ** (dim / 2.0) / math.gamma(dim / 2.0 + 1.0)


class MaximumMetric(Metric):
    """The maximum (Chebyshev / L-infinity) metric."""

    name = "maximum"

    def lengths(self, vectors: np.ndarray) -> np.ndarray:
        return np.max(np.abs(vectors), axis=-1)

    def unit_ball_volume(self, dim: int) -> float:
        # V_cube(r) = (2r)^d   (paper eq. 9)
        if dim <= 0:
            raise GeometryError("dimension must be positive")
        return 2.0**dim


class LpMetric(Metric):
    """A general Minkowski ``L_p`` metric for finite ``p >= 1``."""

    def __init__(self, p: float):
        if p < 1:
            raise GeometryError("L_p metrics require p >= 1")
        self.p = float(p)
        self.name = f"l{p:g}"

    def lengths(self, vectors: np.ndarray) -> np.ndarray:
        return np.sum(np.abs(vectors) ** self.p, axis=-1) ** (1.0 / self.p)

    def unit_ball_volume(self, dim: int) -> float:
        # Volume of the unit L_p ball: (2 Gamma(1/p + 1))^d / Gamma(d/p + 1)
        if dim <= 0:
            raise GeometryError("dimension must be positive")
        return (2.0 * math.gamma(1.0 / self.p + 1.0)) ** dim / math.gamma(
            dim / self.p + 1.0
        )

    def __repr__(self) -> str:
        return f"LpMetric(p={self.p})"


#: Shared singletons -- metrics are stateless, so reuse them.
EUCLIDEAN = EuclideanMetric()
MAXIMUM = MaximumMetric()

_REGISTRY = {
    "euclidean": EUCLIDEAN,
    "l2": EUCLIDEAN,
    "maximum": MAXIMUM,
    "chebyshev": MAXIMUM,
    "linf": MAXIMUM,
}


def get_metric(name) -> Metric:
    """Resolve a metric from a name or pass a :class:`Metric` through.

    Accepted names: ``euclidean``/``l2``, ``maximum``/``chebyshev``/
    ``linf``, or ``l<p>`` for a finite p (e.g. ``l1``, ``l3``).
    """
    if isinstance(name, Metric):
        return name
    key = str(name).lower()
    if key in _REGISTRY:
        return _REGISTRY[key]
    if key.startswith("l"):
        try:
            return LpMetric(float(key[1:]))
        except ValueError:
            pass
    raise GeometryError(f"unknown metric: {name!r}")
