"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything originating here with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GeometryError(ReproError):
    """Invalid geometric input (mismatched dimensions, inverted bounds...)."""


class StorageError(ReproError):
    """Errors in the simulated storage layer (bad block ids, overflow...)."""


class PageOverflowError(StorageError):
    """A serialized page does not fit into its fixed-size block."""


class IntegrityError(StorageError):
    """A persisted container failed an integrity check.

    ``section`` names the container section ("header", "meta", "index",
    "payload") whose verification failed, so callers and the ``fsck``
    tool can report exactly what is corrupt.
    """

    def __init__(self, message: str, section: str | None = None):
        super().__init__(message)
        self.section = section


class QuantizationError(ReproError):
    """Invalid quantization parameters (bits out of range, empty MBR...)."""


class CostModelError(ReproError):
    """Invalid cost-model input (non-positive density, bad dimension...)."""


class BuildError(ReproError):
    """Index construction failed (empty data set, bad capacity...)."""


class SearchError(ReproError):
    """Query execution failed (bad k, dimension mismatch...)."""
