"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything originating here with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GeometryError(ReproError):
    """Invalid geometric input (mismatched dimensions, inverted bounds...)."""


class StorageError(ReproError):
    """Errors in the simulated storage layer (bad block ids, overflow...)."""


class PageOverflowError(StorageError):
    """A serialized page does not fit into its fixed-size block."""


class IntegrityError(StorageError):
    """Stored data failed an integrity check.

    ``section`` names the container section ("header", "meta", "index",
    "payload") whose verification failed, so callers and the ``fsck``
    tool can report exactly what is corrupt.  ``block`` carries the disk
    address of a live block whose per-block CRC sidecar did not match on
    a timed read (runtime corruption); exactly one of the two is set.
    """

    def __init__(
        self,
        message: str,
        section: str | None = None,
        block: int | None = None,
    ):
        super().__init__(message)
        self.section = section
        self.block = block


class ReadFaultError(StorageError):
    """A timed block read failed (simulated media error).

    ``address`` is the disk address that faulted and ``attempt`` the
    0-based read attempt that hit the fault, so retry layers can
    quarantine the exact block and tests can assert the schedule fired.
    """

    def __init__(
        self,
        message: str,
        address: int | None = None,
        attempt: int | None = None,
    ):
        super().__init__(message)
        self.address = address
        self.attempt = attempt


class TransientReadError(ReadFaultError):
    """A read fault that clears on its own (a retry may succeed)."""


class PersistentReadError(ReadFaultError):
    """A read fault that never clears (retrying is futile)."""


class QuantizationError(ReproError):
    """Invalid quantization parameters (bits out of range, empty MBR...)."""


class CostModelError(ReproError):
    """Invalid cost-model input (non-positive density, bad dimension...)."""


class BuildError(ReproError):
    """Index construction failed (empty data set, bad capacity...)."""


class SearchError(ReproError):
    """Query execution failed (bad k, dimension mismatch...)."""


class QueryDataError(SearchError):
    """A query failed because index data could not be read.

    Distinguishes data-loss/corruption failures from API misuse (both
    surface as :class:`SearchError` to callers of the query APIs).  The
    low-level :class:`StorageError` is chained as ``__cause__``;
    ``query_id``, ``level`` ("directory", "quantized", "exact"), and
    ``block`` (file-local block index) locate the failure.
    """

    def __init__(
        self,
        message: str,
        query_id: int | None = None,
        level: str | None = None,
        block: int | None = None,
    ):
        super().__init__(message)
        self.query_id = query_id
        self.level = level
        self.block = block
