"""``python -m repro`` -- the IQ-tree index tool."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
