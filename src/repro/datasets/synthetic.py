"""Synthetic point-set generators.

All generators return float32-representable float64 arrays (the storage
precision of the indexes), clipped to the unit cube, and are
deterministic given the seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError

__all__ = ["uniform", "gaussian_clusters", "low_dimensional_manifold"]


def _finish(points: np.ndarray) -> np.ndarray:
    """Clip to the unit cube and round to float32 precision."""
    return np.clip(points, 0.0, 1.0).astype(np.float32).astype(np.float64)


def _check(n: int, dim: int) -> None:
    if n <= 0 or dim <= 0:
        raise ReproError("n and dim must be positive")


def uniform(n: int, dim: int, seed: int = 0) -> np.ndarray:
    """Uniform, independent points in the unit cube (the paper's
    UNIFORM data set)."""
    _check(n, dim)
    rng = np.random.default_rng(seed)
    return _finish(rng.random((n, dim)))


def gaussian_clusters(
    n: int,
    dim: int,
    n_clusters: int = 10,
    spread: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """A mixture of isotropic Gaussian clusters in the unit cube.

    Parameters
    ----------
    n, dim:
        Point count and dimensionality.
    n_clusters:
        Number of mixture components (centers drawn uniformly).
    spread:
        Per-dimension standard deviation of each cluster.
    seed:
        RNG seed.
    """
    _check(n, dim)
    if n_clusters <= 0:
        raise ReproError("n_clusters must be positive")
    if spread < 0:
        raise ReproError("spread must be non-negative")
    rng = np.random.default_rng(seed)
    centers = rng.random((n_clusters, dim)) * 0.8 + 0.1
    assignment = rng.integers(0, n_clusters, size=n)
    points = centers[assignment] + rng.normal(0.0, spread, size=(n, dim))
    return _finish(points)


def low_dimensional_manifold(
    n: int,
    dim: int,
    intrinsic_dim: int = 2,
    noise: float = 0.01,
    seed: int = 0,
) -> np.ndarray:
    """Points near a smooth ``intrinsic_dim``-dimensional manifold.

    Latent coordinates are drawn uniformly; each ambient dimension is a
    smooth (random sinusoidal) function of the latent coordinates plus
    small isotropic noise.  The resulting cloud has a fractal dimension
    close to ``intrinsic_dim`` -- the property the cost model's
    correlation handling keys on.
    """
    _check(n, dim)
    if not 1 <= intrinsic_dim <= dim:
        raise ReproError("intrinsic_dim must be in [1, dim]")
    if noise < 0:
        raise ReproError("noise must be non-negative")
    rng = np.random.default_rng(seed)
    latent = rng.random((n, intrinsic_dim))
    freqs = rng.uniform(0.5, 2.0, size=(dim, intrinsic_dim))
    phases = rng.uniform(0.0, 2.0 * np.pi, size=dim)
    weights = rng.normal(0.0, 1.0, size=(dim, intrinsic_dim))
    weights /= np.linalg.norm(weights, axis=1, keepdims=True)
    angles = 2.0 * np.pi * latent @ (freqs * weights).T + phases
    points = 0.5 + 0.4 * np.sin(angles)
    points += rng.normal(0.0, noise, size=(n, dim))
    return _finish(points)
