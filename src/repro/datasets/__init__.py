"""Data-set generators for the paper's experimental workloads.

The paper evaluates on uniform synthetic data plus three real data sets
that are not publicly available; :mod:`repro.datasets.realistic`
provides synthetic analogues engineered to have the qualitative
properties the paper ascribes to each (clustering level, anisotropy,
fractal dimension).  See DESIGN.md for the substitution rationale.

All generators are deterministic given a seed and emit float32-
representable float64 coordinates (the precision the indexes store), so
index answers are bit-exact against brute force on the generated data.
"""

from repro.datasets.synthetic import (
    uniform,
    gaussian_clusters,
    low_dimensional_manifold,
)
from repro.datasets.realistic import (
    cad_like,
    color_histogram_like,
    weather_like,
)
from repro.datasets.queries import holdout_queries, make_workload

__all__ = [
    "uniform",
    "gaussian_clusters",
    "low_dimensional_manifold",
    "cad_like",
    "color_histogram_like",
    "weather_like",
    "holdout_queries",
    "make_workload",
]
