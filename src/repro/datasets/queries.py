"""Query workloads following the paper's protocol.

"For each experiment we separated from database a set of query points,
thus not contained in the database, but following the distribution of
the respective data set" -- :func:`holdout_queries` implements exactly
that: a deterministic holdout split of a generated data set.
:func:`make_workload` composes a generator with the split.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ReproError

__all__ = ["holdout_queries", "make_workload"]


def holdout_queries(
    data: np.ndarray, n_queries: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``data`` into ``(database, queries)``.

    The held-out query points follow the data distribution (they come
    from the same draw) but are not contained in the database.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ReproError("data must be a (n, d) array")
    n = data.shape[0]
    if not 0 < n_queries < n:
        raise ReproError("n_queries must be in (0, len(data))")
    rng = np.random.default_rng(seed)
    picks = rng.choice(n, size=n_queries, replace=False)
    mask = np.ones(n, dtype=bool)
    mask[picks] = False
    return data[mask], data[picks]


def make_workload(
    generator: Callable[..., np.ndarray],
    n: int,
    n_queries: int,
    seed: int = 0,
    **generator_kwargs,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``n + n_queries`` points and split off the queries.

    The database ends up with exactly ``n`` points regardless of the
    query count, so experiment scales are comparable across methods.
    """
    data = generator(n=n + n_queries, seed=seed, **generator_kwargs)
    return holdout_queries(data, n_queries, seed=seed + 1)
