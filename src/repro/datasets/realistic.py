"""Synthetic analogues of the paper's real data sets.

The original CAD, COLOR and WEATHER data are not publicly available, so
each generator below targets the *qualitative* property the paper
attributes to its data set (see DESIGN.md, substitution table):

* **CAD** -- 16-d Fourier coefficients of CAD-object curvature,
  "moderately clustered": a Gaussian mixture whose per-dimension
  variance decays geometrically (Fourier energy decay), so the data is
  both clustered and anisotropic.
* **COLOR** -- 16-d color histograms, "only very slightly clustered":
  Dirichlet-distributed histograms (non-negative, unit sum) from a few
  broad Dirichlet components.
* **WEATHER** -- 9-d station measurements, "highly clustered ... rather
  low fractal dimension": measurements generated as smooth functions of
  two latent variables (station latitude and season) plus small sensor
  noise, giving a fractal dimension near 2 that the repo's own
  estimator verifies in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError
from repro.datasets.synthetic import _check, _finish

__all__ = ["cad_like", "color_histogram_like", "weather_like"]


def cad_like(
    n: int,
    dim: int = 16,
    n_clusters: int = 40,
    decay: float = 0.75,
    seed: int = 0,
) -> np.ndarray:
    """Moderately clustered, Fourier-like anisotropic data (CAD analogue).

    Cluster centers are drawn with the same per-dimension energy decay
    as the offsets, so higher coefficients concentrate near the
    mid-range value in every cluster -- as Fourier coefficient vectors
    of smooth curves do.
    """
    _check(n, dim)
    if n_clusters <= 0:
        raise ReproError("n_clusters must be positive")
    if not 0 < decay <= 1:
        raise ReproError("decay must be in (0, 1]")
    rng = np.random.default_rng(seed)
    scale = decay ** np.arange(dim)
    centers = 0.5 + rng.normal(0.0, 0.22, size=(n_clusters, dim)) * scale
    assignment = rng.integers(0, n_clusters, size=n)
    offsets = rng.normal(0.0, 0.06, size=(n, dim)) * scale
    return _finish(centers[assignment] + offsets)


def color_histogram_like(
    n: int,
    dim: int = 16,
    n_components: int = 6,
    concentration: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """Slightly clustered simplex data (COLOR-histogram analogue).

    Each point is a normalized histogram drawn from one of a few broad
    Dirichlet components.  The default concentration below 1 yields
    *sparse* histograms -- most mass on a few dominant colors, as real
    image histograms have -- which gives the cloud the moderately low
    intrinsic dimension (D_2 around 4) that makes the paper's COLOR
    results reproducible: heavy component overlap keeps the clustering
    "only very slight", yet hierarchical indexes retain selectivity.
    """
    _check(n, dim)
    if n_components <= 0:
        raise ReproError("n_components must be positive")
    if concentration <= 0:
        raise ReproError("concentration must be positive")
    rng = np.random.default_rng(seed)
    # Component parameter vectors: mildly skewed so some colors dominate.
    alphas = rng.gamma(shape=concentration, scale=1.0, size=(n_components, dim))
    alphas = np.maximum(alphas, 0.05)
    assignment = rng.integers(0, n_components, size=n)
    points = np.empty((n, dim))
    for c in range(n_components):
        mask = assignment == c
        if np.any(mask):
            points[mask] = rng.dirichlet(alphas[c], size=int(mask.sum()))
    return _finish(points)


def weather_like(
    n: int,
    dim: int = 9,
    noise: float = 0.015,
    seed: int = 0,
) -> np.ndarray:
    """Highly clustered, low-fractal-dimension data (WEATHER analogue).

    Two latent variables drive everything: station latitude and season.
    Each of the ``dim`` measured quantities (temperatures, pressure,
    humidity, wind, ...) is a smooth nonlinear response to the latents
    plus small sensor noise, so the cloud concentrates near a 2-d
    surface embedded in ``dim`` dimensions.
    """
    _check(n, dim)
    if noise < 0:
        raise ReproError("noise must be non-negative")
    rng = np.random.default_rng(seed)
    latitude = rng.random(n)
    season = rng.random(n)
    coeff_lat = rng.uniform(-1.0, 1.0, size=dim)
    coeff_season = rng.uniform(-1.0, 1.0, size=dim)
    coeff_cross = rng.uniform(-0.5, 0.5, size=dim)
    phase = rng.uniform(0.0, 2.0 * np.pi, size=dim)
    two_pi = 2.0 * np.pi
    response = (
        coeff_lat[None, :] * (latitude[:, None] - 0.5)
        + coeff_season[None, :] * np.sin(two_pi * season[:, None] + phase)
        + coeff_cross[None, :]
        * np.sin(two_pi * latitude[:, None])
        * np.cos(two_pi * season[:, None])
    )
    points = 0.5 + 0.3 * response + rng.normal(0.0, noise, size=(n, dim))
    return _finish(points)
