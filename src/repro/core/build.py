"""Top-down bulk-load into the initial 1-bit partitioning (Section 3.3).

The builder recursively splits the data space until each partition fits
into one quantized data page at the coarsest (1 bit per dimension)
representation.  The result is the paper's "initial IQ-tree": optimal in
compression rate, possibly poor in accuracy -- the optimizer then refines
it.  The recursion emits partitions in depth-first order, which places
spatially adjacent partitions adjacently in the page file; the
cost-balance scheduler depends on this clustering.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BuildError
from repro.core.partition import Partition
from repro.core.split import split_partition
from repro.quantization.capacity import capacity_for_bits

__all__ = ["bulk_load_partitions", "partitions_for_capacity"]


def bulk_load_partitions(
    data: np.ndarray, block_size: int
) -> list[Partition]:
    """Partition ``data`` until every part fits a 1-bit page.

    Parameters
    ----------
    data:
        The full data set, shape ``(n, d)``.
    block_size:
        Fixed size of a quantized data page in bytes.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise BuildError("bulk load needs a non-empty (n, d) array")
    capacity = capacity_for_bits(block_size, data.shape[1], 1)
    return partitions_for_capacity(data, capacity)


def partitions_for_capacity(
    data: np.ndarray, capacity: int
) -> list[Partition]:
    """Split recursively until every partition has ``<= capacity`` points.

    Shared with the X-tree baseline builder (which targets the exact-page
    capacity instead of the 1-bit capacity).
    """
    if capacity < 1:
        raise BuildError("page capacity must be at least one point")
    data = np.asarray(data, dtype=np.float64)
    root = Partition.of(data, np.arange(data.shape[0], dtype=np.int64))
    result: list[Partition] = []
    stack = [root]
    while stack:
        part = stack.pop()
        if part.size <= capacity:
            result.append(part)
            continue
        left, right = split_partition(data, part)
        # Push right first so the left child is processed first: the
        # output order is then a depth-first, spatially coherent walk.
        stack.append(right)
        stack.append(left)
    return result
