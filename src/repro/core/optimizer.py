"""The optimal-quantization algorithm of Section 3.5.

Starting from the initial 1-bit partitions, the algorithm repeatedly
splits the partition with the largest *variable-cost benefit* (the
reduction in expected refinement cost its split would bring), records the
estimated total query cost after every split, and continues until every
partition is stored at the exact 32-bit representation.  The recorded
trajectory is then rolled back to its global minimum.

The greedy choice is optimal because (a) first- and second-level costs
depend only on the number of pages -- the "constant cost" shared by every
solution of equal size (Lemma 1) -- and (b) the refinement cost is
monotonically decreasing in the resolution with decreasing returns, so a
child's split benefit never exceeds its parent's (Lemma 2).  The run
cannot stop early: the constant cost is not monotone, so local optima
along the trajectory may differ from the global one (Section 3.5).

The implementation simulates the full trajectory on lightweight nodes
(point-index arrays plus MBRs), tracking the argmin step, and finally
materializes the frontier of the split forest at that step.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.exceptions import BuildError
from repro.core.partition import Partition
from repro.core.split import split_partition
from repro.costmodel.model import CostModel
from repro.obs.instruments import (
    OPT_PAGES,
    OPT_RUNS,
    OPT_SPLITS,
    REGISTRY,
)
from repro.quantization.capacity import EXACT_BITS

__all__ = ["OptimizedPartition", "OptimizationTrace", "optimize_partitions"]


@dataclass(frozen=True)
class OptimizedPartition:
    """A partition of the chosen solution with its quantization level.

    ``codec`` selects the second-level page representation
    (:data:`~repro.quantization.codecs.CODEC_GRID` or
    :data:`~repro.quantization.codecs.CODEC_PQ`); for PQ pages,
    ``pq_bits``/``pq_sub`` are the code width and subspace count of the
    per-page codebook and ``eff_bits`` the grid-equivalent resolution
    the cost model uses in place of ``bits``.  The defaults describe a
    plain grid page, so positional two-argument construction keeps its
    pre-codec meaning.
    """

    partition: Partition
    bits: int
    codec: int = 0
    pq_bits: int = 0
    pq_sub: int = 0
    eff_bits: float = 0.0


def stats_for(opt: "OptimizedPartition"):
    """Codec-aware :class:`~repro.costmodel.model.PartitionStats`.

    Grid pages report their stored ``bits``; PQ pages report the fitted
    codebook's grid-equivalent ``eff_bits``, so every cost consumer
    (optimizer selection, ``estimated_query_cost``, the drift monitor)
    attributes per-codec refinement cost instead of assuming grid.
    """
    from repro.costmodel.model import PartitionStats

    bits = opt.bits
    if opt.codec != 0 and opt.eff_bits:
        bits = opt.eff_bits
    return PartitionStats(
        m=opt.partition.size,
        side_lengths=tuple(opt.partition.mbr.extents.tolist()),
        bits=bits,
    )


@dataclass
class OptimizationTrace:
    """Diagnostics of one optimizer run.

    Attributes
    ----------
    costs:
        Estimated total query cost after each step (index 0 = the
        initial partitioning, before any split).
    best_step:
        Index into ``costs`` of the chosen (minimal) solution.
    n_initial, n_final:
        Page counts of the initial partitioning and the chosen solution.
    """

    costs: list[float]
    best_step: int
    n_initial: int
    n_final: int


class _Node:
    """One node of the simulated split forest."""

    __slots__ = (
        "partition",
        "bits",
        "refine_cost",
        "created_step",
        "split_step",
        "children",
    )

    def __init__(
        self,
        partition: Partition,
        bits: int,
        refine_cost: float,
        created_step: int,
    ):
        self.partition = partition
        self.bits = bits
        self.refine_cost = refine_cost
        self.created_step = created_step
        self.split_step: int | None = None
        self.children: tuple["_Node", "_Node"] | None = None


def optimize_partitions(
    data: np.ndarray,
    initial: list[Partition],
    cost_model: CostModel,
    block_size: int,
    *,
    page_offset: int = 0,
) -> tuple[list[OptimizedPartition], OptimizationTrace]:
    """Run the optimal-quantization algorithm.

    Parameters
    ----------
    data:
        The full data set (partitions index into it).
    initial:
        The 1-bit initial partitioning from the bulk loader.
    cost_model:
        Bound cost model used for both variable and constant costs.
    block_size:
        Fixed quantized-page size in bytes.
    page_offset:
        Pages of the index *outside* ``initial`` that contribute to the
        constant (directory-scan) cost.  Maintenance sweeps use this to
        re-optimize a single page in the context of the whole tree.

    Returns
    -------
    tuple
        ``(solution, trace)`` -- the chosen partitions with their
        quantization levels, in depth-first (spatially coherent) order,
        plus the optimization trace.
    """
    if not initial:
        raise BuildError("optimizer needs at least one initial partition")

    def make_node(partition: Partition, step: int) -> _Node:
        bits = partition.storable_bits(block_size)
        if bits == 0:
            raise BuildError(
                "initial partition does not fit a 1-bit page; "
                "run the bulk loader first"
            )
        stats = partition.stats(block_size)
        return _Node(
            partition, bits, cost_model.refinement_cost(stats), step
        )

    roots = [make_node(p, 0) for p in initial]
    n_pages = len(roots) + page_offset
    refine_sum = sum(node.refine_cost for node in roots)
    costs = [cost_model.total_from_aggregates(n_pages, refine_sum)]
    best_step = 0
    best_cost = costs[0]

    # Max-heap of splittable nodes keyed by variable-cost benefit.  The
    # benefit requires the children, so each candidate split is computed
    # eagerly ("determine_benefits" in the paper's pseudocode).
    heap: list[tuple[float, int, _Node, _Node, _Node]] = []
    counter = 0

    def push_candidate(node: _Node) -> None:
        nonlocal counter
        if node.bits >= EXACT_BITS or node.partition.size < 2:
            return  # already exact: nothing to gain from splitting
        left_part, right_part = split_partition(data, node.partition)
        # Children's nodes are provisional until the split is committed;
        # created_step is patched at commit time.
        left = make_node(left_part, -1)
        right = make_node(right_part, -1)
        benefit = node.refine_cost - (left.refine_cost + right.refine_cost)
        heapq.heappush(heap, (-benefit, counter, node, left, right))
        counter += 1

    for node in roots:
        push_candidate(node)

    step = 0
    while heap:
        _neg_benefit, _tie, node, left, right = heapq.heappop(heap)
        step += 1
        node.split_step = step
        node.children = (left, right)
        left.created_step = step
        right.created_step = step
        n_pages += 1
        refine_sum += left.refine_cost + right.refine_cost - node.refine_cost
        total = cost_model.total_from_aggregates(n_pages, refine_sum)
        costs.append(total)
        if total < best_cost:
            best_cost = total
            best_step = step
        push_candidate(left)
        push_candidate(right)

    # Materialize the frontier at the best step: a node belongs to the
    # solution iff it existed by then and was not yet split.
    solution: list[OptimizedPartition] = []
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        if node.split_step is not None and node.split_step <= best_step:
            left, right = node.children
            stack.append(right)
            stack.append(left)
        else:
            solution.append(OptimizedPartition(node.partition, node.bits))
    trace = OptimizationTrace(
        costs=costs,
        best_step=best_step,
        n_initial=len(initial),
        n_final=len(solution),
    )
    if REGISTRY.enabled:
        OPT_RUNS.inc()
        OPT_SPLITS.inc(step)
        OPT_PAGES.set(len(initial), stage="initial")
        OPT_PAGES.set(len(solution), stage="final")
    return solution, trace


def fixed_bits_partitions(
    data: np.ndarray, block_size: int, bits: int
) -> list[OptimizedPartition]:
    """Ablation helper: partition for a *fixed* quantization level.

    Splits until every partition fits a page at exactly ``bits`` bits
    per dimension, bypassing the optimizer.  Used by the ablation
    benchmarks to show what independent (per-page) optimization buys
    over a global constant resolution.
    """
    from repro.core.build import partitions_for_capacity
    from repro.quantization.capacity import capacity_for_bits

    capacity = capacity_for_bits(block_size, data.shape[1], bits)
    parts = partitions_for_capacity(np.asarray(data, np.float64), capacity)
    return [OptimizedPartition(p, bits) for p in parts]


__all__.append("fixed_bits_partitions")


def pq_candidate_configs(dim: int) -> list[tuple[int, int]]:
    """Candidate ``(n_sub, pq_bits)`` PQ configurations for ``dim`` data.

    Deliberately small: one scalar-codebook config per interesting code
    width (``S = d`` -- an independent non-uniform grid per dimension)
    plus one paired-dimension config that can capture correlation.
    """
    configs = [(dim, 2), (dim, 3), (dim, 4), (dim, 6)]
    if dim >= 2:
        configs.append(((dim + 1) // 2, 8))
    return configs


def _best_pq_for(
    data: np.ndarray,
    opt: OptimizedPartition,
    cost_model: CostModel,
    block_size: int,
) -> tuple["OptimizedPartition | None", float]:
    """Cheapest fitting PQ encoding of ``opt``'s partition (or None)."""
    from dataclasses import replace

    from repro.quantization.codecs import (
        CODEC_PQ,
        effective_bits,
        fit_pq,
        pq_page_fits,
        PQView,
    )

    part = opt.partition
    m = part.size
    dim = part.mbr.dim
    points = part.points(data)
    best: OptimizedPartition | None = None
    best_cost = np.inf
    for n_sub, pq_bits in pq_candidate_configs(dim):
        if not pq_page_fits(m, dim, n_sub, pq_bits, block_size):
            continue
        codes, lo32, hi32 = fit_pq(points, n_sub, pq_bits)
        view = PQView(
            lo32.astype(np.float64),
            hi32.astype(np.float64),
            n_sub,
            dim,
        )
        eff = effective_bits(part.mbr.extents, codes, view)
        candidate = replace(
            opt,
            codec=CODEC_PQ,
            pq_bits=pq_bits,
            pq_sub=n_sub,
            eff_bits=eff,
        )
        cost = cost_model.refinement_cost(stats_for(candidate))
        if cost < best_cost:
            best, best_cost = candidate, cost
    return best, best_cost


def _merge_pass(
    data: np.ndarray,
    chosen: list[OptimizedPartition],
    cost_model: CostModel,
    block_size: int,
) -> list[OptimizedPartition]:
    """Coalesce adjacent pages into single PQ pages while cheaper.

    This is where compression buys the paper's objective directly:
    narrower codes let the points of two neighboring pages fit one
    block, so every surviving page removes a directory row and a
    potential seek.  Lemma 1 splits the objective exactly as the
    optimizer does -- first- and second-level costs depend only on the
    page count -- so a merge is accepted iff
    ``total(n-1, refine - r_i - r_j + r_merged) < total(n, refine)``.
    Passes repeat (merged pages can merge again) until a fixed point.

    The split trajectory is left alone: the optimizer already explored
    every *grid* coarsening when it rolled back to the best step, so
    only PQ-coded merges can still pay.
    """
    improved = True
    while improved:
        improved = False
        refine = [
            cost_model.refinement_cost(stats_for(o)) for o in chosen
        ]
        refine_sum = float(sum(refine))
        n = len(chosen)
        out: list[OptimizedPartition] = []
        i = 0
        while i < len(chosen):
            if i + 1 < len(chosen):
                left, right = chosen[i], chosen[i + 1]
                indices = np.concatenate(
                    (left.partition.indices, right.partition.indices)
                )
                merged_part = Partition.of(data, indices)
                merged_opt = OptimizedPartition(merged_part, 1)
                best, r_merged = _best_pq_for(
                    data, merged_opt, cost_model, block_size
                )
                if best is not None:
                    old_total = cost_model.total_from_aggregates(
                        n, refine_sum
                    )
                    new_sum = (
                        refine_sum - refine[i] - refine[i + 1] + r_merged
                    )
                    new_total = cost_model.total_from_aggregates(
                        n - 1, new_sum
                    )
                    if new_total < old_total:
                        out.append(best)
                        refine_sum = new_sum
                        n -= 1
                        i += 2
                        improved = True
                        continue
            out.append(chosen[i])
            i += 1
        chosen = out
    return chosen


def choose_codecs(
    data: np.ndarray,
    solution: list[OptimizedPartition],
    cost_model: CostModel,
    block_size: int,
    *,
    mode: str = "grid",
    allow_merge: bool = False,
) -> list[OptimizedPartition]:
    """Codec selection as a post-pass over the grid solution.

    Two stages.  First, page by page, a per-page PQ codebook replaces
    the grid where it wins at the paper's expected-cost objective --
    the eq. 2-5 access probabilities are shared (same MBR, same m), so
    comparing expected refinement costs at ``eff_bits`` vs the grid
    ``bits`` is exact.  Second (``allow_merge``, bulk builds only),
    adjacent pages whose points fit a single PQ-coded block are
    coalesced while the model's total cost decreases -- compression
    turned into *fewer pages*, hence fewer transferred blocks.
    Maintenance sweeps keep ``allow_merge=False``: a sweep re-encodes
    pages in place and must preserve the page structure.

    ``mode`` is the tree-wide policy: ``"grid"`` returns the solution
    unchanged (byte-identical trees), ``"pq"`` forces the best-fitting
    PQ config wherever one fits, ``"auto"`` picks PQ only where the
    model says it is strictly cheaper (ties keep grid).
    """
    if mode == "grid":
        return list(solution)
    if mode not in ("pq", "auto"):
        raise BuildError(f"unknown codec mode {mode!r}")
    chosen: list[OptimizedPartition] = []
    for opt in solution:
        if opt.bits >= EXACT_BITS or opt.partition.size < 2:
            chosen.append(opt)
            continue
        grid_cost = cost_model.refinement_cost(stats_for(opt))
        best, best_cost = _best_pq_for(data, opt, cost_model, block_size)
        if best is None or (mode == "auto" and best_cost >= grid_cost):
            chosen.append(opt)
        else:
            chosen.append(best)
    if allow_merge:
        chosen = _merge_pass(data, chosen, cost_model, block_size)
    return chosen


__all__.extend(["choose_codecs", "pq_candidate_configs", "stats_for"])
