"""The IQ-tree: a three-level compressed index (paper Section 3).

Level 1 is a flat directory of exact MBRs (one entry per data page),
level 2 holds the grid-quantized data pages with per-page bit resolution,
and level 3 holds the exact point data, consulted only when a query
cannot be decided on the approximation.  Each level lives in its own
:class:`~repro.storage.blockfile.BlockFile` on a shared simulated disk.

Coordinates are canonicalized to float32 precision at build time (the
stored representation is float32, as in the paper's implementation), so
the index is exact with respect to its own stored data;
:attr:`IQTree.points` exposes the canonical copy all comparisons should
use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.exceptions import BuildError, SearchError
from repro.core.build import bulk_load_partitions
from repro.core.optimizer import (
    OptimizedPartition,
    OptimizationTrace,
    choose_codecs,
    optimize_partitions,
    fixed_bits_partitions,
    stats_for,
)
from repro.costmodel.fractal import correlation_dimension
from repro.costmodel.model import CostModel
from repro.geometry.mbr import MBR
from repro.geometry.metrics import get_metric
from repro.obs.instruments import PAGES_DECODED, REFINEMENTS, REGISTRY
from repro.quantization.capacity import EXACT_BITS
from repro.quantization.codecs import CODEC_PQ
from repro.quantization.grid import GridQuantizer
from repro.storage.blockfile import BlockFile
from repro.storage.disk import SimulatedDisk
from repro.storage import serializer

__all__ = ["IQTree", "canonicalize", "PageHandle"]


def canonicalize(data: np.ndarray) -> np.ndarray:
    """Round coordinates to float32 precision (the stored precision)."""
    return np.asarray(data, dtype=np.float32).astype(np.float64)


@dataclass
class PageHandle:
    """Decoded view of one quantized data page (internal to search)."""

    index: int
    bits: int
    codes: np.ndarray | None  # uint32 cell codes when bits < 32
    points: np.ndarray | None  # exact coords when bits = 32
    ids: np.ndarray | None  # inline ids when bits = 32
    codec: int = 0  # page codec id (0 = grid, 1 = per-page PQ)
    aux: object | None = None  # codec side data (PQView for PQ pages)


class IQTree:
    """A built IQ-tree over a point data set.

    Use :meth:`IQTree.build` to construct one; the initializer is
    internal.  Public query entry points are :meth:`nearest` and
    :meth:`range_query`; :meth:`insert`, :meth:`delete`, and
    :meth:`reoptimize` provide dynamic maintenance.
    """

    def __init__(
        self,
        points: np.ndarray,
        solution: list[OptimizedPartition],
        disk: SimulatedDisk,
        metric,
        cost_model: CostModel,
        trace: OptimizationTrace | None,
        charge_directory: bool,
        codec_mode: str = "grid",
        directory_codec: str = "dense",
    ):
        self._points = points
        self._partitions = list(solution)
        self.disk = disk
        self.metric = metric
        self.cost_model = cost_model
        self.trace = trace
        self.charge_directory = charge_directory
        #: tree-wide codec policy maintenance sweeps re-apply when they
        #: re-quantize pages ("grid", "pq", or "auto").
        self.codec_mode = codec_mode
        #: first-level layout: "dense" fixed-width rows or "ef"
        #: Elias-Fano reference columns ("auto" resolves at layout).
        self.directory_codec = directory_codec
        self._dirty = True
        self._id_to_partition: dict[int, int] = {}
        self._pool = None
        #: optional FaultContext (retry policy + quarantine) consulted
        #: by the query paths; None = fail-fast on any StorageError.
        self._fault_ctx = None
        #: optional DecodedPageCache serving decoded quantized pages
        #: across batches and single queries (see use_decoded_cache).
        self._decoded_cache = None
        #: optional FlightRecorder capturing postmortems of slow /
        #: degraded / faulted queries (see use_flight_recorder).
        self._flight_recorder = None
        #: highest journal sequence number folded into the container
        #: this tree was loaded from (see repro.storage.journal).
        self._wal_seq = 0
        #: reentrant lock serializing structural mutations (re-layouts,
        #: in-place page swaps) against query planning; the engine holds
        #: it for a whole batch, so a concurrent maintenance sweep can
        #: never expose a torn index to in-flight queries.
        self._write_lock = threading.RLock()
        #: bumped on every layout change or in-place page swap; query
        #: snapshots can compare epochs to detect a swap under them.
        self.epoch = 0
        self._layout()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        data: np.ndarray,
        disk: SimulatedDisk | None = None,
        metric="euclidean",
        fractal_dim: float | str | None = "auto",
        optimize: bool = True,
        fixed_bits: int | None = None,
        k_for_cost: int = 1,
        charge_directory: bool = True,
        layout: str = "spatial",
        layout_seed: int = 0,
        codec: str = "grid",
    ) -> "IQTree":
        """Bulk-load an IQ-tree.

        Parameters
        ----------
        data:
            Point data, shape ``(n, d)``.  Canonicalized to float32
            precision.
        disk:
            Simulated disk to build on (a default disk is created when
            omitted); its block size fixes the page size.
        metric:
            Query metric name or :class:`~repro.geometry.metrics.Metric`.
        fractal_dim:
            ``"auto"`` (estimate the correlation dimension from a
            sample), a float, or ``None`` for the uniform/independence
            model (``D_F = d``).
        optimize:
            Run the optimal-quantization algorithm.  When ``False``, the
            tree stores every page at ``fixed_bits`` (default 32 --
            i.e. a "no quantization" tree, the paper's Fig. 7 ablation).
        fixed_bits:
            Quantization level used when ``optimize=False``.
        k_for_cost:
            ``k`` the cost model optimizes for.
        charge_directory:
            Charge the sequential first-level scan to every query
            (matches the paper's cost model; disable to model a cached
            directory).
        layout:
            ``"spatial"`` (default) stores pages in the construction's
            depth-first order, so spatially close partitions are close
            on disk -- the clustering the cost-balance scheduler
            exploits.  ``"random"`` shuffles the page order (an
            ablation that isolates the layout's contribution).
        layout_seed:
            Seed of the ``"random"`` layout's shuffle.
        codec:
            Second-level/codec policy.  ``"grid"`` (default) is the
            paper's format, byte-identical to pre-codec containers.
            ``"pq"`` forces per-page PQ codebooks wherever one fits,
            ``"ef"`` keeps grid pages but stores the directory with
            Elias-Fano reference columns, and ``"auto"`` lets the cost
            model pick PQ per page where it is strictly cheaper and
            picks whichever directory layout needs fewer blocks.
        """
        disk = disk or SimulatedDisk()
        metric = get_metric(metric)
        codec_policies = {
            "grid": ("grid", "dense"),
            "pq": ("pq", "dense"),
            "ef": ("grid", "ef"),
            "auto": ("auto", "auto"),
        }
        if codec not in codec_policies:
            raise BuildError(f"unknown codec {codec!r}")
        codec_mode, directory_codec = codec_policies[codec]
        points = canonicalize(data)
        if points.ndim != 2 or points.shape[0] == 0:
            raise BuildError("build needs a non-empty (n, d) array")
        n, dim = points.shape
        block_size = disk.model.block_size

        if fractal_dim == "auto":
            fractal = correlation_dimension(points) if n >= 2 else float(dim)
        elif fractal_dim is None:
            fractal = float(dim)
        else:
            fractal = float(fractal_dim)

        space = MBR.of_points(points)
        volume = float(np.prod(np.maximum(space.extents, 1e-12)))
        cost_model = CostModel(
            disk.model,
            dim,
            n,
            fractal_dim=fractal,
            data_space_volume=volume,
            metric=metric,
            k=k_for_cost,
        )

        trace: OptimizationTrace | None = None
        if optimize:
            if fixed_bits is not None:
                raise BuildError("fixed_bits requires optimize=False")
            initial = bulk_load_partitions(points, block_size)
            solution, trace = optimize_partitions(
                points, initial, cost_model, block_size
            )
        else:
            bits = EXACT_BITS if fixed_bits is None else int(fixed_bits)
            solution = fixed_bits_partitions(points, block_size, bits)
        if layout == "random":
            rng = np.random.default_rng(layout_seed)
            solution = [solution[i] for i in rng.permutation(len(solution))]
        elif layout != "spatial":
            raise BuildError(f"unknown layout: {layout!r}")
        solution = choose_codecs(
            points,
            solution,
            cost_model,
            block_size,
            mode=codec_mode,
            allow_merge=True,
        )
        return cls(
            points,
            solution,
            disk,
            metric,
            cost_model,
            trace,
            charge_directory,
            codec_mode=codec_mode,
            directory_codec=directory_codec,
        )

    # ------------------------------------------------------------------
    # File layout
    # ------------------------------------------------------------------
    def _layout(self) -> None:
        """(Re)serialize all three levels onto fresh disk extents."""
        block_size = self.disk.model.block_size
        n_parts = len(self._partitions)
        if n_parts == 0:
            raise BuildError("cannot lay out an empty tree")
        if any(opt.partition.size == 0 for opt in self._partitions):
            raise BuildError("cannot lay out a zero-count partition")
        dim = self.dim
        self._invalidate_resident_blocks()

        lowers = np.empty((n_parts, dim))
        uppers = np.empty((n_parts, dim))
        counts = np.empty(n_parts, dtype=np.int64)
        bits = np.empty(n_parts, dtype=np.int64)
        exact_firsts = np.zeros(n_parts, dtype=np.int64)
        exact_counts = np.zeros(n_parts, dtype=np.int64)
        part_ids: list[np.ndarray] = []

        quant_file = BlockFile(self.disk, "quantized")
        exact_file = BlockFile(self.disk, "exact")
        self._id_to_partition.clear()

        for j, opt in enumerate(self._partitions):
            part, g = opt.partition, opt.bits
            pts = part.points(self._points)
            ids = part.indices
            part_ids.append(ids)
            for pid in ids:
                self._id_to_partition[int(pid)] = j
            lowers[j] = part.mbr.lower
            uppers[j] = part.mbr.upper
            counts[j] = part.size
            bits[j] = g
            if g >= EXACT_BITS:
                payload = serializer.encode_quantized_page(
                    pts, EXACT_BITS, block_size, ids=ids
                )
                quant_file.append_block(payload)
            else:
                if opt.codec == CODEC_PQ:
                    payload = serializer.encode_pq_page(
                        pts, opt.pq_bits, opt.pq_sub, block_size
                    )
                else:
                    quantizer = GridQuantizer(part.mbr, g)
                    codes = quantizer.encode(pts)
                    payload = serializer.encode_quantized_page(
                        codes, g, block_size
                    )
                quant_file.append_block(payload)
                record = serializer.encode_exact_record(pts, ids)
                first, nblocks = exact_file.append_record(record)
                exact_firsts[j] = first
                exact_counts[j] = nblocks

        dir_file = BlockFile(self.disk, "directory")
        dir_args = (
            lowers,
            uppers,
            np.arange(n_parts),
            exact_firsts,
            exact_counts,
            counts,
            block_size,
        )
        dir_mode = self.directory_codec
        dense_blocks = ef_blocks = None
        if dir_mode != "ef":
            dense_blocks = serializer.encode_directory(*dir_args)
        if dir_mode in ("ef", "auto"):
            from repro.quantization.eliasfano import encode_ef_directory

            ef_blocks = encode_ef_directory(*dir_args)
        if dir_mode == "auto":
            # Resolve once and persist the winner: "auto" must never
            # cost more first-level blocks than the dense layout.
            dir_mode = "ef" if len(ef_blocks) < len(dense_blocks) else "dense"
        self.directory_codec = dir_mode
        dir_blocks = ef_blocks if dir_mode == "ef" else dense_blocks
        for payload in dir_blocks:
            dir_file.append_block(payload)

        # Seal in first/second/third level order: three distinct files,
        # each in its own contiguous extent (paper Section 3.1).
        dir_file.seal()
        quant_file.seal()
        exact_file.seal()

        if self._pool is not None:
            from repro.storage.cache import CachedBlockFile

            dir_file = CachedBlockFile(dir_file, self._pool)
            quant_file = CachedBlockFile(quant_file, self._pool)
            exact_file = CachedBlockFile(exact_file, self._pool)
        self._dir_file = dir_file
        self._quant_file = quant_file
        self._exact_file = exact_file
        # Directory arrays mirror the float32 on-disk representation.
        raw_blocks = [
            dir_file.peek_block(i) for i in range(dir_file.n_blocks)
        ]
        if dir_mode == "ef":
            from repro.quantization.eliasfano import decode_ef_directory

            decoded = decode_ef_directory(raw_blocks, dim, n_parts)
        else:
            decoded = serializer.decode_directory(raw_blocks, dim, n_parts)
        self._lowers = decoded["lowers"]
        self._uppers = decoded["uppers"]
        self._counts = decoded["point_counts"]
        self._bits = bits
        self._exact_firsts = decoded["exact_firsts"]
        self._exact_blocks = decoded["exact_counts"]
        self._part_ids = part_ids
        if self._decoded_cache is not None:
            # Page indices were just reassigned wholesale; every cached
            # decode is addressed by a now-meaningless key.
            self._decoded_cache.clear()
        self.epoch += 1
        self._dirty = False

    def _invalidate_resident_blocks(self) -> None:
        """Evict this tree's current extents from the buffer pool.

        A re-layout moves every page to a fresh extent; the old
        addresses are never read again, so residents left behind are
        pure capacity leaks (and would serve stale bytes if the disk
        ever reused an address).
        """
        pool = self._pool
        if pool is None:
            return
        for slot in ("_dir_file", "_quant_file", "_exact_file"):
            wrapped = getattr(self, slot, None)
            if wrapped is None:
                continue
            inner = getattr(wrapped, "_file", wrapped)
            if not inner.sealed:
                continue
            base = inner.extent_start
            for i in range(inner.n_blocks):
                pool.invalidate(base + i)

    def _ensure_clean(self) -> None:
        if self._dirty:
            with self._write_lock:
                if self._dirty:
                    self._layout()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """The canonical (float32-precision) data the index stores."""
        return self._points

    @property
    def n_points(self) -> int:
        """Number of rows in the backing point array.

        Deleted points stay in the array until :meth:`reoptimize`
        compacts it; :attr:`n_live_points` counts only indexed points.
        """
        return self._points.shape[0]

    @property
    def n_live_points(self) -> int:
        """Number of points currently indexed (excludes deleted rows)."""
        return sum(opt.partition.size for opt in self._partitions)

    @property
    def dim(self) -> int:
        """Data dimensionality."""
        return int(self._points.shape[1])

    @property
    def n_pages(self) -> int:
        """Number of data pages (= directory entries)."""
        return len(self._partitions)

    @property
    def page_bits(self) -> np.ndarray:
        """Per-page quantization level ``g`` (int array)."""
        self._ensure_clean()
        return self._bits.copy()

    def page_mbr(self, page: int) -> MBR:
        """The (float32-exact) MBR of one data page."""
        self._ensure_clean()
        return MBR(self._lowers[page], self._uppers[page])

    def size_summary(self) -> dict[str, int]:
        """Block counts of the three files (compression diagnostics)."""
        self._ensure_clean()
        return {
            "directory_blocks": self._dir_file.n_blocks,
            "quantized_blocks": self._quant_file.n_blocks,
            "exact_blocks": self._exact_file.n_blocks,
        }

    # ------------------------------------------------------------------
    # Query entry points (implemented in repro.core.search)
    # ------------------------------------------------------------------
    def nearest(self, query: np.ndarray, k: int = 1, scheduler: str = "optimized"):
        """k-nearest-neighbor query.

        Parameters
        ----------
        query:
            Query point, shape ``(d,)``.
        k:
            Number of neighbors.
        scheduler:
            ``"optimized"`` for the paper's cost-balance page scheduling
            (Section 2.1) or ``"standard"`` for one random read per
            pivot page.
        """
        from repro.core.search import nearest_neighbors

        with self._write_lock:
            return nearest_neighbors(self, query, k=k, scheduler=scheduler)

    def range_query(self, query: np.ndarray, radius: float):
        """All points within ``radius`` of ``query`` (ids + distances)."""
        from repro.core.search import range_search

        with self._write_lock:
            return range_search(self, query, radius)

    def nearest_batch(
        self, queries: np.ndarray, k: int = 1, scheduler: str = "optimized"
    ) -> list:
        """Run :meth:`nearest` for each row of ``queries``.

        The disk head is *not* parked between queries, so consecutive
        queries benefit from head locality (the measurement harness
        parks explicitly when per-query isolation is wanted).
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise SearchError("queries must be a (q, d) array")
        return [
            self.nearest(q, k=k, scheduler=scheduler) for q in queries
        ]

    def query_engine(
        self,
        pool=None,
        workers: int = 1,
        decode_cache=None,
        backend: str = "auto",
    ):
        """A :class:`~repro.engine.QueryEngine` serving this tree.

        ``pool`` is an optional shared buffer pool (or integer capacity
        in blocks) attached via :meth:`use_buffer_pool`; when omitted,
        the engine uses whatever pool is already attached, if any.
        ``workers`` sizes the engine's worker pool and ``backend``
        selects its executor (``"thread"``, ``"process"``, or ``"auto"``
        -- results are identical either way); ``decode_cache`` is an
        optional :class:`~repro.engine.DecodedPageCache` (or byte
        budget) attached via :meth:`use_decoded_cache`.
        """
        from repro.engine import QueryEngine

        return QueryEngine(
            self,
            pool=pool,
            workers=workers,
            decode_cache=decode_cache,
            backend=backend,
        )

    def browse(self, query: np.ndarray):
        """Incremental distance browsing: yields ``(id, distance)`` in
        ascending order, lazily (Hjaltason-Samet ranking)."""
        from repro.core.search import browse_by_distance

        return browse_by_distance(self, query)

    def estimated_range_query(self, radius: float):
        """Model predictions for a range query of the given radius.

        Returns a :class:`~repro.costmodel.range_model.RangeEstimate`
        (expected result count, page accesses, and simulated time).
        """
        from repro.costmodel.range_model import estimate_range_query

        self._ensure_clean()
        return estimate_range_query(
            radius,
            self.n_pages,
            self.n_live_points,
            self.dim,
            self.disk.model,
            fractal_dim=self.cost_model.fractal_dim,
            data_space_volume=self.cost_model.data_space_volume,
            metric=self.metric,
        )

    def insert_many(self, points: np.ndarray) -> np.ndarray:
        """Insert a batch of points; returns their assigned ids.

        Equivalent to repeated :meth:`insert` (each point goes through
        the Section 6 overflow logic) with a single re-layout at the
        end instead of one per intervening query.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.dim:
            raise SearchError(f"points must be (m, {self.dim})")
        return np.array([self.insert(p) for p in points], dtype=np.int64)

    def estimated_query_cost(self):
        """The cost model's prediction for this tree's layout.

        Returns a :class:`~repro.costmodel.model.CostBreakdown` with the
        expected first-level, second-level, and refinement time per
        nearest-neighbor query -- the quantity the optimizer minimized.
        """
        return self.cost_model.breakdown(
            stats_for(opt) for opt in self._partitions
        )

    # ------------------------------------------------------------------
    # Maintenance entry points (implemented in repro.core.maintenance)
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> int:
        """Insert a point; returns its assigned id (Section 6)."""
        from repro.core.maintenance import insert_point

        with self._write_lock:
            return insert_point(self, point)

    def delete(self, point_id: int) -> None:
        """Delete a point by id."""
        from repro.core.maintenance import delete_point

        with self._write_lock:
            delete_point(self, point_id)

    def reoptimize(self) -> None:
        """Re-run bulk load + optimal quantization on the current data."""
        from repro.core.maintenance import reoptimize

        with self._write_lock:
            reoptimize(self)

    def maintenance_manager(self, drift_ratio: float = 1.25):
        """A :class:`~repro.core.maintenance.MaintenanceManager` for
        this tree: tracks dirty pages (structural edits and cost-model
        drift) and re-quantizes them in background sweeps."""
        from repro.core.maintenance import MaintenanceManager

        return MaintenanceManager(self, drift_ratio=drift_ratio)

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------
    def use_buffer_pool(self, pool_or_capacity) -> "object":
        """Attach an LRU buffer pool to all three level files.

        Accepts a :class:`~repro.storage.cache.BufferPool` (possibly
        shared with other indexes on the same disk) or an integer
        capacity in blocks.  Returns the pool.  Pass 0 to effectively
        disable caching; re-layouts after maintenance keep the pool but
        drop stale residency.
        """
        from repro.storage.cache import BufferPool

        from repro.storage.cache import CachedBlockFile

        if isinstance(pool_or_capacity, BufferPool):
            pool = pool_or_capacity
        else:
            pool = BufferPool(int(pool_or_capacity))
        self._pool = pool
        if self._fault_ctx is not None:
            self._fault_ctx.pool = pool
        # Wrap the live files in place; re-layouts re-wrap automatically.
        if not self._dirty:
            for slot in ("_dir_file", "_quant_file", "_exact_file"):
                current = getattr(self, slot)
                if isinstance(current, CachedBlockFile):
                    current = current._file
                setattr(self, slot, CachedBlockFile(current, pool))
        return pool

    def use_decoded_cache(self, cache_or_budget) -> "object":
        """Attach a cross-batch decoded-page cache to the query paths.

        Accepts a :class:`~repro.engine.page_cache.DecodedPageCache`
        or an integer byte budget.  Returns the cache.  With one
        attached, quantized pages are decoded once and served from
        memory until evicted (LRU over the byte budget) or invalidated
        -- `replace_block` rewrites are caught by the per-block CRC
        sidecar, structural re-layouts clear the cache wholesale, and
        quarantined pages are bypassed (see ``docs/performance.md``).

        Idempotent: re-attaching the already-attached cache is a no-op,
        and swapping caches re-syncs the resident-bytes gauge to the
        *new* cache, so repeated enable/disable cannot leave
        ``iq_decoded_page_cache_resident_bytes`` reporting a detached
        cache's stale byte count.
        """
        from repro.engine.page_cache import DecodedPageCache
        from repro.obs.instruments import DECODED_CACHE_BYTES

        if isinstance(cache_or_budget, DecodedPageCache):
            cache = cache_or_budget
        else:
            cache = DecodedPageCache(int(cache_or_budget))
        if cache is self._decoded_cache:
            return cache
        self._decoded_cache = cache
        if REGISTRY.enabled:
            DECODED_CACHE_BYTES.set(cache.current_bytes)
        return cache

    def clear_decoded_cache(self) -> None:
        """Detach the decoded-page cache: every read decodes again.

        Resets the resident-bytes gauge so it does not keep reporting
        the detached cache's last value.  Idempotent.
        """
        from repro.obs.instruments import DECODED_CACHE_BYTES

        if self._decoded_cache is None:
            return
        self._decoded_cache = None
        if REGISTRY.enabled:
            DECODED_CACHE_BYTES.set(0)

    @property
    def decoded_cache(self):
        """The attached DecodedPageCache, or None."""
        return self._decoded_cache

    # ------------------------------------------------------------------
    # Flight recorder (repro.obs.flight)
    # ------------------------------------------------------------------
    def use_flight_recorder(self, recorder_or_capacity=64):
        """Attach a flight recorder to every query path of this tree.

        Accepts a :class:`~repro.obs.flight.FlightRecorder` or an
        integer ring capacity.  Returns the recorder.  With one
        attached, single queries and engine batches that qualify as
        slow, degraded, or faulted leave a full postmortem record
        (span tree + counter deltas) in the bounded ring; dump it with
        ``recorder.to_json()`` or the ``repro flight`` CLI.  Idempotent
        for an already-attached recorder.
        """
        from repro.obs.flight import FlightRecorder

        if isinstance(recorder_or_capacity, FlightRecorder):
            recorder = recorder_or_capacity
        else:
            recorder = FlightRecorder(capacity=int(recorder_or_capacity))
        self._flight_recorder = recorder
        return recorder

    def clear_flight_recorder(self) -> None:
        """Detach the flight recorder (its records stay readable)."""
        self._flight_recorder = None

    @property
    def flight_recorder(self):
        """The attached FlightRecorder, or None."""
        return self._flight_recorder

    # ------------------------------------------------------------------
    # Fault tolerance (repro.storage.runtime_faults)
    # ------------------------------------------------------------------
    def use_fault_tolerance(self, policy=None):
        """Attach a fresh fault-tolerance context to the query paths.

        ``policy`` is an optional
        :class:`~repro.storage.runtime_faults.RetryPolicy`.  With a
        context attached, queries retry faulted reads, quarantine blocks
        proven unreadable, and degrade to quantization-interval results
        instead of raising (see ``docs/robustness.md``).  Returns the
        :class:`~repro.storage.runtime_faults.FaultContext` so callers
        can inspect its quarantine and counters.
        """
        from repro.storage.runtime_faults import FaultContext

        self._fault_ctx = FaultContext(policy=policy, pool=self._pool)
        return self._fault_ctx

    def clear_fault_tolerance(self) -> None:
        """Drop the fault context: queries fail fast again.

        Also discards the quarantine, so a past fault schedule cannot
        influence later fault-free queries.
        """
        self._fault_ctx = None

    @property
    def fault_context(self):
        """The attached FaultContext, or None."""
        return self._fault_ctx

    # ------------------------------------------------------------------
    # Internal I/O helpers used by the search algorithms
    # ------------------------------------------------------------------
    def _charge_directory_scan(self) -> None:
        if self.charge_directory and self._dir_file.n_blocks:
            self._dir_file.read_run(0, self._dir_file.n_blocks)

    def _decode_page_payload(self, page: int, payload: bytes) -> PageHandle:
        contents, g, ids, aux = serializer.decode_quantized_page(
            payload, self.dim
        )
        if REGISTRY.enabled:
            PAGES_DECODED.inc(bits=g)
        if g >= EXACT_BITS:
            handle = PageHandle(page, g, None, contents, ids)
        elif aux is not None:
            handle = PageHandle(
                page, g, contents, None, None, codec=CODEC_PQ, aux=aux
            )
        else:
            handle = PageHandle(page, g, contents, None, None)
        if self._decoded_cache is not None:
            self._decoded_cache.put(self, page, handle)
        return handle

    def _cached_handle(self, page: int) -> PageHandle | None:
        """Decoded view of ``page`` from the decoded-page cache, if any.

        Quarantined pages always miss: a poisoned block must go through
        the (failing) read path so it is reported lost, never served
        from a pre-fault decode.
        """
        cache = self._decoded_cache
        if cache is None:
            return None
        if self._fault_ctx is not None:
            if self._quant_file.extent_start + page in (
                self._fault_ctx.quarantine
            ):
                return None
        entry = cache.get(self, page)
        return None if entry is None else entry.handle

    def _read_page(self, page: int) -> PageHandle:
        """Random single-page read (the standard strategy)."""
        cached = self._cached_handle(page)
        if cached is not None:
            return cached
        return self._decode_page_payload(
            page, self._quant_file.read_block(page)
        )

    def _read_page_run(
        self, first: int, last: int, wanted: int
    ) -> list[bytes]:
        """One sequential transfer of pages ``first..last`` inclusive."""
        return self._quant_file.read_run(
            first, last - first + 1, wanted=wanted
        )

    def _quantizer_for(self, page: int) -> GridQuantizer:
        return GridQuantizer(
            MBR(self._lowers[page], self._uppers[page]),
            int(self._bits[page]),
        )

    def _codec_view(self, page: int, handle: PageHandle):
        """Cell-bounds provider for one decoded page.

        PQ pages carry their codebook view in ``handle.aux``; grid
        pages reconstruct the quantizer from the directory MBR.  Both
        expose ``cell_bounds`` / ``cell_mindist`` / ``cell_maxdist``.
        """
        if handle.aux is not None:
            return handle.aux
        return self._quantizer_for(page)

    def __repr__(self) -> str:
        return (
            f"IQTree(n={self.n_points}, dim={self.dim}, "
            f"pages={self.n_pages}, metric={self.metric.name})"
        )


class ExactStore:
    """Per-query cached reader of third-level point records.

    Refining a point pays one random seek plus the transfer of the block
    (or two, when the record straddles a boundary) that holds its
    record; blocks already fetched during the same query are free.
    """

    def __init__(self, tree: IQTree):
        self._tree = tree
        self._cache: dict[int, bytes] = {}
        self.refinements = 0

    def fetch(self, page: int, local_index: int) -> tuple[np.ndarray, int]:
        """Exact ``(coords, id)`` of one point of a ``g < 32`` page."""
        tree = self._tree
        record = serializer.exact_point_record_size(tree.dim)
        first_block = int(tree._exact_firsts[page])
        start = local_index * record
        end = start + record  # exclusive
        block_size = tree.disk.model.block_size
        b0 = first_block + start // block_size
        b1 = first_block + (end - 1) // block_size
        data = bytearray()
        for b in range(b0, b1 + 1):
            if b not in self._cache:
                self._cache[b] = self._read_block(b)
            data += self._cache[b]
        offset = start - (b0 - first_block) * block_size
        coords, ids = serializer.decode_exact_record(
            bytes(data[offset : offset + record]), 1, tree.dim
        )
        self.refinements += 1
        if REGISTRY.enabled:
            REFINEMENTS.inc()
        return coords[0], int(ids[0])

    def _read_block(self, b: int) -> bytes:
        """One third-level block read, via the fault context if attached.

        Already-quarantined blocks fail immediately (no pointless
        retries); fresh faults go through the retry policy.
        """
        tree = self._tree
        ctx = tree._fault_ctx
        if ctx is None:
            return tree._exact_file.read_block(b)
        address = tree._exact_file.extent_start + b
        if address in ctx.quarantine:
            from repro.exceptions import PersistentReadError

            raise PersistentReadError(
                f"exact block {b} is quarantined", address=address
            )
        return ctx.run(
            lambda: tree._exact_file.read_block(b), tree.disk
        )


__all__.append("ExactStore")
