"""IQ-tree query processing (paper Sections 2.1 and 3.2).

Nearest-neighbor search is Hjaltason-Samet best-first search over a
priority list that mixes two granularities: whole data pages (first-level
MBRs) and the box approximations of individual points (grid cells of
loaded quantized pages).  A page that becomes the pivot is loaded and its
cells enter the list; a *point* that becomes the pivot is refined --
its exact coordinates are fetched from the third level -- because, as
the paper argues, no strategy can avoid that look-up.

Two page-access strategies are available:

* ``standard`` -- one random read per pivot page (how classic index
  structures operate);
* ``optimized`` -- the cost-balance scheduler of Section 2.1: when a
  page must be read, neighboring pages in file order whose estimated
  access probabilities (eqs. 2-5) make speculative reading cheaper in
  expectation than a later random seek are fetched in the same
  sequential transfer.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SearchError
from repro.costmodel.access_probability import (
    PageView,
    access_probabilities,
)
from repro.core.tree import ExactStore, IQTree, PageHandle
from repro.geometry.mbr import mindist_to_boxes
from repro.obs.drift import MONITOR as _DRIFT
from repro.obs.instruments import QUERY_SECONDS, REGISTRY
from repro.storage.disk import IOStats
from repro.storage.scheduler import cost_balance_window

__all__ = [
    "NNResult",
    "RangeResult",
    "KBest",
    "nearest_neighbors",
    "range_search",
    "browse_by_distance",
    "checked_query",
    "checked_queries",
    "io_snapshot",
    "io_delta",
]

_PAGE = 0
_POINT = 1


@dataclass
class NNResult:
    """Result of a k-nearest-neighbor query.

    Attributes
    ----------
    ids:
        Point ids, ascending by distance, shape ``(k,)``.
    distances:
        Matching distances.
    io:
        Simulated-I/O delta of this query.
    pages_read:
        Number of quantized data pages processed.
    refinements:
        Number of third-level exact look-ups performed.
    """

    ids: np.ndarray
    distances: np.ndarray
    io: IOStats
    pages_read: int
    refinements: int


@dataclass
class RangeResult:
    """Result of a range query (all points within a radius)."""

    ids: np.ndarray
    distances: np.ndarray
    io: IOStats
    pages_read: int
    refinements: int


class KBest:
    """Fixed-size max-heap tracking the current k best candidates.

    Shared by the single-query searches here and by the batch query
    engine in :mod:`repro.engine`.
    """

    def __init__(self, k: int):
        self.k = k
        self._heap: list[tuple[float, int]] = []  # (-dist, id)

    def bound(self) -> float:
        """Current pruning distance (inf until k candidates exist)."""
        if len(self._heap) < self.k:
            return np.inf
        return -self._heap[0][0]

    def offer(self, dist: float, point_id: int) -> None:
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-dist, point_id))
        elif dist < -self._heap[0][0]:
            heapq.heapreplace(self._heap, (-dist, point_id))

    def offer_many(self, dists: np.ndarray, ids: np.ndarray) -> None:
        for dist, pid in zip(dists, ids):
            self.offer(float(dist), int(pid))

    def sorted_results(self) -> tuple[np.ndarray, np.ndarray]:
        pairs = sorted((-nd, pid) for nd, pid in self._heap)
        dists = np.array([p[0] for p in pairs])
        ids = np.array([p[1] for p in pairs], dtype=np.int64)
        return ids, dists


def nearest_neighbors(
    tree: IQTree, query: np.ndarray, k: int = 1, scheduler: str = "optimized"
) -> NNResult:
    """Exact k-NN search on an IQ-tree.

    See the module docstring for the algorithm; ``scheduler`` selects the
    page-access strategy.
    """
    if k < 1:
        raise SearchError("k must be at least 1")
    if scheduler not in ("optimized", "standard"):
        raise SearchError(f"unknown scheduler: {scheduler!r}")
    tree._ensure_clean()
    if k > tree.n_points:
        raise SearchError(f"k={k} exceeds the {tree.n_points} stored points")
    query = checked_query(tree, query)

    io_before = io_snapshot(tree)
    tree._charge_directory_scan()

    metric = tree.metric
    page_mindists = mindist_to_boxes(
        query, tree._lowers, tree._uppers, metric
    )
    n_pages = tree.n_pages
    processed = np.zeros(n_pages, dtype=bool)
    best = KBest(k)
    exact = ExactStore(tree)
    pages_read = 0

    tie = itertools.count()
    heap: list[tuple] = [
        (float(page_mindists[i]), next(tie), _PAGE, i, 0)
        for i in range(n_pages)
    ]
    heapq.heapify(heap)

    while heap and heap[0][0] <= best.bound():
        dist, _t, kind, page, local = heapq.heappop(heap)
        if kind == _POINT:
            coords, pid = exact.fetch(page, local)
            best.offer(metric.distance(query, coords), pid)
            continue
        if processed[page]:
            continue
        if scheduler == "standard":
            handles = [tree._read_page(page)]
        else:
            handles = _read_window(
                tree, query, page, page_mindists, processed,
                best.bound(), k,
            )
        for handle in handles:
            processed[handle.index] = True
            pages_read += 1
            _process_page(tree, query, handle, best, heap, tie)

    ids, dists = best.sorted_results()
    io_after = io_snapshot(tree)
    result = NNResult(
        ids=ids,
        distances=dists,
        io=io_delta(io_before, io_after),
        pages_read=pages_read,
        refinements=exact.refinements,
    )
    if REGISTRY.enabled:
        QUERY_SECONDS.observe(result.io.elapsed)
        _DRIFT.observe_query(
            tree,
            k,
            actual_pages=result.pages_read,
            actual_seconds=result.io.elapsed,
        )
    return result


def range_search(tree: IQTree, query: np.ndarray, radius: float) -> RangeResult:
    """All points within ``radius`` of ``query``.

    The candidate page set is known up front (every page whose MBR
    mindist is within the radius), so the pages are fetched with the
    optimal batched strategy of Section 2.  A point whose cell maxdist
    is within the radius is a certain answer but is still refined --
    returning an answer means producing its exact record; a point whose
    cell straddles the radius is refined to decide.
    """
    if radius < 0:
        raise SearchError("radius must be non-negative")
    tree._ensure_clean()
    query = checked_query(tree, query)

    io_before = io_snapshot(tree)
    tree._charge_directory_scan()
    metric = tree.metric
    page_mindists = mindist_to_boxes(
        query, tree._lowers, tree._uppers, metric
    )
    candidates = np.flatnonzero(page_mindists <= radius)
    exact = ExactStore(tree)
    found_ids: list[int] = []
    found_dists: list[float] = []
    pages_read = 0

    payloads = tree._quant_file.read_batched(candidates.tolist())
    for page in candidates.tolist():
        handle = tree._decode_page_payload(page, payloads[page])
        pages_read += 1
        if handle.points is not None:
            dists = metric.distances(query, handle.points)
            inside = dists <= radius
            found_ids.extend(handle.ids[inside].tolist())
            found_dists.extend(dists[inside].tolist())
            continue
        quantizer = tree._quantizer_for(page)
        lower_b = quantizer.cell_mindist(query, handle.codes, metric)
        for local in np.flatnonzero(lower_b <= radius):
            coords, pid = exact.fetch(page, int(local))
            dist = metric.distance(query, coords)
            if dist <= radius:
                found_ids.append(pid)
                found_dists.append(dist)

    order = np.argsort(found_dists, kind="stable")
    io_after = io_snapshot(tree)
    result = RangeResult(
        ids=np.array(found_ids, dtype=np.int64)[order],
        distances=np.array(found_dists)[order],
        io=io_delta(io_before, io_after),
        pages_read=pages_read,
        refinements=exact.refinements,
    )
    if REGISTRY.enabled:
        # The cost model predicts kNN queries only, so range queries
        # feed the latency histogram but not the drift monitor.
        QUERY_SECONDS.observe(result.io.elapsed)
    return result


def browse_by_distance(tree: IQTree, query: np.ndarray):
    """Incremental distance browsing (Hjaltason-Samet ranking).

    Yields ``(point_id, distance)`` pairs in ascending distance order,
    lazily: pages are loaded and points refined only as far as the
    consumer iterates, so taking the first k results does no more I/O
    than a k-NN query with an unknown k.  This is the natural API for
    "give me neighbors until I say stop" workloads; the paper's k-NN
    algorithm is the bounded special case.

    Uses the standard (one random read per pivot page) access strategy:
    speculative pre-reading needs a pruning bound, and an open-ended
    ranking has none.
    """
    tree._ensure_clean()
    query = checked_query(tree, query)
    tree._charge_directory_scan()
    metric = tree.metric
    page_mindists = mindist_to_boxes(
        query, tree._lowers, tree._uppers, metric
    )
    exact = ExactStore(tree)
    tie = itertools.count()
    # Entry kinds: _PAGE (load + expand), _POINT (refine), _RESULT
    # (already-exact distance, ready to emit).
    result_kind = 2
    heap: list[tuple] = [
        (float(page_mindists[i]), next(tie), _PAGE, i, 0)
        for i in range(tree.n_pages)
    ]
    heapq.heapify(heap)
    while heap:
        dist, _t, kind, page, local = heapq.heappop(heap)
        if kind == result_kind:
            yield int(page), float(dist)  # page slot holds the id here
            continue
        if kind == _POINT:
            coords, pid = exact.fetch(page, local)
            true = metric.distance(query, coords)
            heapq.heappush(heap, (true, next(tie), result_kind, pid, 0))
            continue
        handle = tree._read_page(page)
        if handle.points is not None:
            dists = metric.distances(query, handle.points)
            for pid, true in zip(handle.ids, dists):
                heapq.heappush(
                    heap, (float(true), next(tie), result_kind, int(pid), 0)
                )
            continue
        quantizer = tree._quantizer_for(page)
        lower_b = quantizer.cell_mindist(query, handle.codes, metric)
        for local_idx, lb in enumerate(lower_b):
            heapq.heappush(
                heap, (float(lb), next(tie), _POINT, page, local_idx)
            )


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _process_page(tree, query, handle: PageHandle, best, heap, tie) -> None:
    """Decode one page: exact pages update the result directly, coarser
    pages push their cells' box approximations into the priority list."""
    metric = tree.metric
    if handle.points is not None:
        dists = metric.distances(query, handle.points)
        best.offer_many(dists, handle.ids)
        return
    quantizer = tree._quantizer_for(handle.index)
    lower_b = quantizer.cell_mindist(query, handle.codes, metric)
    bound = best.bound()
    for local in np.flatnonzero(lower_b <= bound):
        heapq.heappush(
            heap,
            (float(lower_b[local]), next(tie), _POINT, handle.index, int(local)),
        )


def _read_window(
    tree: IQTree,
    query: np.ndarray,
    pivot: int,
    page_mindists: np.ndarray,
    processed: np.ndarray,
    bound: float,
    k: int = 1,
) -> list[PageHandle]:
    """Cost-balance page fetch around the pivot (Section 2.1).

    Builds the pending-page snapshot, evaluates access probabilities for
    file-order neighbors of the pivot, extends the transfer while the
    cumulated cost balance stays favorable, reads the chosen run in one
    sequential transfer, and returns the decoded pending pages.
    """
    n_pages = tree.n_pages
    pending = ~processed
    if np.isfinite(bound):
        pending &= page_mindists <= bound
    pending[pivot] = True
    pending_idx = np.flatnonzero(pending)
    snapshot_of = np.full(n_pages, -1, dtype=np.int64)
    snapshot_of[pending_idx] = np.arange(pending_idx.size)
    view = PageView(
        lowers=tree._lowers[pending_idx],
        uppers=tree._uppers[pending_idx],
        counts=tree._counts[pending_idx].astype(np.float64),
        mindists=page_mindists[pending_idx],
    )

    def probability(block: int) -> float:
        snap = snapshot_of[block]
        if snap < 0:
            return 0.0
        return float(
            access_probabilities(
                query, view, np.array([snap]), metric=tree.metric, k=k
            )[0]
        )

    first, last = cost_balance_window(
        pivot, n_pages, probability, tree.disk.model
    )
    to_process = [
        j for j in range(first, last + 1) if not processed[j] and pending[j]
    ]
    payloads = tree._read_page_run(first, last, wanted=len(to_process))
    return [
        tree._decode_page_payload(j, payloads[j - first])
        for j in to_process
    ]


def checked_query(tree: IQTree, query) -> np.ndarray:
    """Validate a query point: right shape, finite coordinates."""
    query = np.asarray(query, dtype=np.float64)
    if query.shape != (tree.dim,):
        raise SearchError(
            f"query must have shape ({tree.dim},), got {query.shape}"
        )
    if not np.all(np.isfinite(query)):
        raise SearchError("query coordinates must be finite")
    return query


def checked_queries(tree: IQTree, queries) -> np.ndarray:
    """Validate a batch of query points, shape ``(q, d)``."""
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != tree.dim:
        raise SearchError(
            f"queries must have shape (q, {tree.dim}), "
            f"got {queries.shape}"
        )
    if not np.all(np.isfinite(queries)):
        raise SearchError("query coordinates must be finite")
    return queries


def io_snapshot(tree: IQTree) -> IOStats:
    """Copy of the tree's disk ledger (for before/after deltas)."""
    s = tree.disk.stats
    return IOStats(
        seeks=s.seeks,
        blocks_read=s.blocks_read,
        blocks_overread=s.blocks_overread,
        elapsed=s.elapsed,
    )


def io_delta(before: IOStats, after: IOStats) -> IOStats:
    """Ledger difference ``after - before``."""
    return IOStats(
        seeks=after.seeks - before.seeks,
        blocks_read=after.blocks_read - before.blocks_read,
        blocks_overread=after.blocks_overread - before.blocks_overread,
        elapsed=after.elapsed - before.elapsed,
    )
