"""IQ-tree query processing (paper Sections 2.1 and 3.2).

Nearest-neighbor search is Hjaltason-Samet best-first search over a
priority list that mixes two granularities: whole data pages (first-level
MBRs) and the box approximations of individual points (grid cells of
loaded quantized pages).  A page that becomes the pivot is loaded and its
cells enter the list; a *point* that becomes the pivot is refined --
its exact coordinates are fetched from the third level -- because, as
the paper argues, no strategy can avoid that look-up.

Two page-access strategies are available:

* ``standard`` -- one random read per pivot page (how classic index
  structures operate);
* ``optimized`` -- the cost-balance scheduler of Section 2.1: when a
  page must be read, neighboring pages in file order whose estimated
  access probabilities (eqs. 2-5) make speculative reading cheaper in
  expectation than a later random seek are fetched in the same
  sequential transfer.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    IntegrityError,
    QueryDataError,
    ReadFaultError,
    SearchError,
    StorageError,
)
from repro.costmodel.access_probability import (
    PageView,
    access_probabilities,
)
from repro.core.tree import ExactStore, IQTree, PageHandle
from repro.geometry.mbr import maxdist_to_boxes, mindist_to_boxes
from repro.obs.drift import MONITOR as _DRIFT
from repro.obs.instruments import (
    DEGRADED_RESULTS,
    LOST_PAGES,
    QUERY_SECONDS,
    REGISTRY,
)
from repro.storage.disk import IOStats
from repro.storage.runtime_faults import (
    LostPage,
    fault_address,
    fetch_with_quarantine,
)
from repro.storage.scheduler import cost_balance_window

__all__ = [
    "NNResult",
    "RangeResult",
    "KBest",
    "nearest_neighbors",
    "range_search",
    "browse_by_distance",
    "certain_mask",
    "checked_query",
    "checked_queries",
    "io_snapshot",
    "io_delta",
    "next_query_id",
    "locate_address",
    "raise_query_error",
]

#: Monotone query ids used to label QueryDataError context; shared with
#: the batch engine so every query on this process has a distinct id.
_QUERY_IDS = itertools.count(1)


def next_query_id() -> int:
    """Allocate a process-unique query id (error/trace context)."""
    return next(_QUERY_IDS)


def locate_address(tree, address: int) -> tuple[str | None, int | None]:
    """Map a disk address to ``(level_name, file-local block)``.

    Returns ``(None, None)`` when the address belongs to none of the
    tree's three level files (or the tree is mid-relayout).
    """
    for level, slot in (
        ("directory", "_dir_file"),
        ("quantized", "_quant_file"),
        ("exact", "_exact_file"),
    ):
        file = getattr(tree, slot, None)
        if file is None or not file.sealed:
            continue
        base = file.extent_start
        if base <= address < base + file.n_blocks:
            return level, address - base
    return None, None


def raise_query_error(exc: StorageError, tree, query_id: int):
    """Re-raise a mid-query storage failure as a QueryDataError.

    Keeps the original as ``__cause__`` and attaches query id, level
    name, and file-local block index so callers can tell data loss and
    corruption apart from API misuse (both are SearchError subclasses).
    """
    address = fault_address(exc)
    level = block = None
    if address is not None:
        level, block = locate_address(tree, address)
    where = f"the {level} level" if level else "index data"
    detail = f" (block {block})" if block is not None else ""
    raise QueryDataError(
        f"query {query_id} aborted: could not read {where}{detail}: {exc}",
        query_id=query_id,
        level=level,
        block=block,
    ) from exc

_PAGE = 0
_POINT = 1


@dataclass
class NNResult:
    """Result of a k-nearest-neighbor query.

    Attributes
    ----------
    ids:
        Point ids, ascending by distance, shape ``(k,)``.
    distances:
        Matching distances.
    io:
        Simulated-I/O delta of this query.
    pages_read:
        Number of quantized data pages processed.
    refinements:
        Number of third-level exact look-ups performed.
    certain:
        Per-result exactness mask aligned with ``ids`` (``None`` unless
        the query degraded).  ``certain[i]`` is False when result ``i``
        carries a quantization interval instead of an exact distance.
    intervals:
        For each uncertain result id, the ``(mindist, maxdist)`` cell
        interval that provably contains its true distance; the reported
        ``distances`` entry is the conservative ``maxdist``.
    lost_pages:
        :class:`~repro.storage.runtime_faults.LostPage` records for
        second-level pages the query could not read at all -- any of
        their points could have been an answer (recall bound).
    degraded:
        True when any fallback fired (``certain``/``intervals``/
        ``lost_pages`` carry the details).
    """

    ids: np.ndarray
    distances: np.ndarray
    io: IOStats
    pages_read: int
    refinements: int
    certain: np.ndarray | None = None
    intervals: dict[int, tuple[float, float]] | None = None
    lost_pages: tuple = ()
    degraded: bool = False


@dataclass
class RangeResult:
    """Result of a range query (all points within a radius).

    The degraded-mode fields mirror :class:`NNResult`; an uncertain
    range result is a *possible* member (its cell interval overlaps the
    radius) reported at its conservative ``maxdist``, which may exceed
    the radius.
    """

    ids: np.ndarray
    distances: np.ndarray
    io: IOStats
    pages_read: int
    refinements: int
    certain: np.ndarray | None = None
    intervals: dict[int, tuple[float, float]] | None = None
    lost_pages: tuple = ()
    degraded: bool = False


class KBest:
    """Fixed-size max-heap tracking the current k best candidates.

    Shared by the single-query searches here and by the batch query
    engine in :mod:`repro.engine`.
    """

    def __init__(self, k: int):
        self.k = k
        self._heap: list[tuple[float, int]] = []  # (-dist, id)

    def bound(self) -> float:
        """Current pruning distance (inf until k candidates exist)."""
        if len(self._heap) < self.k:
            return np.inf
        return -self._heap[0][0]

    def offer(self, dist: float, point_id: int) -> None:
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-dist, point_id))
        elif dist < -self._heap[0][0]:
            heapq.heapreplace(self._heap, (-dist, point_id))

    def offer_many(self, dists: np.ndarray, ids: np.ndarray) -> None:
        """Offer a whole candidate array (same result as offer() in a
        loop, including first-offered-wins tie behavior).

        Candidates that provably cannot enter the heap are dropped in
        one vectorized pass before the (now tiny) sequential offers:
        with ``n > k`` offered distances, anything above the k-th
        smallest *of this array* loses to k strictly smaller offers
        (replacement is strict ``<``), and once the heap is full,
        anything at or above the current bound is dead on arrival --
        and stays dead, because the bound never increases.
        """
        dists = np.asarray(dists, dtype=np.float64)
        ids = np.asarray(ids)
        if dists.size == 0:
            return
        keep = None
        if dists.size > self.k:
            kth = np.partition(dists, self.k - 1)[self.k - 1]
            keep = dists <= kth
        bound = self.bound()
        if np.isfinite(bound):
            below = dists < bound
            keep = below if keep is None else keep & below
        if keep is not None:
            dists = dists[keep]
            ids = ids[keep]
        for dist, pid in zip(dists, ids):
            self.offer(float(dist), int(pid))

    def sorted_results(self) -> tuple[np.ndarray, np.ndarray]:
        """Drain the heap into ``(ids, dists)`` ascending by
        ``(distance, id)`` -- one vectorized lexsort, no tuple rebuild."""
        if not self._heap:
            return np.empty(0, dtype=np.int64), np.empty(0)
        neg_dists, heap_ids = zip(*self._heap)
        dists = -np.asarray(neg_dists, dtype=np.float64)
        ids = np.asarray(heap_ids, dtype=np.int64)
        order = np.lexsort((ids, dists))
        return ids[order], dists[order]


def nearest_neighbors(
    tree: IQTree, query: np.ndarray, k: int = 1, scheduler: str = "optimized"
) -> NNResult:
    """Exact k-NN search on an IQ-tree.

    See the module docstring for the algorithm; ``scheduler`` selects the
    page-access strategy.  With a fault context attached
    (``tree.use_fault_tolerance()``), unreadable data degrades the
    result instead of aborting it; without one, any storage failure
    surfaces as :class:`~repro.exceptions.QueryDataError`.
    """
    if k < 1:
        raise SearchError("k must be at least 1")
    if scheduler not in ("optimized", "standard"):
        raise SearchError(f"unknown scheduler: {scheduler!r}")
    tree._ensure_clean()
    if k > tree.n_points:
        raise SearchError(f"k={k} exceeds the {tree.n_points} stored points")
    query = checked_query(tree, query)
    query_id = next_query_id()
    try:
        if tree._flight_recorder is not None:
            from repro.obs.flight import observe_single

            return observe_single(
                tree._flight_recorder, tree, "nearest", query_id,
                lambda: _nearest_impl(tree, query, k, scheduler),
            )
        return _nearest_impl(tree, query, k, scheduler)
    except StorageError as exc:
        raise_query_error(exc, tree, query_id)


def _nearest_impl(
    tree: IQTree, query: np.ndarray, k: int, scheduler: str
) -> NNResult:
    ctx = tree._fault_ctx
    io_before = io_snapshot(tree)
    tree._charge_directory_scan()

    metric = tree.metric
    page_mindists = mindist_to_boxes(
        query, tree._lowers, tree._uppers, metric
    )
    n_pages = tree.n_pages
    processed = np.zeros(n_pages, dtype=bool)
    best = KBest(k)
    exact = ExactStore(tree)
    pages_read = 0

    # Degraded-mode state; stays empty on the pristine path.
    intervals: dict[int, tuple[float, float]] = {}
    lost_pages: list[LostPage] = []
    handles_by_page: dict[int, PageHandle] = {}
    quarantined_local: set[int] = (
        set(ctx.quarantine.local_indices(tree._quant_file))
        if ctx is not None
        else set()
    )

    def lose_page(page: int) -> None:
        """Record a second-level page as unreadable (partition lost)."""
        processed[page] = True
        lost_pages.append(
            LostPage(
                page=int(page),
                n_points=int(tree._counts[page]),
                mindist=float(page_mindists[page]),
                maxdist=float(
                    maxdist_to_boxes(
                        query,
                        tree._lowers[page : page + 1],
                        tree._uppers[page : page + 1],
                        metric,
                    )[0]
                ),
            )
        )
        ctx.lost_pages += 1
        if REGISTRY.enabled:
            LOST_PAGES.inc()

    tie = itertools.count()
    heap: list[tuple] = [
        (float(page_mindists[i]), next(tie), _PAGE, i, 0)
        for i in range(n_pages)
    ]
    heapq.heapify(heap)

    while heap and heap[0][0] <= best.bound():
        dist, _t, kind, page, local = heapq.heappop(heap)
        if kind == _POINT:
            if ctx is None:
                coords, pid = exact.fetch(page, local)
                best.offer(metric.distance(query, coords), pid)
            else:
                _refine_degraded(
                    tree, ctx, exact, query, page, local,
                    best, intervals, handles_by_page,
                )
            continue
        if processed[page]:
            continue
        cached = tree._cached_handle(page)
        if cached is not None:
            # Decoded-cache hit: the pivot costs no I/O at all, so no
            # speculative window is planned around it.
            handles = [cached]
        elif ctx is None:
            if scheduler == "standard":
                handles = [tree._read_page(page)]
            else:
                handles = _read_window(
                    tree, query, page, page_mindists, processed,
                    best.bound(), k,
                )
        else:
            if page in quarantined_local:
                lose_page(page)
                continue
            handles = _load_pages_degraded(
                tree, ctx, query, page, page_mindists, processed,
                best.bound(), k, scheduler, quarantined_local, lose_page,
            )
        for handle in handles:
            processed[handle.index] = True
            pages_read += 1
            if ctx is not None and handle.codes is not None:
                handles_by_page[handle.index] = handle
            _process_page(tree, query, handle, best, heap, tie)

    ids, dists = best.sorted_results()
    degraded = bool(intervals or lost_pages)
    certain = None
    result_intervals = None
    if degraded:
        certain = _certain_mask(ids, intervals)
        result_intervals = {
            pid: intervals[pid] for pid in ids.tolist() if pid in intervals
        }
    io_after = io_snapshot(tree)
    result = NNResult(
        ids=ids,
        distances=dists,
        io=io_delta(io_before, io_after),
        pages_read=pages_read,
        refinements=exact.refinements,
        certain=certain,
        intervals=result_intervals,
        lost_pages=tuple(lost_pages),
        degraded=degraded,
    )
    if REGISTRY.enabled:
        QUERY_SECONDS.observe(result.io.elapsed)
        _DRIFT.observe_query(
            tree,
            k,
            actual_pages=result.pages_read,
            actual_seconds=result.io.elapsed,
        )
    return result


def range_search(tree: IQTree, query: np.ndarray, radius: float) -> RangeResult:
    """All points within ``radius`` of ``query``.

    The candidate page set is known up front (every page whose MBR
    mindist is within the radius), so the pages are fetched with the
    optimal batched strategy of Section 2.  A point whose cell maxdist
    is within the radius is a certain answer but is still refined --
    returning an answer means producing its exact record; a point whose
    cell straddles the radius is refined to decide.
    """
    if radius < 0:
        raise SearchError("radius must be non-negative")
    tree._ensure_clean()
    query = checked_query(tree, query)
    query_id = next_query_id()
    try:
        if tree._flight_recorder is not None:
            from repro.obs.flight import observe_single

            return observe_single(
                tree._flight_recorder, tree, "range", query_id,
                lambda: _range_impl(tree, query, radius),
            )
        return _range_impl(tree, query, radius)
    except StorageError as exc:
        raise_query_error(exc, tree, query_id)


def _range_impl(tree: IQTree, query: np.ndarray, radius: float) -> RangeResult:
    ctx = tree._fault_ctx
    io_before = io_snapshot(tree)
    tree._charge_directory_scan()
    metric = tree.metric
    page_mindists = mindist_to_boxes(
        query, tree._lowers, tree._uppers, metric
    )
    candidates = np.flatnonzero(page_mindists <= radius)
    exact = ExactStore(tree)
    id_runs: list[np.ndarray] = []
    dist_runs: list[np.ndarray] = []
    intervals: dict[int, tuple[float, float]] = {}
    lost_pages: list[LostPage] = []
    pages_read = 0

    # Pages resident in the decoded cache need no fetch at all; only
    # the rest go into the batched transfer.
    cached_handles: dict[int, PageHandle] = {}
    to_fetch: list[int] = []
    for page in candidates.tolist():
        handle = tree._cached_handle(page)
        if handle is not None:
            cached_handles[page] = handle
        else:
            to_fetch.append(page)

    if ctx is None:
        payloads = tree._quant_file.read_batched(to_fetch)
    else:
        payloads, lost_local = fetch_with_quarantine(
            tree._quant_file, tree.disk, ctx, to_fetch
        )
        for page in lost_local:
            # Membership of every point in the page is unknowable;
            # maxdist is irrelevant for a radius predicate.
            lost_pages.append(
                LostPage(
                    page=int(page),
                    n_points=int(tree._counts[page]),
                    mindist=float(page_mindists[page]),
                    maxdist=float("inf"),
                )
            )
            ctx.lost_pages += 1
            if REGISTRY.enabled:
                LOST_PAGES.inc()
    for page in candidates.tolist():
        handle = cached_handles.get(page)
        if handle is None:
            if page not in payloads:
                continue  # lost page, reported above
            handle = tree._decode_page_payload(page, payloads[page])
        pages_read += 1
        if handle.points is not None:
            dists = metric.distances(query, handle.points)
            inside = dists <= radius
            id_runs.append(handle.ids[inside].astype(np.int64, copy=False))
            dist_runs.append(dists[inside].astype(np.float64, copy=False))
            continue
        quantizer = tree._codec_view(page, handle)
        lower_b = quantizer.cell_mindist(query, handle.codes, metric)
        upper_b = None
        page_ids: list[int] = []
        page_dists: list[float] = []
        for local in np.flatnonzero(lower_b <= radius):
            if ctx is None:
                coords, pid = exact.fetch(page, int(local))
            else:
                try:
                    coords, pid = exact.fetch(page, int(local))
                except (ReadFaultError, IntegrityError) as exc:
                    if fault_address(exc) is None:
                        raise
                    if upper_b is None:
                        upper_b = quantizer.cell_maxdist(
                            query, handle.codes, metric
                        )
                    # Possible member: cell overlaps the radius but the
                    # exact record is gone.  Include it flagged
                    # uncertain at the conservative maxdist.
                    pid = int(tree._part_ids[page][local])
                    lo = float(lower_b[local])
                    hi = float(upper_b[local])
                    page_ids.append(pid)
                    page_dists.append(hi)
                    intervals[pid] = (lo, hi)
                    ctx.degraded_results += 1
                    if REGISTRY.enabled:
                        DEGRADED_RESULTS.inc()
                    continue
            dist = metric.distance(query, coords)
            if dist <= radius:
                page_ids.append(pid)
                page_dists.append(dist)
        if page_ids:
            id_runs.append(np.array(page_ids, dtype=np.int64))
            dist_runs.append(np.array(page_dists, dtype=np.float64))

    if id_runs:
        found_ids = np.concatenate(id_runs)
        found_dists = np.concatenate(dist_runs)
    else:
        found_ids = np.empty(0, dtype=np.int64)
        found_dists = np.empty(0)
    order = np.argsort(found_dists, kind="stable")
    ids_sorted = found_ids[order]
    degraded = bool(intervals or lost_pages)
    certain = None
    result_intervals = None
    if degraded:
        certain = certain_mask(ids_sorted, intervals)
        result_intervals = dict(intervals)
    io_after = io_snapshot(tree)
    result = RangeResult(
        ids=ids_sorted,
        distances=found_dists[order],
        io=io_delta(io_before, io_after),
        pages_read=pages_read,
        refinements=exact.refinements,
        certain=certain,
        intervals=result_intervals,
        lost_pages=tuple(lost_pages),
        degraded=degraded,
    )
    if REGISTRY.enabled:
        # The cost model predicts kNN queries only, so range queries
        # feed the latency histogram but not the drift monitor.
        QUERY_SECONDS.observe(result.io.elapsed)
    return result


def browse_by_distance(tree: IQTree, query: np.ndarray):
    """Incremental distance browsing (Hjaltason-Samet ranking).

    Yields ``(point_id, distance)`` pairs in ascending distance order,
    lazily: pages are loaded and points refined only as far as the
    consumer iterates, so taking the first k results does no more I/O
    than a k-NN query with an unknown k.  This is the natural API for
    "give me neighbors until I say stop" workloads; the paper's k-NN
    algorithm is the bounded special case.

    Uses the standard (one random read per pivot page) access strategy:
    speculative pre-reading needs a pruning bound, and an open-ended
    ranking has none.  Browsing has no degraded mode (an open-ended
    ranking cannot bound what a lost page would have contributed); any
    storage failure surfaces as
    :class:`~repro.exceptions.QueryDataError`.
    """
    query_id = next_query_id()
    try:
        yield from _browse_impl(tree, query)
    except StorageError as exc:
        raise_query_error(exc, tree, query_id)


def _browse_impl(tree: IQTree, query: np.ndarray):
    tree._ensure_clean()
    query = checked_query(tree, query)
    tree._charge_directory_scan()
    metric = tree.metric
    page_mindists = mindist_to_boxes(
        query, tree._lowers, tree._uppers, metric
    )
    exact = ExactStore(tree)
    tie = itertools.count()
    # Entry kinds: _PAGE (load + expand), _POINT (refine), _RESULT
    # (already-exact distance, ready to emit).
    result_kind = 2
    heap: list[tuple] = [
        (float(page_mindists[i]), next(tie), _PAGE, i, 0)
        for i in range(tree.n_pages)
    ]
    heapq.heapify(heap)
    while heap:
        dist, _t, kind, page, local = heapq.heappop(heap)
        if kind == result_kind:
            yield int(page), float(dist)  # page slot holds the id here
            continue
        if kind == _POINT:
            coords, pid = exact.fetch(page, local)
            true = metric.distance(query, coords)
            heapq.heappush(heap, (true, next(tie), result_kind, pid, 0))
            continue
        handle = tree._read_page(page)
        if handle.points is not None:
            dists = metric.distances(query, handle.points)
            for pid, true in zip(handle.ids, dists):
                heapq.heappush(
                    heap, (float(true), next(tie), result_kind, int(pid), 0)
                )
            continue
        quantizer = tree._codec_view(page, handle)
        lower_b = quantizer.cell_mindist(query, handle.codes, metric)
        for local_idx, lb in enumerate(lower_b):
            heapq.heappush(
                heap, (float(lb), next(tie), _POINT, page, local_idx)
            )


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _process_page(tree, query, handle: PageHandle, best, heap, tie) -> None:
    """Decode one page: exact pages update the result directly, coarser
    pages push their cells' box approximations into the priority list."""
    metric = tree.metric
    if handle.points is not None:
        dists = metric.distances(query, handle.points)
        best.offer_many(dists, handle.ids)
        return
    quantizer = tree._codec_view(handle.index, handle)
    lower_b = quantizer.cell_mindist(query, handle.codes, metric)
    bound = best.bound()
    for local in np.flatnonzero(lower_b <= bound):
        heapq.heappush(
            heap,
            (float(lower_b[local]), next(tie), _POINT, handle.index, int(local)),
        )


def _plan_window(
    tree: IQTree,
    query: np.ndarray,
    pivot: int,
    page_mindists: np.ndarray,
    processed: np.ndarray,
    bound: float,
    k: int,
    forbidden: frozenset[int] = frozenset(),
) -> tuple[int, int, list[int]]:
    """Plan the cost-balance window around a pivot (Section 2.1).

    Builds the pending-page snapshot, evaluates access probabilities for
    file-order neighbors of the pivot, and extends the transfer while
    the cumulated cost balance stays favorable.  ``forbidden`` blocks
    (quarantined pages) stop the speculative scan.  Returns ``(first,
    last, to_process)``.
    """
    n_pages = tree.n_pages
    pending = ~processed
    if np.isfinite(bound):
        pending &= page_mindists <= bound
    pending[pivot] = True
    pending_idx = np.flatnonzero(pending)
    snapshot_of = np.full(n_pages, -1, dtype=np.int64)
    snapshot_of[pending_idx] = np.arange(pending_idx.size)
    view = PageView(
        lowers=tree._lowers[pending_idx],
        uppers=tree._uppers[pending_idx],
        counts=tree._counts[pending_idx].astype(np.float64),
        mindists=page_mindists[pending_idx],
    )

    def probability(block: int) -> float:
        snap = snapshot_of[block]
        if snap < 0:
            return 0.0
        return float(
            access_probabilities(
                query, view, np.array([snap]), metric=tree.metric, k=k
            )[0]
        )

    first, last = cost_balance_window(
        pivot, n_pages, probability, tree.disk.model, forbidden=forbidden
    )
    to_process = [
        j for j in range(first, last + 1) if not processed[j] and pending[j]
    ]
    return first, last, to_process


def _read_window(
    tree: IQTree,
    query: np.ndarray,
    pivot: int,
    page_mindists: np.ndarray,
    processed: np.ndarray,
    bound: float,
    k: int = 1,
) -> list[PageHandle]:
    """Plan and execute one cost-balance page fetch (pristine path)."""
    first, last, to_process = _plan_window(
        tree, query, pivot, page_mindists, processed, bound, k
    )
    payloads = tree._read_page_run(first, last, wanted=len(to_process))
    return [
        tree._decode_page_payload(j, payloads[j - first])
        for j in to_process
    ]


def _load_pages_degraded(
    tree: IQTree,
    ctx,
    query: np.ndarray,
    pivot: int,
    page_mindists: np.ndarray,
    processed: np.ndarray,
    bound: float,
    k: int,
    scheduler: str,
    quarantined_local: set[int],
    lose_page,
) -> list[PageHandle]:
    """Load a pivot's pages under the fault context.

    The optimized scheduler first tries the planned sequential window
    (quarantined pages already split it); if the transfer itself faults
    out its retries, the wanted pages are re-read one by one so a single
    dead block costs exactly one partition, not the whole window.
    Unreadable pages are reported through ``lose_page`` and
    ``quarantined_local`` is kept in sync with the context's quarantine.
    """
    if scheduler == "standard":
        to_process = [pivot]
    else:
        first, last, to_process = _plan_window(
            tree, query, pivot, page_mindists, processed, bound, k,
            forbidden=frozenset(quarantined_local),
        )
        try:
            payloads = ctx.run(
                lambda: tree._read_page_run(
                    first, last, wanted=len(to_process)
                ),
                tree.disk,
            )
            return [
                tree._decode_page_payload(j, payloads[j - first])
                for j in to_process
            ]
        except (ReadFaultError, IntegrityError) as exc:
            if fault_address(exc) is None:
                raise
            quarantined_local.update(
                ctx.quarantine.local_indices(tree._quant_file)
            )
    handles: list[PageHandle] = []
    for j in to_process:
        if j in quarantined_local:
            lose_page(j)
            continue
        try:
            handles.append(
                ctx.run(lambda j=j: tree._read_page(j), tree.disk)
            )
        except (ReadFaultError, IntegrityError) as exc:
            if fault_address(exc) is None:
                raise
            quarantined_local.update(
                ctx.quarantine.local_indices(tree._quant_file)
            )
            lose_page(j)
    return handles


def _refine_degraded(
    tree: IQTree,
    ctx,
    exact: ExactStore,
    query: np.ndarray,
    page: int,
    local: int,
    best: "KBest",
    intervals: dict[int, tuple[float, float]],
    handles_by_page: dict[int, PageHandle],
) -> None:
    """Refine one point, falling back to its cell interval on failure.

    The fallback offers the point at its cell *maxdist* -- a sound upper
    bound on the true distance, so KBest pruning stays conservative --
    and records the full ``[mindist, maxdist]`` interval, which provably
    contains the exact distance (grid-cell containment, paper Section
    3.2).
    """
    metric = tree.metric
    try:
        coords, pid = exact.fetch(page, local)
    except (ReadFaultError, IntegrityError) as exc:
        if fault_address(exc) is None:
            raise
        handle = handles_by_page[page]
        quantizer = tree._codec_view(page, handle)
        code = handle.codes[local : local + 1]
        lo = float(quantizer.cell_mindist(query, code, metric)[0])
        hi = float(quantizer.cell_maxdist(query, code, metric)[0])
        pid = int(tree._part_ids[page][local])
        best.offer(hi, pid)
        intervals[pid] = (lo, hi)
        ctx.degraded_results += 1
        if REGISTRY.enabled:
            DEGRADED_RESULTS.inc()
        return
    best.offer(metric.distance(query, coords), pid)


def certain_mask(
    ids: np.ndarray, intervals: dict[int, tuple[float, float]]
) -> np.ndarray:
    """Exactness mask aligned with ``ids``: False where the id carries
    a quantization interval.  One vectorized membership test instead of
    a per-result Python dict probe."""
    if not intervals:
        return np.ones(ids.size, dtype=bool)
    uncertain = np.fromiter(
        intervals.keys(), dtype=np.int64, count=len(intervals)
    )
    return ~np.isin(ids, uncertain)


_certain_mask = certain_mask


def checked_query(tree: IQTree, query) -> np.ndarray:
    """Validate a query point: right shape, finite coordinates."""
    query = np.asarray(query, dtype=np.float64)
    if query.shape != (tree.dim,):
        raise SearchError(
            f"query must have shape ({tree.dim},), got {query.shape}"
        )
    if not np.all(np.isfinite(query)):
        raise SearchError("query coordinates must be finite")
    return query


def checked_queries(tree: IQTree, queries) -> np.ndarray:
    """Validate a batch of query points, shape ``(q, d)``."""
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != tree.dim:
        raise SearchError(
            f"queries must have shape (q, {tree.dim}), "
            f"got {queries.shape}"
        )
    if not np.all(np.isfinite(queries)):
        raise SearchError("query coordinates must be finite")
    return queries


def io_snapshot(tree: IQTree) -> IOStats:
    """Copy of the tree's disk ledger (for before/after deltas)."""
    s = tree.disk.stats
    return IOStats(
        seeks=s.seeks,
        blocks_read=s.blocks_read,
        blocks_overread=s.blocks_overread,
        elapsed=s.elapsed,
    )


def io_delta(before: IOStats, after: IOStats) -> IOStats:
    """Ledger difference ``after - before``."""
    return IOStats(
        seeks=after.seeks - before.seeks,
        blocks_read=after.blocks_read - before.blocks_read,
        blocks_overread=after.blocks_overread - before.blocks_overread,
        elapsed=after.elapsed - before.elapsed,
    )
