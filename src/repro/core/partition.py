"""In-memory partitions used during construction and optimization.

A :class:`Partition` is a subset of the data set (an index array) plus
the MBR of those points.  Partitions never copy point coordinates; they
reference rows of the build-time data array, so splitting is cheap.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BuildError
from repro.costmodel.model import PartitionStats
from repro.geometry.mbr import MBR
from repro.quantization.capacity import max_bits_for_count

__all__ = ["Partition"]


class Partition:
    """A contiguous region of the data space with its member points.

    Parameters
    ----------
    indices:
        Row indices into the build-time data array (``int64``).
    mbr:
        Minimum bounding rectangle of those rows.
    """

    __slots__ = ("indices", "mbr")

    def __init__(self, indices: np.ndarray, mbr: MBR):
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1 or indices.size == 0:
            raise BuildError("a partition needs a non-empty index array")
        self.indices = indices
        self.mbr = mbr

    @classmethod
    def of(cls, data: np.ndarray, indices: np.ndarray) -> "Partition":
        """Build a partition with the tight MBR of ``data[indices]``."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise BuildError("a partition needs at least one point")
        return cls(indices, MBR.of_points(data[indices]))

    @property
    def size(self) -> int:
        """Number of points in the partition."""
        return int(self.indices.size)

    def points(self, data: np.ndarray) -> np.ndarray:
        """The member points as a ``(m, d)`` view/copy of ``data``."""
        return data[self.indices]

    def storable_bits(self, block_size: int) -> int:
        """Finest bits/dim at which the partition fits one page (0: none)."""
        return max_bits_for_count(block_size, self.mbr.dim, self.size)

    def stats(self, block_size: int) -> PartitionStats:
        """Cost-model summary at the partition's finest storable bits.

        Raises :class:`BuildError` if the partition does not fit a page
        even at 1 bit/dim (it must be split before it can be costed).
        """
        bits = self.storable_bits(block_size)
        if bits == 0:
            raise BuildError(
                f"partition of {self.size} points does not fit a page"
            )
        return PartitionStats(
            m=self.size,
            side_lengths=tuple(self.mbr.extents.tolist()),
            bits=bits,
        )

    def __repr__(self) -> str:
        return f"Partition(size={self.size}, mbr={self.mbr!r})"
