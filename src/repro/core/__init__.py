"""The IQ-tree: the paper's primary contribution.

Modules:

* :mod:`repro.core.partition` -- in-memory partitions (point index sets
  plus MBR) and their cost-model summaries.
* :mod:`repro.core.split` -- the split heuristic (longest MBR dimension,
  median position) shared by construction and the optimizer.
* :mod:`repro.core.build` -- top-down bulk-load into 1-bit partitions.
* :mod:`repro.core.optimizer` -- the optimal-quantization split-tree
  algorithm of Section 3.5.
* :mod:`repro.core.tree` -- the three-level on-"disk" structure and its
  public query API (:class:`~repro.core.tree.IQTree`).
* :mod:`repro.core.search` -- nearest-neighbor and range search with the
  standard and the time-optimized page-access strategies.
* :mod:`repro.core.maintenance` -- dynamic insert/delete (Section 6).
"""

from repro.core.tree import IQTree
from repro.core.partition import Partition
from repro.core.build import bulk_load_partitions
from repro.core.optimizer import OptimizedPartition, optimize_partitions

__all__ = [
    "IQTree",
    "Partition",
    "bulk_load_partitions",
    "OptimizedPartition",
    "optimize_partitions",
]
