"""Dynamic maintenance of an IQ-tree (paper Section 6).

Inserts and deletes mutate the in-memory partition list; the three
on-"disk" files are re-laid-out lazily before the next query (the files
are rebuilt in full -- acceptable for a simulator, and it keeps every
extent contiguous).  Maintenance operations themselves are *layout
free*: a burst of inserts and deletes never rebuilds the files between
operations (page targeting reads MBRs straight from the partition list
while the tree is dirty), so replaying a journal of N operations costs
one re-layout at the first query, not N.

The interesting decision the paper highlights is the overflow case:
when a page can no longer hold its points at the current resolution,
the tree either *splits* the page (one more page, finer quantization)
or *re-quantizes it coarser* (same page count, more refinement
look-ups).  The choice is made by comparing the cost model's estimate
of both outcomes, exactly as the optimizer would.

:class:`MaintenanceManager` closes the loop the paper leaves manual:
it tracks which pages have drifted from their optimized quantization
(structural edits leave new partition objects; the cost-model drift
monitor flags global model error) and re-runs the greedy
split/rollback optimizer on just those pages in a background sweep.
Bits-only improvements are swapped in place via
:meth:`~repro.storage.blockfile.BlockFile.replace_block` under the
tree's write lock; splits and exact-level transitions fall back to an
epoch-guarded full re-layout.  Re-quantization never changes query
*answers* (the index is exact with respect to its stored data), only
query *cost* -- which is what makes concurrent sweeps safe to verify
bit-for-bit against a sweep-free baseline.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass

import numpy as np

from repro.exceptions import BuildError, SearchError
from repro.core.build import bulk_load_partitions
from repro.core.optimizer import (
    OptimizedPartition,
    choose_codecs,
    optimize_partitions,
)
from repro.core.partition import Partition
from repro.core.split import split_partition
from repro.core.tree import IQTree, canonicalize
from repro.obs.instruments import (
    MAINT_DIRTY,
    MAINT_REQUANTIZED,
    MAINT_RESTRUCTURED,
    MAINT_SWEEPS,
    REGISTRY,
)
from repro.obs.tracing import span
from repro.quantization.capacity import EXACT_BITS, max_bits_for_count

__all__ = [
    "insert_point",
    "delete_point",
    "locate_point",
    "reoptimize",
    "MaintenanceManager",
    "MaintenanceLoop",
    "SweepReport",
]


def insert_point(tree: IQTree, point: np.ndarray) -> int:
    """Insert one point; returns its assigned id.

    The target page is the one whose MBR needs the least volume
    enlargement (ties: the smaller page).  If the page overflows its
    current quantization level, the split-vs-coarser decision described
    in Section 6 is made with the cost model.
    """
    point = canonicalize(np.asarray(point, dtype=np.float64).reshape(1, -1))
    if point.shape[1] != tree.dim:
        raise SearchError(
            f"point must have {tree.dim} dimensions, got {point.shape[1]}"
        )
    new_id = tree._points.shape[0]
    grown_points = np.vstack([tree._points, point])
    target = _least_enlargement_page(tree, point[0])
    opt = tree._partitions[target]
    part = opt.partition
    indices = np.append(part.indices, new_id)
    mbr = part.mbr.extended_by_point(point[0])
    grown = Partition(indices, mbr)
    block_size = tree.disk.model.block_size
    finest = max_bits_for_count(block_size, tree.dim, grown.size)

    # Resolve the overflow decision fully before mutating the tree, so
    # a BuildError (e.g. an unsplittable overflowing page) leaves it
    # exactly as it was -- point list, partitions, and clean layout.
    if finest >= opt.bits:
        # Still fits at the current resolution: update in place.
        replacement = [OptimizedPartition(grown, opt.bits)]
    elif finest >= 1 and _coarser_beats_split(tree, grown, finest, grown_points):
        replacement = [OptimizedPartition(grown, finest)]
    else:
        left, right = split_partition(grown_points, grown)
        replacement = [_sized(tree, left), _sized(tree, right)]
    tree._points = grown_points
    tree._partitions[target : target + 1] = replacement
    tree._dirty = True
    return new_id


def locate_point(tree: IQTree, point_id: int) -> int | None:
    """Partition index currently holding ``point_id``, or ``None``.

    On a clean tree this is the id map built by the last layout; on a
    dirty tree (mid-burst maintenance) it scans the partition list
    instead of forcing a full file re-layout just to answer a lookup.
    """
    point_id = int(point_id)
    if not tree._dirty:
        return tree._id_to_partition.get(point_id)
    for j, opt in enumerate(tree._partitions):
        if np.any(opt.partition.indices == point_id):
            return j
    return None


def delete_point(tree: IQTree, point_id: int) -> None:
    """Delete a point by id.

    The containing page shrinks (its MBR is re-tightened); an emptied
    page is removed.  The page keeps its quantization level -- the next
    :func:`reoptimize` or maintenance sweep reconsiders it.  Layout
    free: deleting from a dirty tree does not rebuild the files first.
    """
    target = locate_point(tree, point_id)
    if target is None:
        raise SearchError(f"unknown point id: {point_id}")
    opt = tree._partitions[target]
    keep = opt.partition.indices != point_id
    if not np.any(keep):
        if len(tree._partitions) == 1:
            raise BuildError("cannot delete the last point of the index")
        del tree._partitions[target]
    else:
        remaining = opt.partition.indices[keep]
        part = Partition.of(tree._points, remaining)
        tree._partitions[target] = OptimizedPartition(part, opt.bits)
    tree._dirty = True


def reoptimize(tree: IQTree) -> None:
    """Rebuild the partitioning and quantization from scratch.

    Compacts deleted ids away (ids are *not* preserved across a
    reoptimize; the canonical data array is re-indexed).
    """
    live = sorted(
        int(i)
        for opt in tree._partitions
        for i in opt.partition.indices
    )
    data = tree._points[live]
    block_size = tree.disk.model.block_size
    initial = bulk_load_partitions(data, block_size)
    solution, trace = optimize_partitions(
        data, initial, tree.cost_model, block_size
    )
    tree._points = data
    tree._partitions = list(solution)
    tree.trace = trace
    tree._dirty = True


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _page_bounds(tree: IQTree) -> tuple[np.ndarray, np.ndarray]:
    """Per-page MBR bounds without forcing a re-layout.

    A clean tree serves the decoded directory arrays; a dirty one
    assembles the same values from the partition list (identical
    float64 values: every coordinate is float32-canonical, so the
    directory's float32 round trip is lossless).
    """
    if not tree._dirty:
        return tree._lowers, tree._uppers
    n_parts = len(tree._partitions)
    lowers = np.empty((n_parts, tree.dim))
    uppers = np.empty((n_parts, tree.dim))
    for j, opt in enumerate(tree._partitions):
        lowers[j] = opt.partition.mbr.lower
        uppers[j] = opt.partition.mbr.upper
    return lowers, uppers


def _least_enlargement_page(tree: IQTree, point: np.ndarray) -> int:
    """Index of the page whose MBR grows the least to admit ``point``."""
    page_lowers, page_uppers = _page_bounds(tree)
    lowers = np.minimum(page_lowers, point)
    uppers = np.maximum(page_uppers, point)
    new_vol = np.prod(uppers - lowers, axis=1)
    old_vol = np.prod(page_uppers - page_lowers, axis=1)
    enlargement = new_vol - old_vol
    # Tie-break on the smaller resulting volume, then lower index.
    order = np.lexsort((new_vol, enlargement))
    return int(order[0])


def _sized(tree: IQTree, part: Partition) -> OptimizedPartition:
    bits = max_bits_for_count(
        tree.disk.model.block_size, tree.dim, part.size
    )
    if bits == 0:
        raise BuildError("split produced an oversized partition")
    return OptimizedPartition(part, bits)


def _coarser_beats_split(
    tree: IQTree, grown: Partition, coarser_bits: int, points: np.ndarray
) -> bool:
    """Cost-model comparison of the two overflow resolutions.

    ``points`` is the candidate data array including the pending point
    (the tree's own array is not yet updated at decision time).
    """
    model = tree.cost_model
    block_size = tree.disk.model.block_size
    n_pages = len(tree._partitions)

    from repro.costmodel.model import PartitionStats

    coarse_stats = PartitionStats(
        m=grown.size,
        side_lengths=tuple(grown.mbr.extents.tolist()),
        bits=coarser_bits,
    )
    coarse_refine = model.refinement_cost(coarse_stats)
    coarse_total = model.total_from_aggregates(n_pages, coarse_refine)

    left, right = split_partition(points, grown)
    split_refine = model.refinement_cost(
        left.stats(block_size)
    ) + model.refinement_cost(right.stats(block_size))
    split_total = model.total_from_aggregates(n_pages + 1, split_refine)
    # Only the changed page's refinement cost differs between the two
    # candidates, so comparing these partial totals is exact.
    return coarse_total <= split_total


# ----------------------------------------------------------------------
# Drift-triggered background re-quantization
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepReport:
    """Outcome of one maintenance sweep."""

    #: page indices (pre-sweep numbering) the sweep considered dirty
    dirty: tuple[int, ...]
    #: pages whose quantization was rewritten in place (bits change)
    requantized: int
    #: dirty pages that forced a structural re-layout (split, exact
    #: transition, or a quarantined block address)
    restructured: int

    @property
    def noop(self) -> bool:
        return not self.dirty


class MaintenanceManager:
    """Tracks drifted pages and re-optimizes them in background sweeps.

    Dirty tracking is by partition identity: every structural edit
    (:func:`insert_point`, :func:`delete_point`) replaces the touched
    :class:`~repro.core.optimizer.OptimizedPartition` objects, so a
    page is *clean* exactly when its partition object was blessed by
    the last sweep (or by construction with ``baseline="current"``).
    :meth:`observe_drift` feeds in a cost-model drift report (PR 3's
    monitor): when the model's page-access predictions are off by more
    than ``drift_ratio - 1`` relative error, the next sweep re-examines
    *every* page for a suboptimal stored resolution, not just the
    structurally edited ones.

    :meth:`sweep` runs under the tree's write lock: it re-runs the
    greedy split/rollback optimizer on each dirty page (with the rest
    of the tree contributing the constant cost via ``page_offset``),
    swaps bits-only improvements in place through ``replace_block``,
    and folds structural changes into one epoch-guarded re-layout at
    the end.  Sweeps never change query answers, only query cost, and
    they never write to a quarantined block address -- a dirty page
    whose block is quarantined is healed structurally, onto a fresh
    extent.
    """

    def __init__(
        self,
        tree: IQTree,
        *,
        drift_ratio: float = 1.25,
        baseline: str = "current",
    ):
        if drift_ratio <= 1.0:
            raise BuildError("drift_ratio must be > 1")
        self.tree = tree
        self.drift_ratio = float(drift_ratio)
        self._clean: "weakref.WeakSet" = weakref.WeakSet()
        self._drift_flagged = False
        if baseline == "current":
            self.mark_clean()
        elif baseline != "none":
            raise BuildError("baseline must be 'current' or 'none'")

    def mark_clean(self) -> None:
        """Bless every current partition as optimally quantized."""
        self._clean = weakref.WeakSet(self.tree._partitions)

    def observe_drift(self, report) -> bool:
        """Feed a :class:`~repro.obs.drift.DriftReport`; returns whether
        it pushed the manager over the drift threshold."""
        if report.count == 0:
            return False
        if report.page_error_p50 > self.drift_ratio - 1.0:
            self._drift_flagged = True
        return self._drift_flagged

    def dirty_pages(self) -> list[int]:
        """Pages the next sweep would re-optimize (ascending order)."""
        tree = self.tree
        block_size = tree.disk.model.block_size
        dirty: list[int] = []
        for j, opt in enumerate(tree._partitions):
            if opt not in self._clean:
                dirty.append(j)
            elif self._drift_flagged:
                storable = opt.partition.storable_bits(block_size)
                if opt.bits < min(storable, EXACT_BITS) or (
                    storable >= EXACT_BITS and opt.bits < EXACT_BITS
                ):
                    dirty.append(j)
        return dirty

    def maybe_sweep(self) -> SweepReport:
        """Sweep only if something is dirty (cheap to call in a loop)."""
        with self.tree._write_lock:
            if not self.dirty_pages():
                return SweepReport((), 0, 0)
            return self.sweep()

    def sweep(self) -> SweepReport:
        """Re-optimize every dirty page under the tree's write lock.

        A failing sweep (storage fault, optimizer error) is recorded in
        the tree's flight recorder (reason ``faulted``) and re-raised;
        the tree itself is left consistent -- in-place swaps are atomic
        per page and the structural path re-lays-out from the partition
        list, which is never left half-edited.
        """
        tree = self.tree
        with tree._write_lock:
            tree._ensure_clean()
            dirty = self.dirty_pages()
            if REGISTRY.enabled:
                MAINT_DIRTY.set(len(dirty))
            if not dirty:
                self._drift_flagged = False
                if REGISTRY.enabled:
                    MAINT_SWEEPS.inc(outcome="noop")
                return SweepReport((), 0, 0)
            try:
                with span(
                    "maintenance-sweep", disk=tree.disk, pages=len(dirty)
                ):
                    report = self._sweep_locked(dirty)
            except Exception as exc:
                if REGISTRY.enabled:
                    MAINT_SWEEPS.inc(outcome="error")
                recorder = tree._flight_recorder
                if recorder is not None:
                    recorder.record(
                        "maintenance",
                        -1,
                        ("faulted",),
                        0.0,
                        {"dirty_pages": len(dirty)},
                        detail={
                            "error": f"{type(exc).__name__}: {exc}"
                        },
                    )
                raise
            self._drift_flagged = False
            if REGISTRY.enabled:
                MAINT_SWEEPS.inc(outcome="ok")
            return report

    # ------------------------------------------------------------------
    # Internals (write lock held)
    # ------------------------------------------------------------------
    def _sweep_locked(self, dirty: list[int]) -> SweepReport:
        tree = self.tree
        model = tree.cost_model
        block_size = tree.disk.model.block_size
        ctx = tree._fault_ctx
        requantized = restructured = 0
        structural = False
        # Descending page order: structural splices at page j only
        # renumber pages > j, which were already handled, so in-place
        # block indices for the remaining (smaller) pages stay valid.
        for j in sorted(dirty, reverse=True):
            old = tree._partitions[j]
            solution, _ = optimize_partitions(
                tree._points,
                [old.partition],
                model,
                block_size,
                page_offset=len(tree._partitions) - 1,
            )
            # Re-encodes respect the tree-wide codec policy: the sweep
            # re-runs codec selection on the fresh grid solution, so a
            # "pq"/"auto" tree keeps (or regains) its PQ pages and a
            # "grid" tree never grows one.
            solution = choose_codecs(
                tree._points,
                solution,
                model,
                block_size,
                mode=tree.codec_mode,
            )
            if len(solution) == 1 and (
                solution[0].partition is old.partition
            ):
                new = solution[0]
                if (
                    new.bits == old.bits
                    and new.codec == old.codec
                    and new.pq_bits == old.pq_bits
                    and new.pq_sub == old.pq_sub
                ):
                    self._clean.add(old)
                    continue
                quarantined = (
                    ctx is not None
                    and not tree._dirty
                    and tree._quant_file.extent_start + j
                    in ctx.quarantine
                )
                if (
                    old.bits < EXACT_BITS
                    and new.bits < EXACT_BITS
                    and not quarantined
                ):
                    self._replace_page(j, new)
                    requantized += 1
                    self._clean.add(new)
                    continue
            # Split, exact-level transition, or quarantined address:
            # splice the new partitions in and re-layout once at the
            # end, onto fresh extents.
            tree._partitions[j : j + 1] = list(solution)
            for new in solution:
                self._clean.add(new)
            structural = True
            restructured += 1
            if REGISTRY.enabled:
                MAINT_RESTRUCTURED.inc()
        if structural:
            tree._dirty = True
            tree._ensure_clean()
        return SweepReport(tuple(sorted(dirty)), requantized, restructured)

    def _replace_page(self, page: int, new: OptimizedPartition) -> None:
        """In-place swap of one quantized page (same extent address)."""
        from repro.quantization.codecs import CODEC_PQ
        from repro.quantization.grid import GridQuantizer
        from repro.storage import serializer

        tree = self.tree
        part = new.partition
        pts = part.points(tree._points)
        if new.codec == CODEC_PQ:
            payload = serializer.encode_pq_page(
                pts,
                new.pq_bits,
                new.pq_sub,
                tree.disk.model.block_size,
            )
        else:
            quantizer = GridQuantizer(part.mbr, new.bits)
            payload = serializer.encode_quantized_page(
                quantizer.encode(pts),
                new.bits,
                tree.disk.model.block_size,
            )
        # CachedBlockFile.replace_block drops the pool resident; the
        # CRC sidecar catches any decoded-page cache entry, but evict
        # it eagerly rather than on the next (failed) validation.
        tree._quant_file.replace_block(page, payload)
        tree._partitions[page] = new
        tree._bits[page] = new.bits
        if tree._decoded_cache is not None:
            tree._decoded_cache.invalidate(page)
        tree.epoch += 1
        if REGISTRY.enabled:
            MAINT_REQUANTIZED.inc()


class MaintenanceLoop:
    """Background thread running :meth:`MaintenanceManager.maybe_sweep`.

    The loop wakes every ``interval`` seconds; each sweep serializes
    against queries through the tree's write lock, so concurrent
    batches (serial, process-backed, sharded) observe either the
    pre-sweep or the post-sweep index, never a torn one.  Errors stop
    the loop and are re-raised by :meth:`stop` (and recorded in the
    flight recorder by the manager).
    """

    def __init__(self, manager: MaintenanceManager, interval: float = 0.02):
        self.manager = manager
        self.interval = float(interval)
        self.sweeps = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None

    def start(self) -> "MaintenanceLoop":
        if self._thread is not None:
            raise BuildError("maintenance loop already started")
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                report = self.manager.maybe_sweep()
            except BaseException as exc:  # noqa: BLE001 -- surfaced in stop()
                self._error = exc
                return
            if not report.noop:
                self.sweeps += 1
            self._stop.wait(self.interval)

    def stop(self) -> int:
        """Stop the thread; returns the number of non-noop sweeps."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self._error is not None:
            error, self._error = self._error, None
            raise error
        return self.sweeps

    def __enter__(self) -> "MaintenanceLoop":
        return self.start()

    def __exit__(self, *exc) -> bool:
        if exc[0] is None:
            self.stop()
        else:
            # Don't mask the body's exception with a sweep error.
            self._stop.set()
            if self._thread is not None:
                self._thread.join()
                self._thread = None
        return False
