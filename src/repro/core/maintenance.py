"""Dynamic maintenance of an IQ-tree (paper Section 6).

Inserts and deletes mutate the in-memory partition list; the three
on-"disk" files are re-laid-out lazily before the next query (the files
are rebuilt in full -- acceptable for a simulator, and it keeps every
extent contiguous).  The interesting decision the paper highlights is
the overflow case: when a page can no longer hold its points at the
current resolution, the tree either *splits* the page (one more page,
finer quantization) or *re-quantizes it coarser* (same page count, more
refinement look-ups).  The choice is made by comparing the cost model's
estimate of both outcomes, exactly as the optimizer would.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BuildError, SearchError
from repro.core.build import bulk_load_partitions
from repro.core.optimizer import OptimizedPartition, optimize_partitions
from repro.core.partition import Partition
from repro.core.split import split_partition
from repro.core.tree import IQTree, canonicalize
from repro.quantization.capacity import max_bits_for_count

__all__ = ["insert_point", "delete_point", "reoptimize"]


def insert_point(tree: IQTree, point: np.ndarray) -> int:
    """Insert one point; returns its assigned id.

    The target page is the one whose MBR needs the least volume
    enlargement (ties: the smaller page).  If the page overflows its
    current quantization level, the split-vs-coarser decision described
    in Section 6 is made with the cost model.
    """
    point = canonicalize(np.asarray(point, dtype=np.float64).reshape(1, -1))
    if point.shape[1] != tree.dim:
        raise SearchError(
            f"point must have {tree.dim} dimensions, got {point.shape[1]}"
        )
    new_id = tree._points.shape[0]
    grown_points = np.vstack([tree._points, point])
    target = _least_enlargement_page(tree, point[0])
    opt = tree._partitions[target]
    part = opt.partition
    indices = np.append(part.indices, new_id)
    mbr = part.mbr.extended_by_point(point[0])
    grown = Partition(indices, mbr)
    block_size = tree.disk.model.block_size
    finest = max_bits_for_count(block_size, tree.dim, grown.size)

    # Resolve the overflow decision fully before mutating the tree, so
    # a BuildError (e.g. an unsplittable overflowing page) leaves it
    # exactly as it was -- point list, partitions, and clean layout.
    if finest >= opt.bits:
        # Still fits at the current resolution: update in place.
        replacement = [OptimizedPartition(grown, opt.bits)]
    elif finest >= 1 and _coarser_beats_split(tree, grown, finest, grown_points):
        replacement = [OptimizedPartition(grown, finest)]
    else:
        left, right = split_partition(grown_points, grown)
        replacement = [_sized(tree, left), _sized(tree, right)]
    tree._points = grown_points
    tree._partitions[target : target + 1] = replacement
    tree._dirty = True
    return new_id


def delete_point(tree: IQTree, point_id: int) -> None:
    """Delete a point by id.

    The containing page shrinks (its MBR is re-tightened); an emptied
    page is removed.  The page keeps its quantization level -- the next
    :func:`reoptimize` reconsiders it globally.
    """
    tree._ensure_clean()
    if point_id not in tree._id_to_partition:
        raise SearchError(f"unknown point id: {point_id}")
    target = tree._id_to_partition[point_id]
    opt = tree._partitions[target]
    keep = opt.partition.indices != point_id
    if not np.any(keep):
        if len(tree._partitions) == 1:
            raise BuildError("cannot delete the last point of the index")
        del tree._partitions[target]
    else:
        remaining = opt.partition.indices[keep]
        part = Partition.of(tree._points, remaining)
        tree._partitions[target] = OptimizedPartition(part, opt.bits)
    tree._dirty = True


def reoptimize(tree: IQTree) -> None:
    """Rebuild the partitioning and quantization from scratch.

    Compacts deleted ids away (ids are *not* preserved across a
    reoptimize; the canonical data array is re-indexed).
    """
    live = sorted(
        int(i)
        for opt in tree._partitions
        for i in opt.partition.indices
    )
    data = tree._points[live]
    block_size = tree.disk.model.block_size
    initial = bulk_load_partitions(data, block_size)
    solution, trace = optimize_partitions(
        data, initial, tree.cost_model, block_size
    )
    tree._points = data
    tree._partitions = list(solution)
    tree.trace = trace
    tree._dirty = True


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _least_enlargement_page(tree: IQTree, point: np.ndarray) -> int:
    """Index of the page whose MBR grows the least to admit ``point``."""
    tree._ensure_clean()
    lowers = np.minimum(tree._lowers, point)
    uppers = np.maximum(tree._uppers, point)
    new_vol = np.prod(uppers - lowers, axis=1)
    old_vol = np.prod(tree._uppers - tree._lowers, axis=1)
    enlargement = new_vol - old_vol
    # Tie-break on the smaller resulting volume, then lower index.
    order = np.lexsort((new_vol, enlargement))
    return int(order[0])


def _sized(tree: IQTree, part: Partition) -> OptimizedPartition:
    bits = max_bits_for_count(
        tree.disk.model.block_size, tree.dim, part.size
    )
    if bits == 0:
        raise BuildError("split produced an oversized partition")
    return OptimizedPartition(part, bits)


def _coarser_beats_split(
    tree: IQTree, grown: Partition, coarser_bits: int, points: np.ndarray
) -> bool:
    """Cost-model comparison of the two overflow resolutions.

    ``points`` is the candidate data array including the pending point
    (the tree's own array is not yet updated at decision time).
    """
    model = tree.cost_model
    block_size = tree.disk.model.block_size
    n_pages = len(tree._partitions)

    from repro.costmodel.model import PartitionStats

    coarse_stats = PartitionStats(
        m=grown.size,
        side_lengths=tuple(grown.mbr.extents.tolist()),
        bits=coarser_bits,
    )
    coarse_refine = model.refinement_cost(coarse_stats)
    coarse_total = model.total_from_aggregates(n_pages, coarse_refine)

    left, right = split_partition(points, grown)
    split_refine = model.refinement_cost(
        left.stats(block_size)
    ) + model.refinement_cost(right.stats(block_size))
    split_total = model.total_from_aggregates(n_pages + 1, split_refine)
    # Only the changed page's refinement cost differs between the two
    # candidates, so comparing these partial totals is exact.
    return coarse_total <= split_total
