"""The split heuristic shared by construction and the optimizer.

Per the paper (Section 3.3), partitions split along the dimension where
the MBR has its largest extension.  The split position is the median of
the member points in that dimension, which keeps the two halves balanced
-- the property the bulk-load strategy of the paper's reference [4]
relies on for packed pages.

Degenerate inputs (all points identical in the longest dimension, or
fully identical points) are handled by falling back to the next-longest
dimension and, ultimately, an index-count split, so the builder can
always make progress.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BuildError
from repro.core.partition import Partition

__all__ = ["split_partition"]


def split_partition(
    data: np.ndarray, partition: Partition
) -> tuple[Partition, Partition]:
    """Split ``partition`` into two balanced halves.

    Returns the two child partitions, each with a freshly tightened MBR.
    Raises :class:`BuildError` for single-point partitions.
    """
    if partition.size < 2:
        raise BuildError("cannot split a single-point partition")
    points = partition.points(data)
    order = np.argsort(partition.mbr.extents)[::-1]
    for dim in order:
        left_mask = _median_mask(points[:, dim])
        if left_mask is not None:
            break
    else:
        # All points identical: split the index array in half.
        half = partition.size // 2
        left_mask = np.zeros(partition.size, dtype=bool)
        left_mask[:half] = True
    left = Partition.of(data, partition.indices[left_mask])
    right = Partition.of(data, partition.indices[~left_mask])
    return left, right


def _median_mask(values: np.ndarray) -> np.ndarray | None:
    """Boolean mask of the lower half split at the median of ``values``.

    Returns ``None`` when no position in this dimension yields two
    non-empty halves (all values equal, or the median pins everything to
    one side).  Ties at the median are broken by stable index order so
    the halves stay balanced even with heavily duplicated values.
    """
    m = values.size
    half = m // 2
    order = np.argsort(values, kind="stable")
    lo_value = values[order[0]]
    hi_value = values[order[-1]]
    if lo_value == hi_value:
        return None
    mask = np.zeros(m, dtype=bool)
    mask[order[:half]] = True
    return mask
