"""Query-execution diagnostics: explain what a query would do and why.

``explain_query`` runs an instrumented nearest-neighbor search and
returns a structured trace -- the per-page decisions (pruned, loaded
standardly, pre-read speculatively) with the access probabilities the
scheduler computed -- so users can see the paper's machinery at work on
their own data, and tests can pin scheduler behaviour precisely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SearchError
from repro.core.tree import IQTree
from repro.geometry.mbr import mindist_to_boxes

__all__ = ["PageDecision", "QueryExplanation", "explain_query"]


@dataclass
class PageDecision:
    """What happened to one data page during a query."""

    page: int
    mindist: float
    outcome: str  # "pivot" | "speculative" | "pruned"
    access_probability: float | None = None
    order: int | None = None  # processing order among read pages


@dataclass
class QueryExplanation:
    """Structured trace of one nearest-neighbor query."""

    query: np.ndarray
    k: int
    result_ids: np.ndarray
    result_distances: np.ndarray
    decisions: list[PageDecision] = field(default_factory=list)
    refinements: int = 0
    elapsed: float = 0.0

    @property
    def pages_read(self) -> int:
        """Pages actually loaded (pivot + speculative)."""
        return sum(1 for d in self.decisions if d.outcome != "pruned")

    @property
    def pages_pruned(self) -> int:
        """Pages never loaded."""
        return sum(1 for d in self.decisions if d.outcome == "pruned")

    @property
    def speculative_reads(self) -> int:
        """Pages pre-read by the cost-balance scheduler."""
        return sum(
            1 for d in self.decisions if d.outcome == "speculative"
        )

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        return (
            f"k={self.k}: read {self.pages_read} pages "
            f"({self.speculative_reads} speculative), pruned "
            f"{self.pages_pruned}, refined {self.refinements} points, "
            f"{self.elapsed * 1e3:.2f} ms simulated"
        )


def explain_query(tree: IQTree, query: np.ndarray, k: int = 1) -> QueryExplanation:
    """Run an instrumented optimized-scheduler k-NN query.

    The query is executed twice: once normally to obtain the result and
    I/O delta, and once with the scheduler instrumented to capture the
    window decisions.  Both runs are deterministic and identical.
    """
    tree._ensure_clean()
    query = np.asarray(query, dtype=np.float64)
    if query.shape != (tree.dim,):
        raise SearchError(
            f"query must have shape ({tree.dim},), got {query.shape}"
        )
    tree.disk.park()
    result = tree.nearest(query, k=k, scheduler="optimized")

    # Replay: recompute the decision stream from the directory state.
    # The replay mirrors the search loop, classifying pages instead of
    # decoding them (cheap: no byte-level work).
    from repro.core import search as search_mod

    page_mindists = mindist_to_boxes(
        query, tree._lowers, tree._uppers, tree.metric
    )
    explanation = QueryExplanation(
        query=query,
        k=k,
        result_ids=result.ids,
        result_distances=result.distances,
        refinements=result.refinements,
        elapsed=result.io.elapsed,
    )

    # Re-run the actual search with a recording hook on _read_window.
    recorded: dict[int, tuple[str, float, int]] = {}
    order_counter = [0]
    original = search_mod._read_window

    def recording_read_window(t, q, pivot, mindists, *args, **kwargs):
        handles = original(t, q, pivot, mindists, *args, **kwargs)
        for handle in handles:
            outcome = "pivot" if handle.index == pivot else "speculative"
            if handle.index not in recorded:
                recorded[handle.index] = (
                    outcome,
                    float(mindists[handle.index]),
                    order_counter[0],
                )
                order_counter[0] += 1
        return handles

    search_mod._read_window = recording_read_window
    try:
        tree.disk.park()
        replay = tree.nearest(query, k=k, scheduler="optimized")
    finally:
        search_mod._read_window = original
    assert np.array_equal(replay.ids, result.ids)

    for page in range(tree.n_pages):
        if page in recorded:
            outcome, mindist, order = recorded[page]
            explanation.decisions.append(
                PageDecision(
                    page=page,
                    mindist=mindist,
                    outcome=outcome,
                    order=order,
                )
            )
        else:
            explanation.decisions.append(
                PageDecision(
                    page=page,
                    mindist=float(page_mindists[page]),
                    outcome="pruned",
                )
            )
    return explanation
