"""Byte-level (de)serialization of the page types used by the indexes.

Pages are real bytes: capacities fall out of byte budgets exactly as the
paper's fixed block size requires.  Three page kinds exist:

* **Directory pages** -- runs of directory entries, each holding an
  exact (float32) MBR plus child/page references (paper eq. 22 sizes the
  first-level scan by the entry size).
* **Quantized data pages** -- a small header (point count, bits per
  dimension ``g``) followed by the bit-packed cell codes.  For ``g = 32``
  the page stores exact float32 coordinates *and* the point ids, because
  the paper omits the (redundant) third-level record for exact pages.
  For ``g < 32`` ids live in the third-level record only.
* **Exact data records** -- per-point interleaved float32 coordinates
  plus a uint32 point id, so refining one point touches at most two
  consecutive blocks.

All encodings are little-endian and dimension-stable: the dimension is
not stored per page (it is a property of the index).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import PageOverflowError, StorageError
from repro.quantization.bitpack import pack_codes, unpack_codes

__all__ = [
    "QUANT_PAGE_HEADER",
    "DIR_ENTRY_FIXED_BYTES",
    "directory_entry_size",
    "exact_point_record_size",
    "encode_quantized_page",
    "encode_pq_page",
    "decode_quantized_page",
    "encode_exact_record",
    "decode_exact_record",
    "quantized_page_capacity",
    "exact_points_per_block",
]

#: header of a quantized data page: u32 point count, u8 bits, u8 codec
#: id, 2 pad bytes.  The codec byte occupies a former pad byte that was
#: always written as zero, so grid pages (codec 0) are byte-identical to
#: the pre-codec format and legacy containers decode unchanged.
QUANT_PAGE_HEADER = struct.Struct("<IBBxx")

#: per-directory-entry overhead besides the MBR floats:
#: u32 quantized page id, u32 exact first block, u32 exact block count,
#: u32 point count
DIR_ENTRY_FIXED_BYTES = 16


def directory_entry_size(dim: int) -> int:
    """Bytes of one first-level directory entry (float32 MBR + refs)."""
    if dim <= 0:
        raise StorageError("dimension must be positive")
    return 2 * 4 * dim + DIR_ENTRY_FIXED_BYTES


def exact_point_record_size(dim: int) -> int:
    """Bytes of one exact point record: float32 coords + uint32 id."""
    if dim <= 0:
        raise StorageError("dimension must be positive")
    return 4 * dim + 4


def quantized_page_capacity(block_size: int, dim: int, bits: int) -> int:
    """Max number of points a quantized page can hold at ``bits`` b/dim.

    For ``bits < 32`` the budget is pure bit-packed codes; for
    ``bits = 32`` each point costs ``4*dim + 4`` bytes because the exact
    page also stores the point id (there is no third-level record to
    hold it).
    """
    if not 1 <= bits <= 32:
        raise StorageError("bits per dimension must be in [1, 32]")
    if dim <= 0:
        raise StorageError("dimension must be positive")
    payload_bytes = block_size - QUANT_PAGE_HEADER.size
    if payload_bytes <= 0:
        return 0
    if bits == 32:
        return payload_bytes // exact_point_record_size(dim)
    return (payload_bytes * 8) // (dim * bits)


def exact_points_per_block(block_size: int, dim: int) -> int:
    """How many exact point records fit one block (for sizing only)."""
    return block_size // exact_point_record_size(dim)


def encode_quantized_page(
    codes_or_points: np.ndarray,
    bits: int,
    block_size: int,
    ids: np.ndarray | None = None,
) -> bytes:
    """Serialize a quantized data page.

    Parameters
    ----------
    codes_or_points:
        For ``bits < 32``: integer cell codes, shape ``(m, d)``, each in
        ``[0, 2**bits)``.  For ``bits = 32``: float32-representable
        coordinates, shape ``(m, d)``.
    bits:
        Bits per dimension ``g``.
    block_size:
        Fixed page size to validate against.
    ids:
        Point ids, required iff ``bits = 32``.
    """
    arr = np.asarray(codes_or_points)
    if arr.ndim != 2:
        raise StorageError("page contents must be a (m, d) array")
    m, d = arr.shape
    if quantized_page_capacity(block_size, d, bits) < m:
        raise PageOverflowError(
            f"{m} points at {bits} bits/dim exceed a {block_size}-byte page"
        )
    header = QUANT_PAGE_HEADER.pack(m, bits, 0)
    if bits == 32:
        if ids is None:
            raise StorageError("32-bit pages must store point ids")
        ids = np.asarray(ids, dtype="<u4")
        if ids.shape != (m,):
            raise StorageError("ids must be a (m,) array")
        body = arr.astype("<f4").tobytes() + ids.tobytes()
    else:
        if ids is not None:
            raise StorageError("only 32-bit pages store ids inline")
        body = pack_codes(arr.astype(np.uint32), bits)
    payload = header + body
    if len(payload) > block_size:
        raise PageOverflowError(
            f"serialized page is {len(payload)} bytes > {block_size}"
        )
    return payload


def encode_pq_page(
    points: np.ndarray, bits: int, n_sub: int, block_size: int
) -> bytes:
    """Serialize a PQ-codec data page (codec id 1).

    ``points`` are the page's exact coordinates; the per-page codebook
    is fitted deterministically by :func:`repro.quantization.codecs.fit_pq`,
    so re-encoding the same points always reproduces the same bytes.
    """
    from repro.quantization.codecs import CODEC_PQ, encode_pq_body

    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise StorageError("page contents must be a (m, d) array")
    m, _d = points.shape
    if not 1 <= bits <= 16:
        raise StorageError("PQ bits per code must be in [1, 16]")
    payload = QUANT_PAGE_HEADER.pack(m, bits, CODEC_PQ) + encode_pq_body(
        points, n_sub, bits
    )
    if len(payload) > block_size:
        raise PageOverflowError(
            f"serialized PQ page is {len(payload)} bytes > {block_size}"
        )
    return payload


def decode_quantized_page(
    payload: bytes, dim: int
) -> tuple[np.ndarray, int, np.ndarray | None, object | None]:
    """Inverse of :func:`encode_quantized_page` / :func:`encode_pq_page`.

    Returns ``(contents, bits, ids, aux)``: for grid pages with
    ``bits < 32`` the contents are uint32 cell codes and ``ids`` /
    ``aux`` are ``None``; for ``bits = 32`` the contents are float64
    coordinates and ``ids`` the stored point ids; for PQ pages the
    contents are the ``(m, S)`` cluster selectors and ``aux`` is the
    page's :class:`~repro.quantization.codecs.PQView`.
    """
    if len(payload) < QUANT_PAGE_HEADER.size:
        raise StorageError("payload shorter than the page header")
    m, bits, codec = QUANT_PAGE_HEADER.unpack_from(payload)
    body = payload[QUANT_PAGE_HEADER.size :]
    from repro.quantization.codecs import CODEC_GRID, CODEC_PQ

    if codec == CODEC_PQ:
        from repro.quantization.codecs import decode_pq_body

        codes, view = decode_pq_body(body, m, bits, dim)
        return codes, bits, None, view
    if codec != CODEC_GRID:
        raise StorageError(f"unknown page codec id {codec}")
    if bits == 32:
        coord_bytes = m * dim * 4
        need = coord_bytes + m * 4
        if len(body) < need:
            raise StorageError("32-bit page payload truncated")
        coords = np.frombuffer(body, dtype="<f4", count=m * dim)
        ids = np.frombuffer(
            body[coord_bytes:], dtype="<u4", count=m
        ).astype(np.int64)
        return coords.reshape(m, dim).astype(np.float64), bits, ids, None
    codes = unpack_codes(body, bits, m, dim)
    return codes, bits, None, None


def encode_exact_record(points: np.ndarray, ids: np.ndarray) -> bytes:
    """Serialize exact data as per-point interleaved (coords, id) rows."""
    points = np.asarray(points, dtype=np.float64)
    ids = np.asarray(ids)
    if points.ndim != 2 or ids.ndim != 1 or points.shape[0] != ids.size:
        raise StorageError("need (m, d) points and matching (m,) ids")
    m, d = points.shape
    rows = np.empty((m, exact_point_record_size(d)), dtype=np.uint8)
    rows[:, : 4 * d] = (
        points.astype("<f4").view(np.uint8).reshape(m, 4 * d)
    )
    rows[:, 4 * d :] = (
        ids.astype("<u4").view(np.uint8).reshape(m, 4)
    )
    return rows.tobytes()


def decode_exact_record(
    payload: bytes, m: int, dim: int
) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_exact_record` for ``m`` points."""
    record = exact_point_record_size(dim)
    need = m * record
    if len(payload) < need:
        raise StorageError("exact record payload shorter than expected")
    rows = np.frombuffer(payload, dtype=np.uint8, count=need).reshape(
        m, record
    )
    coords = (
        np.ascontiguousarray(rows[:, : 4 * dim])
        .view("<f4")
        .reshape(m, dim)
        .astype(np.float64)
    )
    ids = (
        np.ascontiguousarray(rows[:, 4 * dim :])
        .view("<u4")
        .reshape(m)
        .astype(np.int64)
    )
    return coords, ids


def encode_directory(
    lowers: np.ndarray,
    uppers: np.ndarray,
    quant_pages: np.ndarray,
    exact_firsts: np.ndarray,
    exact_counts: np.ndarray,
    point_counts: np.ndarray,
    block_size: int,
) -> list[bytes]:
    """Serialize the flat first-level directory into block payloads.

    Entries are packed densely; an entry never straddles a block
    boundary (the per-block entry count is fixed), matching how eq. 22
    sizes the first-level scan.
    """
    lowers = np.asarray(lowers, dtype=np.float64)
    uppers = np.asarray(uppers, dtype=np.float64)
    if lowers.ndim != 2 or lowers.shape != uppers.shape:
        raise StorageError("directory bounds must be matching (n, d)")
    n, d = lowers.shape
    entry = directory_entry_size(d)
    per_block = block_size // entry
    if per_block < 1:
        raise StorageError("directory entry larger than a block")
    rows = np.empty((n, entry), dtype=np.uint8)
    rows[:, : 4 * d] = lowers.astype("<f4").view(np.uint8).reshape(n, 4 * d)
    rows[:, 4 * d : 8 * d] = (
        uppers.astype("<f4").view(np.uint8).reshape(n, 4 * d)
    )
    refs = np.column_stack(
        [
            np.asarray(quant_pages, dtype="<u4"),
            np.asarray(exact_firsts, dtype="<u4"),
            np.asarray(exact_counts, dtype="<u4"),
            np.asarray(point_counts, dtype="<u4"),
        ]
    ).astype("<u4")
    rows[:, 8 * d :] = refs.view(np.uint8).reshape(n, 16)
    blocks = []
    for start in range(0, n, per_block):
        blocks.append(rows[start : start + per_block].tobytes())
    return blocks


def decode_directory(
    blocks: list[bytes], dim: int, n_entries: int
) -> dict[str, np.ndarray]:
    """Inverse of :func:`encode_directory`.

    Returns arrays ``lowers``, ``uppers`` (float64, shape ``(n, d)``)
    and ``quant_pages``, ``exact_firsts``, ``exact_counts``,
    ``point_counts`` (int64, shape ``(n,)``).
    """
    entry = directory_entry_size(dim)
    rows_list = []
    remaining = n_entries
    for payload in blocks:
        take = min(remaining, len(payload) // entry)
        chunk = np.frombuffer(
            payload, dtype=np.uint8, count=take * entry
        ).reshape(take, entry)
        rows_list.append(chunk)
        remaining -= take
        if remaining == 0:
            break
    if remaining != 0:
        raise StorageError("directory blocks truncated")
    rows = np.concatenate(rows_list, axis=0)
    d = dim

    def _f4(cols: np.ndarray) -> np.ndarray:
        return (
            np.ascontiguousarray(cols).view("<f4").astype(np.float64)
        ).reshape(n_entries, d)

    def _u4(cols: np.ndarray) -> np.ndarray:
        return (
            np.ascontiguousarray(cols).view("<u4").astype(np.int64)
        ).reshape(n_entries)

    return {
        "lowers": _f4(rows[:, : 4 * d]),
        "uppers": _f4(rows[:, 4 * d : 8 * d]),
        "quant_pages": _u4(rows[:, 8 * d : 8 * d + 4]),
        "exact_firsts": _u4(rows[:, 8 * d + 4 : 8 * d + 8]),
        "exact_counts": _u4(rows[:, 8 * d + 8 : 8 * d + 12]),
        "point_counts": _u4(rows[:, 8 * d + 12 : 8 * d + 16]),
    }


__all__.extend(["encode_directory", "decode_directory"])
