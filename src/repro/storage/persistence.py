"""Crash-safe save/load of an IQ-tree to a real file on the host.

Version 2 containers (magic ``IQTREE02``) are the format this module
writes.  They are self-verifying: every section carries a CRC32 that
:func:`load_iqtree` checks before parsing a single byte of it, the
coordinate payload is full-precision float64 (a reload is bit-exact
against the saved tree), the partition index is a compact binary
section rather than JSON lists, and saves are atomic -- the container
is written to a temporary file in the same directory, flushed and
fsynced, then renamed over the destination, so a crash mid-save leaves
either the old container or the new one, never a torn hybrid.

Container layout (all integers little-endian)::

    magic         b"IQTREE02"                          8 bytes
    fixed header  <QQQIIII                            40 bytes
        meta_len      u64   length of the meta section
        index_len     u64   length of the index section
        payload_len   u64   length of the payload section
        meta_crc      u32   CRC32 of the meta section
        index_crc     u32   CRC32 of the index section
        payload_crc   u32   CRC32 of the payload section
        header_crc    u32   CRC32 of magic + the 36 bytes above
    meta          JSON (utf-8): dims, metric, disk / cost-model
                  parameters, per-level-file content CRCs
    index         binary partition arrays:
                      n_parts   u32
                      bits      u8  * n_parts
                      counts    u32 * n_parts
                      lowers    f64 * n_parts * dim   (per-page MBR)
                      uppers    f64 * n_parts * dim
                      indices   i64 * sum(counts)
    payload       float64 coordinate array (n * d * 8 bytes)

Any CRC mismatch, truncation, or structural inconsistency raises
:class:`~repro.exceptions.IntegrityError` (a ``StorageError``) naming
the failing section.  ``load_iqtree(path, verify=True)`` additionally
re-serializes the freshly loaded tree and compares it byte-for-byte
against the container -- the strongest possible round-trip check,
covering the re-laid-out level files via their content CRCs.

Version 1 containers (magic ``IQTREE01``) are still readable, with a
:class:`UserWarning`: that format stored coordinates as float32, so
loading one can silently change query answers for data that is not
float32-representable.  v1 containers carry no checksums and cannot be
written anymore (except through :func:`write_legacy_v1`, kept for the
format-migration tests and benchmarks).
"""

from __future__ import annotations

import json
import os
import struct
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import IntegrityError, StorageError
from repro.obs.instruments import CONTAINER_OPS, REGISTRY
from repro.core.optimizer import OptimizedPartition
from repro.core.partition import Partition
from repro.core.tree import IQTree
from repro.costmodel.model import CostModel
from repro.geometry.mbr import MBR
from repro.geometry.metrics import get_metric
from repro.storage.disk import DiskModel, SimulatedDisk

__all__ = [
    "save_iqtree",
    "load_iqtree",
    "serialize_iqtree",
    "verify_container",
    "section_spans",
    "write_legacy_v1",
    "FsckReport",
    "SectionStatus",
    "MAGIC_V2",
    "MAGIC_V1",
]

MAGIC_V1 = b"IQTREE01"
MAGIC_V2 = b"IQTREE02"

#: fixed header after the magic: three section lengths, four CRCs
_V2_HEADER = struct.Struct("<QQQIIII")
#: bytes of magic + fixed header = start of the meta section
_V2_HEADER_END = len(MAGIC_V2) + _V2_HEADER.size

#: container sections in file order (fsck reports them in this order)
SECTIONS = ("header", "meta", "index", "payload")


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# Serialization (v2)
# ----------------------------------------------------------------------
def serialize_iqtree(tree: IQTree) -> bytes:
    """Serialize ``tree`` to a v2 container blob (no file I/O).

    Deterministic: the same tree state always produces the same bytes,
    which is what makes the ``verify=True`` re-serialization check in
    :func:`load_iqtree` byte-exact.
    """
    tree._ensure_clean()
    model = tree.disk.model
    meta = {
        "version": 2,
        "n_points": tree.n_points,
        "dim": tree.dim,
        "metric": tree.metric.name,
        "charge_directory": tree.charge_directory,
        "disk": {
            "t_seek": model.t_seek,
            "t_xfer": model.t_xfer,
            "block_size": model.block_size,
        },
        "cost_model": {
            "fractal_dim": tree.cost_model.fractal_dim,
            "data_space_volume": tree.cost_model.data_space_volume,
            "k": tree.cost_model.k,
        },
        "n_partitions": len(tree._partitions),
        "level_crcs": {
            "directory": tree._dir_file.content_crc32(),
            "quantized": tree._quant_file.content_crc32(),
            "exact": tree._exact_file.content_crc32(),
        },
    }
    # wal_seq: highest journal sequence number folded into this
    # container (see repro.storage.journal).  Written only when nonzero
    # so pre-journal containers re-serialize byte-identically under
    # verify=True.
    if tree._wal_seq:
        meta["wal_seq"] = int(tree._wal_seq)
    # Codec keys follow the same only-when-nonzero convention: a pure
    # grid tree with a dense directory writes none of them, so
    # pre-codec containers re-serialize byte-identically.
    codecs = [
        [int(opt.codec), int(opt.pq_bits), int(opt.pq_sub),
         float(opt.eff_bits)]
        if opt.codec
        else 0
        for opt in tree._partitions
    ]
    if any(codecs):
        meta["codecs"] = codecs
    if tree.directory_codec == "ef":
        meta["directory_codec"] = "ef"
    if tree.codec_mode != "grid":
        meta["codec_mode"] = tree.codec_mode
    meta_bytes = json.dumps(meta).encode("utf-8")
    index_bytes = _encode_index_section(tree)
    payload = np.ascontiguousarray(tree.points, dtype="<f8").tobytes()

    fixed = _V2_HEADER.pack(
        len(meta_bytes),
        len(index_bytes),
        len(payload),
        _crc(meta_bytes),
        _crc(index_bytes),
        _crc(payload),
        0,  # placeholder; header_crc covers everything before itself
    )
    header_crc = _crc(MAGIC_V2 + fixed[:-4])
    fixed = fixed[:-4] + header_crc.to_bytes(4, "little")
    return MAGIC_V2 + fixed + meta_bytes + index_bytes + payload


def _encode_index_section(tree: IQTree) -> bytes:
    n_parts = len(tree._partitions)
    bits = np.empty(n_parts, dtype=np.uint8)
    counts = np.empty(n_parts, dtype="<u4")
    lowers = np.empty((n_parts, tree.dim), dtype="<f8")
    uppers = np.empty((n_parts, tree.dim), dtype="<f8")
    chunks: list[np.ndarray] = []
    for j, opt in enumerate(tree._partitions):
        bits[j] = opt.bits
        counts[j] = opt.partition.size
        lowers[j] = opt.partition.mbr.lower
        uppers[j] = opt.partition.mbr.upper
        chunks.append(opt.partition.indices)
    indices = np.concatenate(chunks).astype("<i8", copy=False)
    return b"".join(
        (
            np.uint32(n_parts).tobytes(),
            bits.tobytes(),
            counts.tobytes(),
            lowers.tobytes(),
            uppers.tobytes(),
            indices.tobytes(),
        )
    )


# ----------------------------------------------------------------------
# Atomic writing
# ----------------------------------------------------------------------
def _atomic_write(path, blob: bytes, *, fsync: bool = True, _writer=None) -> None:
    """Write ``blob`` to ``path`` via temp file + fsync + rename.

    A crash at any point leaves ``path`` either absent/old or fully
    new; a leftover ``<name>.tmp`` next to it is crash debris from an
    interrupted save and is overwritten by the next one.  ``_writer``
    is the fault-injection hook used by
    :func:`repro.storage.faults.torn_save`.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        if _writer is None:
            handle.write(blob)
        else:
            _writer(handle, blob)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        # Make the rename itself durable (best-effort: not every
        # platform/filesystem allows opening a directory).
        try:
            dir_fd = os.open(path.parent, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)


def save_iqtree(tree: IQTree, path, *, fsync: bool = True) -> None:
    """Atomically serialize ``tree`` (structure + data) to ``path``.

    Writes a v2 container (see the module docstring for the format).
    ``fsync=False`` skips the durability syncs -- faster for tests and
    scratch files, same atomicity against process crashes (but not
    against power loss).
    """
    try:
        _atomic_write(path, serialize_iqtree(tree), fsync=fsync)
    except Exception:
        if REGISTRY.enabled:
            CONTAINER_OPS.inc(op="save", outcome="error")
        raise
    if REGISTRY.enabled:
        CONTAINER_OPS.inc(op="save", outcome="ok")


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_iqtree(
    path, disk: SimulatedDisk | None = None, *, verify: bool = False
) -> IQTree:
    """Rebuild an IQ-tree saved by :func:`save_iqtree`.

    Every section's CRC32 is checked before it is parsed; corruption
    raises :class:`~repro.exceptions.IntegrityError` naming the failing
    section.  With ``verify=True`` the loaded tree is re-serialized and
    compared byte-for-byte against the container (requires the default
    disk, i.e. ``disk=None``, so the recorded disk parameters match).

    A fresh simulated disk with the saved timing model is created
    unless one is supplied.  Legacy ``IQTREE01`` containers load
    read-only with a :class:`UserWarning` about their float32
    precision loss; they carry no checksums, so ``verify=True`` is
    rejected for them.
    """
    try:
        tree = _load_iqtree(path, disk, verify=verify)
    except IntegrityError:
        if REGISTRY.enabled:
            CONTAINER_OPS.inc(op="load", outcome="corrupt")
        raise
    except Exception:
        if REGISTRY.enabled:
            CONTAINER_OPS.inc(op="load", outcome="error")
        raise
    if REGISTRY.enabled:
        CONTAINER_OPS.inc(op="load", outcome="ok")
    return tree


def _load_iqtree(
    path, disk: SimulatedDisk | None, *, verify: bool
) -> IQTree:
    raw = Path(path).read_bytes()
    magic = raw[: len(MAGIC_V2)]
    if magic == MAGIC_V2:
        if verify and disk is not None:
            raise StorageError(
                "verify=True compares against the recorded disk "
                "parameters; load with disk=None to verify"
            )
        tree = _load_v2(raw, path, disk)
        if verify and serialize_iqtree(tree) != raw:
            raise IntegrityError(
                f"{path}: container does not round-trip: re-serializing "
                "the loaded tree produced different bytes"
            )
        return tree
    if magic == MAGIC_V1:
        if verify:
            raise StorageError(
                f"{path}: legacy v1 containers carry no checksums and "
                "cannot be verified; re-save to upgrade to v2"
            )
        warnings.warn(
            f"{path}: legacy IQTREE01 container stores float32 "
            "coordinates; non-float32-representable data was rounded "
            "at save time and query answers may differ from the "
            "original tree. Re-save to upgrade to the lossless v2 "
            "format.",
            UserWarning,
            stacklevel=2,
        )
        return _load_v1(raw, path, disk)
    raise StorageError(f"{path}: not an IQ-tree container")


def _v2_spans(raw: bytes, path) -> dict[str, tuple[int, int]]:
    """Validate the fixed header; return each section's byte span."""
    if len(raw) < _V2_HEADER_END:
        raise IntegrityError(
            f"{path}: truncated header section "
            f"({len(raw)} bytes, need {_V2_HEADER_END})",
            section="header",
        )
    fields = _V2_HEADER.unpack(raw[len(MAGIC_V2) : _V2_HEADER_END])
    meta_len, index_len, payload_len = fields[:3]
    header_crc = fields[6]
    if _crc(raw[: _V2_HEADER_END - 4]) != header_crc:
        raise IntegrityError(
            f"{path}: CRC mismatch in header section", section="header"
        )
    spans: dict[str, tuple[int, int]] = {"header": (0, _V2_HEADER_END)}
    offset = _V2_HEADER_END
    for name, length in (
        ("meta", meta_len),
        ("index", index_len),
        ("payload", payload_len),
    ):
        end = offset + length
        if len(raw) < end:
            raise IntegrityError(
                f"{path}: truncated {name} section "
                f"({len(raw) - offset} of {length} bytes present)",
                section=name,
            )
        spans[name] = (offset, end)
        offset = end
    if len(raw) != offset:
        raise IntegrityError(
            f"{path}: {len(raw) - offset} trailing bytes after the "
            "payload section",
            section="header",
        )
    return spans


def section_spans(raw: bytes) -> dict[str, tuple[int, int]]:
    """Byte span ``(start, stop)`` of each v2 section of ``raw``.

    Used by the fault-injection harness to aim corruption at a specific
    section; only the header must be intact for the spans to resolve.
    """
    return _v2_spans(raw, "<blob>")


def _checked_section(
    raw: bytes, spans: dict, name: str, crc: int, path
) -> bytes:
    data = raw[spans[name][0] : spans[name][1]]
    if _crc(data) != crc:
        raise IntegrityError(
            f"{path}: CRC mismatch in {name} section", section=name
        )
    return data


def _load_v2(raw: bytes, path, disk: SimulatedDisk | None) -> IQTree:
    spans = _v2_spans(raw, path)
    fields = _V2_HEADER.unpack(raw[len(MAGIC_V2) : _V2_HEADER_END])
    meta_crc, index_crc, payload_crc = fields[3:6]

    meta_bytes = _checked_section(raw, spans, "meta", meta_crc, path)
    try:
        meta = json.loads(meta_bytes)
        n = int(meta["n_points"])
        dim = int(meta["dim"])
        n_parts = int(meta["n_partitions"])
        saved_model = DiskModel(**meta["disk"])
        metric = get_metric(meta["metric"])
        cm = meta["cost_model"]
    except (ValueError, KeyError, TypeError, StorageError) as exc:
        raise IntegrityError(
            f"{path}: malformed meta section: {exc}", section="meta"
        ) from exc

    payload = _checked_section(raw, spans, "payload", payload_crc, path)
    if len(payload) != n * dim * 8:
        raise IntegrityError(
            f"{path}: payload section holds {len(payload)} bytes, "
            f"expected {n * dim * 8} for {n} x {dim} float64 points",
            section="payload",
        )
    points = (
        np.frombuffer(payload, dtype="<f8").reshape(n, dim).copy()
    )

    codec_mode = meta.get("codec_mode", "grid")
    directory_codec = meta.get("directory_codec", "dense")
    if codec_mode not in ("grid", "pq", "auto"):
        raise IntegrityError(
            f"{path}: malformed meta section: bad codec_mode "
            f"{codec_mode!r}",
            section="meta",
        )
    if directory_codec not in ("dense", "ef"):
        raise IntegrityError(
            f"{path}: malformed meta section: bad directory_codec "
            f"{directory_codec!r}",
            section="meta",
        )

    index_bytes = _checked_section(raw, spans, "index", index_crc, path)
    solution = _decode_index_section(index_bytes, n_parts, n, dim, points, path)
    if "codecs" in meta:
        solution = _apply_codecs(solution, meta["codecs"], dim, path)

    disk = disk or SimulatedDisk(saved_model)
    if disk.model.block_size != saved_model.block_size:
        raise StorageError(
            "supplied disk's block size differs from the saved layout"
        )
    cost_model = CostModel(
        disk.model,
        dim,
        n,
        fractal_dim=cm["fractal_dim"],
        data_space_volume=cm["data_space_volume"],
        metric=metric,
        k=cm["k"],
    )
    tree = IQTree(
        points,
        solution,
        disk,
        metric,
        cost_model,
        trace=None,
        charge_directory=bool(meta["charge_directory"]),
        codec_mode=codec_mode,
        directory_codec=directory_codec,
    )
    wal_seq = meta.get("wal_seq", 0)
    if not isinstance(wal_seq, int) or wal_seq < 0:
        raise IntegrityError(
            f"{path}: malformed meta section: bad wal_seq {wal_seq!r}",
            section="meta",
        )
    tree._wal_seq = wal_seq
    return tree


def _decode_index_section(
    data: bytes, n_parts: int, n: int, dim: int, points: np.ndarray, path
) -> list[OptimizedPartition]:
    def bad(reason: str) -> IntegrityError:
        return IntegrityError(
            f"{path}: malformed index section: {reason}", section="index"
        )

    if len(data) < 4:
        raise bad("missing partition count")
    declared = int(np.frombuffer(data, dtype="<u4", count=1)[0])
    if declared != n_parts:
        raise bad(
            f"{declared} partitions declared, meta says {n_parts}"
        )
    if n_parts <= 0:
        raise bad("container holds no partitions")
    offset = 4
    fixed = n_parts * (1 + 4 + 16 * dim)
    if len(data) < offset + fixed:
        raise bad("arrays truncated")
    bits = np.frombuffer(data, dtype=np.uint8, count=n_parts, offset=offset)
    offset += n_parts
    counts = np.frombuffer(data, dtype="<u4", count=n_parts, offset=offset)
    offset += 4 * n_parts
    lowers = np.frombuffer(
        data, dtype="<f8", count=n_parts * dim, offset=offset
    ).reshape(n_parts, dim)
    offset += 8 * n_parts * dim
    uppers = np.frombuffer(
        data, dtype="<f8", count=n_parts * dim, offset=offset
    ).reshape(n_parts, dim)
    offset += 8 * n_parts * dim
    total = int(counts.sum())
    if len(data) != offset + 8 * total:
        raise bad("index array length disagrees with partition counts")
    indices = np.frombuffer(data, dtype="<i8", count=total, offset=offset)

    if np.any(bits < 1) or np.any(bits > 32):
        raise bad("bits per dimension out of [1, 32]")
    if np.any(counts < 1):
        raise bad("empty partition")
    if np.any(lowers > uppers):
        raise bad("partition MBR has lower > upper")
    if total > n:
        raise bad("more partition members than points")
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        raise bad("partition index arrays out of range")
    if np.unique(indices).size != total:
        raise bad("partition index arrays overlap")

    solution = []
    start = 0
    for j in range(n_parts):
        stop = start + int(counts[j])
        part = Partition(
            indices[start:stop].copy(), MBR(lowers[j], uppers[j])
        )
        solution.append(OptimizedPartition(part, int(bits[j])))
        start = stop
    return solution


def _apply_codecs(
    solution: list[OptimizedPartition], codecs, dim: int, path
) -> list[OptimizedPartition]:
    """Attach the meta section's per-page codec tags to the solution."""
    from dataclasses import replace

    from repro.quantization.codecs import CODEC_PQ

    def bad(reason: str) -> IntegrityError:
        return IntegrityError(
            f"{path}: malformed meta section: {reason}", section="meta"
        )

    if not isinstance(codecs, list) or len(codecs) != len(solution):
        raise bad("codecs list length disagrees with partition count")
    out: list[OptimizedPartition] = []
    for j, (opt, entry) in enumerate(zip(solution, codecs)):
        if entry == 0:
            out.append(opt)
            continue
        if (
            not isinstance(entry, list)
            or len(entry) != 4
            or entry[0] != CODEC_PQ
            or not isinstance(entry[1], int)
            or not 1 <= entry[1] <= 16
            or not isinstance(entry[2], int)
            or not 1 <= entry[2] <= dim
            or not isinstance(entry[3], (int, float))
            or not 1.0 <= float(entry[3]) < 32.0
        ):
            raise bad(f"bad codec entry for page {j}: {entry!r}")
        out.append(
            replace(
                opt,
                codec=CODEC_PQ,
                pq_bits=int(entry[1]),
                pq_sub=int(entry[2]),
                eff_bits=float(entry[3]),
            )
        )
    return out


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------
@dataclass
class SectionStatus:
    """Verification outcome of one container section."""

    name: str
    ok: bool
    detail: str


@dataclass
class FsckReport:
    """Per-section verification report of one container file."""

    path: str
    version: int
    sections: list[SectionStatus]

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.sections)

    def summary(self) -> str:
        lines = [f"{self.path}: IQTREE{self.version:02d} container"]
        for s in self.sections:
            mark = "ok " if s.ok else "BAD"
            lines.append(f"  {s.name:<8} {mark}  {s.detail}")
        bad = [s.name for s in self.sections if not s.ok]
        lines.append(
            "status: clean" if not bad else f"status: corrupt ({', '.join(bad)})"
        )
        return "\n".join(lines)


def verify_container(path, expect_codec: str | None = None) -> FsckReport:
    """Verify a container file section by section without loading it.

    Unlike :func:`load_iqtree`, which stops at the first problem, this
    checks every section independently and reports all of them -- the
    engine behind ``python -m repro fsck``.

    ``expect_codec`` (one of ``grid``/``pq``/``ef``/``auto``) adds a
    ``codec`` section asserting the container's declared codec policy
    matches the one the index was supposedly built with, using the same
    mapping as ``IQTree.build(codec=...)``.
    """
    report = _verify_container(path, expect_codec)
    if REGISTRY.enabled:
        outcome = "ok" if report.ok else "corrupt"
        CONTAINER_OPS.inc(op="fsck", outcome=outcome)
    return report


def _codec_expectation_status(
    codec_mode: str, directory_codec: str, expect: str
) -> SectionStatus:
    """One fsck line comparing declared codec meta with an expectation.

    Mirrors the ``IQTree.build`` codec-policy mapping: ``grid`` means
    grid pages over a dense directory, ``pq`` / ``auto`` name the page
    codec mode, and ``ef`` names the directory encoding (its pages stay
    grid).
    """
    matched = {
        "grid": codec_mode == "grid" and directory_codec == "dense",
        "pq": codec_mode == "pq",
        "ef": directory_codec == "ef",
        "auto": codec_mode == "auto",
    }.get(expect)
    if matched is None:
        return SectionStatus(
            "codec", False, f"unknown expectation {expect!r}"
        )
    detail = (
        f"pages={codec_mode} directory={directory_codec} "
        f"(expected {expect})"
    )
    return SectionStatus("codec", matched, detail)


def _verify_container(path, expect_codec: str | None = None) -> FsckReport:
    raw = Path(path).read_bytes()
    if raw[: len(MAGIC_V1)] == MAGIC_V1:
        return _fsck_v1(raw, path, expect_codec)
    sections: list[SectionStatus] = []
    report = FsckReport(str(path), 2, sections)
    if raw[: len(MAGIC_V2)] != MAGIC_V2:
        sections.append(
            SectionStatus("header", False, "not an IQ-tree container")
        )
        return report
    try:
        spans = _v2_spans(raw, path)
    except IntegrityError as exc:
        # Without a trustworthy header no other section can be located.
        sections.append(SectionStatus("header", False, str(exc)))
        for name in SECTIONS[1:]:
            sections.append(
                SectionStatus(name, False, "unverifiable: bad header")
            )
        return report
    sections.append(
        SectionStatus("header", True, f"{_V2_HEADER_END} bytes, CRC ok")
    )
    fields = _V2_HEADER.unpack(raw[len(MAGIC_V2) : _V2_HEADER_END])
    crcs = dict(zip(("meta", "index", "payload"), fields[3:6]))
    for name in ("meta", "index", "payload"):
        start, stop = spans[name]
        data = raw[start:stop]
        if _crc(data) != crcs[name]:
            sections.append(
                SectionStatus(name, False, f"CRC mismatch ({stop - start} bytes)")
            )
        else:
            sections.append(
                SectionStatus(name, True, f"{stop - start} bytes, CRC ok")
            )
    if report.ok:
        # CRCs fine: run the full structural parse too (cheap relative
        # to fsck's purpose, and it catches crafted-but-valid CRCs).
        try:
            _load_v2(raw, path, None)
        except Exception as exc:  # noqa: BLE001
            section = getattr(exc, "section", None) or "index"
            for s in sections:
                if s.name == section:
                    s.ok = False
                    s.detail = f"parse failed: {exc}"
    if expect_codec is not None:
        meta_ok = any(s.name == "meta" and s.ok for s in sections)
        if meta_ok:
            meta = json.loads(raw[slice(*spans["meta"])])
            sections.append(
                _codec_expectation_status(
                    meta.get("codec_mode", "grid"),
                    meta.get("directory_codec", "dense"),
                    expect_codec,
                )
            )
        else:
            sections.append(
                SectionStatus("codec", False, "unverifiable: bad meta")
            )
    return report


def _fsck_v1(
    raw: bytes, path, expect_codec: str | None = None
) -> FsckReport:
    sections: list[SectionStatus] = []
    report = FsckReport(str(path), 1, sections)
    if expect_codec is not None:
        # Legacy v1 predates codec tags entirely: grid-everything.
        sections.append(
            _codec_expectation_status("grid", "dense", expect_codec)
        )
    note = "legacy v1: no checksum"
    offset = len(MAGIC_V1)
    if len(raw) < offset + 8:
        sections.append(SectionStatus("header", False, "truncated"))
        return report
    header_len = int.from_bytes(raw[offset : offset + 8], "little")
    offset += 8
    try:
        header = json.loads(raw[offset : offset + header_len])
        n, dim = int(header["n_points"]), int(header["dim"])
    except (ValueError, KeyError, TypeError):
        sections.append(SectionStatus("header", False, "unparseable JSON"))
        return report
    sections.append(
        SectionStatus("header", True, f"JSON parses ({note})")
    )
    have = len(raw) - offset - header_len
    need = n * dim * 4
    sections.append(
        SectionStatus(
            "payload",
            have >= need,
            f"{have} of {need} float32 bytes ({note}, lossy precision)",
        )
    )
    return report


# ----------------------------------------------------------------------
# Legacy v1 (read path + explicit writer for migration tests/benches)
# ----------------------------------------------------------------------
def write_legacy_v1(tree: IQTree, path) -> None:
    """Write the deprecated ``IQTREE01`` format (float32, JSON index).

    Exists only so tests and benchmarks can produce v1 containers to
    exercise the legacy read path and measure v2 against; everything
    else should use :func:`save_iqtree`.
    """
    tree._ensure_clean()
    model = tree.disk.model
    header = {
        "n_points": tree.n_points,
        "dim": tree.dim,
        "metric": tree.metric.name,
        "charge_directory": tree.charge_directory,
        "disk": {
            "t_seek": model.t_seek,
            "t_xfer": model.t_xfer,
            "block_size": model.block_size,
        },
        "cost_model": {
            "fractal_dim": tree.cost_model.fractal_dim,
            "data_space_volume": tree.cost_model.data_space_volume,
            "k": tree.cost_model.k,
        },
        "partitions": [
            {
                "indices": opt.partition.indices.tolist(),
                "bits": opt.bits,
            }
            for opt in tree._partitions
        ],
    }
    header_bytes = json.dumps(header).encode("utf-8")
    payload = tree.points.astype("<f4").tobytes()
    with open(path, "wb") as handle:
        handle.write(MAGIC_V1)
        handle.write(len(header_bytes).to_bytes(8, "little"))
        handle.write(header_bytes)
        handle.write(payload)


def _load_v1(raw: bytes, path, disk: SimulatedDisk | None) -> IQTree:
    offset = len(MAGIC_V1)
    header_len = int.from_bytes(raw[offset : offset + 8], "little")
    offset += 8
    try:
        header = json.loads(raw[offset : offset + header_len])
    except ValueError as exc:  # JSON or UTF-8 decoding failure
        raise StorageError(f"{path}: corrupt header") from exc
    offset += header_len

    n, dim = header["n_points"], header["dim"]
    need = n * dim * 4
    if len(raw) - offset < need:
        raise StorageError(f"{path}: truncated coordinate payload")
    points = (
        np.frombuffer(raw, dtype="<f4", count=n * dim, offset=offset)
        .reshape(n, dim)
        .astype(np.float64)
    )

    saved_model = DiskModel(**header["disk"])
    disk = disk or SimulatedDisk(saved_model)
    if disk.model.block_size != saved_model.block_size:
        raise StorageError(
            "supplied disk's block size differs from the saved layout"
        )
    metric = get_metric(header["metric"])
    cm = header["cost_model"]
    cost_model = CostModel(
        disk.model,
        dim,
        n,
        fractal_dim=cm["fractal_dim"],
        data_space_volume=cm["data_space_volume"],
        metric=metric,
        k=cm["k"],
    )
    solution = []
    seen: set[int] = set()
    for p in header["partitions"]:
        indices = np.asarray(p["indices"], dtype=np.int64)
        if indices.size == 0 or indices.min() < 0 or indices.max() >= n:
            raise StorageError(
                f"{path}: partition index arrays out of range"
            )
        members = set(indices.tolist())
        if len(members) != indices.size or members & seen:
            raise StorageError(
                f"{path}: partition index arrays inconsistent"
            )
        seen |= members
        solution.append(
            OptimizedPartition(Partition.of(points, indices), int(p["bits"]))
        )
    return IQTree(
        points,
        solution,
        disk,
        metric,
        cost_model,
        trace=None,
        charge_directory=header["charge_directory"],
    )
