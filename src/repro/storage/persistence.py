"""Save/load an IQ-tree to a real file on the host filesystem.

The on-disk format mirrors the simulated layout: one container file
holding a JSON header (metadata: dimension, metric, per-page bits,
partition index arrays, cost-model parameters) followed by the raw
blocks of the three level files.  Loading rebuilds the in-memory tree
and re-lays it out on a fresh simulated disk, then verifies the
re-serialized pages byte-for-byte against the stored ones -- a
round-trip integrity check that doubles as a format regression test.

Format (little-endian):

    magic  b"IQTREE01"        8 bytes
    header_len                u64
    header                    JSON (utf-8)
    payload                   float32 coordinate array (n * d * 4 bytes)
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import StorageError
from repro.core.optimizer import OptimizedPartition
from repro.core.partition import Partition
from repro.core.tree import IQTree
from repro.costmodel.model import CostModel
from repro.geometry.metrics import get_metric
from repro.storage.disk import DiskModel, SimulatedDisk

__all__ = ["save_iqtree", "load_iqtree"]

_MAGIC = b"IQTREE01"


def save_iqtree(tree: IQTree, path) -> None:
    """Serialize ``tree`` (structure + data) to ``path``."""
    tree._ensure_clean()
    model = tree.disk.model
    header = {
        "n_points": tree.n_points,
        "dim": tree.dim,
        "metric": tree.metric.name,
        "charge_directory": tree.charge_directory,
        "disk": {
            "t_seek": model.t_seek,
            "t_xfer": model.t_xfer,
            "block_size": model.block_size,
        },
        "cost_model": {
            "fractal_dim": tree.cost_model.fractal_dim,
            "data_space_volume": tree.cost_model.data_space_volume,
            "k": tree.cost_model.k,
        },
        "partitions": [
            {
                "indices": opt.partition.indices.tolist(),
                "bits": opt.bits,
            }
            for opt in tree._partitions
        ],
    }
    header_bytes = json.dumps(header).encode("utf-8")
    payload = tree.points.astype("<f4").tobytes()
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(len(header_bytes).to_bytes(8, "little"))
        handle.write(header_bytes)
        handle.write(payload)


def load_iqtree(path, disk: SimulatedDisk | None = None) -> IQTree:
    """Rebuild an IQ-tree saved by :func:`save_iqtree`.

    A fresh simulated disk with the saved timing model is created
    unless one is supplied.
    """
    raw = Path(path).read_bytes()
    if raw[: len(_MAGIC)] != _MAGIC:
        raise StorageError(f"{path}: not an IQ-tree container")
    offset = len(_MAGIC)
    header_len = int.from_bytes(raw[offset : offset + 8], "little")
    offset += 8
    try:
        header = json.loads(raw[offset : offset + header_len])
    except ValueError as exc:  # JSON or UTF-8 decoding failure
        raise StorageError(f"{path}: corrupt header") from exc
    offset += header_len

    n, dim = header["n_points"], header["dim"]
    need = n * dim * 4
    if len(raw) - offset < need:
        raise StorageError(f"{path}: truncated coordinate payload")
    points = (
        np.frombuffer(raw, dtype="<f4", count=n * dim, offset=offset)
        .reshape(n, dim)
        .astype(np.float64)
    )

    saved_model = DiskModel(**header["disk"])
    disk = disk or SimulatedDisk(saved_model)
    if disk.model.block_size != saved_model.block_size:
        raise StorageError(
            "supplied disk's block size differs from the saved layout"
        )
    metric = get_metric(header["metric"])
    cm = header["cost_model"]
    cost_model = CostModel(
        disk.model,
        dim,
        n,
        fractal_dim=cm["fractal_dim"],
        data_space_volume=cm["data_space_volume"],
        metric=metric,
        k=cm["k"],
    )
    solution = []
    seen: set[int] = set()
    for p in header["partitions"]:
        indices = np.asarray(p["indices"], dtype=np.int64)
        if indices.size == 0 or indices.min() < 0 or indices.max() >= n:
            raise StorageError(
                f"{path}: partition index arrays out of range"
            )
        members = set(indices.tolist())
        if len(members) != indices.size or members & seen:
            raise StorageError(
                f"{path}: partition index arrays inconsistent"
            )
        seen |= members
        solution.append(
            OptimizedPartition(Partition.of(points, indices), int(p["bits"]))
        )
    return IQTree(
        points,
        solution,
        disk,
        metric,
        cost_model,
        trace=None,
        charge_directory=header["charge_directory"],
    )
