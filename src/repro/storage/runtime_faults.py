"""Deterministic fault injection on the live (timed) read path.

:mod:`repro.storage.faults` attacks containers *at rest*; this module
attacks the running index.  A :class:`ReadFaultInjector` installed on a
:class:`~repro.storage.disk.SimulatedDisk` intercepts every timed block
delivery (``read_block`` / ``read_run`` / ``read_batched``) and fires
scheduled faults of three kinds:

``transient``
    The read fails with :class:`~repro.exceptions.TransientReadError`
    but a retry may succeed (scheduled per attempt).
``persistent``
    The read fails with :class:`~repro.exceptions.PersistentReadError`
    on every attempt; retrying is futile.
``corrupt``
    The read *succeeds* but delivers silently corrupted bytes; the
    per-block CRC sidecar in :class:`~repro.storage.blockfile.BlockFile`
    catches it and raises :class:`~repro.exceptions.IntegrityError`
    carrying the faulted disk address.

Faults are keyed on exact ``(address, attempt)`` pairs -- never sampled
-- so any failing schedule replays bit-identically.

On top of the adversary sit the defenses: :class:`RetryPolicy` (bounded
attempts, deterministic backoff charged to the
:class:`~repro.storage.disk.IOStats` ledger as extra seeks),
:class:`QuarantineList` (addresses proven unreadable, evicted from the
:class:`~repro.storage.cache.BufferPool` and excluded from future
scheduler windows), and :class:`FaultContext`, which ties both to a
disk and runs individual reads (:meth:`FaultContext.run`) or whole
batched fetches (:func:`fetch_with_quarantine`) to completion or
quarantine.  Queries consume the quarantine to degrade gracefully
instead of crashing -- see ``docs/robustness.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.exceptions import (
    IntegrityError,
    PersistentReadError,
    ReadFaultError,
    StorageError,
    TransientReadError,
)
from repro.obs.instruments import (
    FAULT_QUARANTINES,
    FAULT_RETRIES,
    READ_FAULTS,
    REGISTRY,
)
from repro.storage.faults import corrupt_bytes

__all__ = [
    "CORRUPT",
    "FaultContext",
    "LostPage",
    "PERSISTENT",
    "QuarantineList",
    "ReadFaultInjector",
    "RetryPolicy",
    "TRANSIENT",
    "fault_address",
    "fetch_with_quarantine",
]

#: Fault kinds understood by :meth:`ReadFaultInjector.schedule`.
TRANSIENT = "transient"
PERSISTENT = "persistent"
CORRUPT = "corrupt"
_KINDS = frozenset({TRANSIENT, PERSISTENT, CORRUPT})


def fault_address(exc: BaseException) -> int | None:
    """The disk address a read fault points at, or ``None``.

    Media errors carry it as ``address``; CRC mismatches (runtime
    corruption) carry it as ``block``.  Container-level
    :class:`~repro.exceptions.IntegrityError` (``section`` set, no
    block) yields ``None`` -- those are not retryable read faults.
    """
    if isinstance(exc, ReadFaultError):
        return exc.address
    if isinstance(exc, IntegrityError):
        return exc.block
    return None


class ReadFaultInjector:
    """A deterministic schedule of read faults, keyed by disk address.

    The injector counts read attempts per address (``attempts_seen``),
    so a fault scheduled for ``(address, attempt)`` fires on exactly the
    ``attempt``-th delivery of that block and never again.  Faults
    scheduled with :meth:`schedule_always` fire on every attempt not
    claimed by a per-attempt entry.

    An injector with no scheduled faults is a pure observer: installing
    one turns on CRC verification and attempt counting but delivers
    every payload untouched -- the chaos CLI uses this to discover which
    addresses a workload actually touches before aiming faults at them.
    """

    def __init__(self):
        self._per_attempt: dict[int, dict[int, str]] = {}
        self._always: dict[int, str] = {}
        self._attempts: dict[int, int] = {}
        #: every fault fired, as ``(address, attempt, kind)`` -- the
        #: audit trail tests assert the schedule against.
        self.fired: list[tuple[int, int, str]] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, address: int, kind: str, attempts: Iterable[int] = (0,)
    ) -> None:
        """Fire a ``kind`` fault on the given read attempts of ``address``."""
        self._check_kind(kind)
        slot = self._per_attempt.setdefault(int(address), {})
        for attempt in attempts:
            if attempt < 0:
                raise StorageError("attempt numbers are 0-based")
            slot[int(attempt)] = kind

    def schedule_always(self, address: int, kind: str) -> None:
        """Fire a ``kind`` fault on every read attempt of ``address``."""
        self._check_kind(kind)
        self._always[int(address)] = kind

    # Shorthands for the four canonical schedules.
    def fail_once(self, address: int) -> None:
        """One transient failure on the next read of ``address``."""
        self.schedule(address, TRANSIENT)

    def fail_always(self, address: int) -> None:
        """Permanent media failure of ``address``."""
        self.schedule_always(address, PERSISTENT)

    def corrupt_once(self, address: int) -> None:
        """Silent corruption on the next read of ``address``."""
        self.schedule(address, CORRUPT)

    def corrupt_always(self, address: int) -> None:
        """Silent corruption on every read of ``address``."""
        self.schedule_always(address, CORRUPT)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attempts_seen(self) -> dict[int, int]:
        """Read attempts observed so far, per disk address (a copy)."""
        return dict(self._attempts)

    # ------------------------------------------------------------------
    # The delivery hook (called by BlockFile on every timed block)
    # ------------------------------------------------------------------
    def filter_read(self, address: int, payload: bytes) -> bytes:
        """Deliver one block, firing any fault scheduled for this attempt.

        Raises the media-error exceptions directly; corruption returns
        mutated bytes for the caller's CRC check to catch.
        """
        attempt = self._attempts.get(address, 0)
        self._attempts[address] = attempt + 1
        kind = self._per_attempt.get(address, {}).get(attempt)
        if kind is None:
            kind = self._always.get(address)
        if kind is None:
            return payload
        self.fired.append((address, attempt, kind))
        if REGISTRY.enabled:
            READ_FAULTS.inc(kind=kind)
        if kind == TRANSIENT:
            raise TransientReadError(
                f"transient read fault at disk address {address} "
                f"(attempt {attempt})",
                address=address,
                attempt=attempt,
            )
        if kind == PERSISTENT:
            raise PersistentReadError(
                f"persistent read fault at disk address {address} "
                f"(attempt {attempt})",
                address=address,
                attempt=attempt,
            )
        return corrupt_bytes(payload, salt=attempt)

    @staticmethod
    def _check_kind(kind: str) -> None:
        if kind not in _KINDS:
            raise StorageError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{sorted(_KINDS)}"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry of faulted reads.

    ``max_attempts`` counts total tries (first read included); before
    retry ``n`` (1-based) the disk is charged ``backoff_seeks * n``
    extra seeks -- a linear backoff in simulated time, flowing through
    the normal ledger/registry feed so query-cost attribution stays
    exact.
    """

    max_attempts: int = 3
    backoff_seeks: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise StorageError("max_attempts must be at least 1")
        if self.backoff_seeks < 0:
            raise StorageError("backoff_seeks must be non-negative")


class QuarantineList:
    """Disk addresses proven unreadable.

    Membership is by absolute disk address (the same space the
    :class:`~repro.storage.cache.BufferPool` keys on);
    :meth:`local_indices` projects the set into one file's extent for
    the scheduler's ``forbidden``/``avoid`` parameters.
    """

    def __init__(self):
        self._addresses: set[int] = set()

    def add(self, address: int) -> None:
        self._addresses.add(int(address))

    def __contains__(self, address: int) -> bool:
        return address in self._addresses

    def __len__(self) -> int:
        return len(self._addresses)

    def __iter__(self):
        return iter(sorted(self._addresses))

    @property
    def addresses(self) -> frozenset[int]:
        return frozenset(self._addresses)

    def local_indices(self, file) -> frozenset[int]:
        """Quarantined block indices inside ``file``'s extent."""
        if not file.sealed:
            return frozenset()
        base = file.extent_start
        return frozenset(
            a - base
            for a in self._addresses
            if base <= a < base + file.n_blocks
        )


class FaultContext:
    """Retry policy + quarantine + counters for one query session.

    One context is attached per tree (``tree.use_fault_tolerance()``);
    it owns the quarantine so that dropping the context restores fully
    pristine behavior -- a fault schedule can never poison later
    fault-free queries.  ``pool`` (optional) is the buffer pool to evict
    poisoned addresses from.
    """

    def __init__(self, policy: RetryPolicy | None = None, pool=None):
        self.policy = policy or RetryPolicy()
        self.quarantine = QuarantineList()
        self.pool = pool
        # Session counters, mirrored into repro.obs instruments.
        self.retries = 0
        self.quarantined = 0
        self.degraded_results = 0
        self.lost_pages = 0

    def poison(self, address: int) -> None:
        """Quarantine ``address`` and evict it from the buffer pool."""
        if address in self.quarantine:
            return
        self.quarantine.add(address)
        self.quarantined += 1
        if self.pool is not None:
            self.pool.invalidate(address)
        if REGISTRY.enabled:
            FAULT_QUARANTINES.inc()

    def run(self, fn: Callable[[], "object"], disk):
        """Run one timed read under the retry policy.

        Transient faults and CRC mismatches are retried up to
        ``policy.max_attempts`` times with backoff charged to ``disk``;
        persistent faults and exhausted retries poison the faulted
        address and re-raise.  Anything that is not a read fault (API
        misuse, container-level integrity failures) passes through
        untouched.
        """
        last: BaseException | None = None
        for attempt in range(self.policy.max_attempts):
            if attempt:
                disk.charge_backoff(self.policy.backoff_seeks * attempt)
                self.retries += 1
                if REGISTRY.enabled:
                    FAULT_RETRIES.inc()
            try:
                return fn()
            except TransientReadError as exc:
                last = exc
            except PersistentReadError as exc:
                if exc.address is not None:
                    self.poison(exc.address)
                raise
            except IntegrityError as exc:
                if exc.block is None:
                    raise  # container-level: not a runtime read fault
                last = exc  # corruption may clear on a re-read
        address = fault_address(last)
        if address is not None:
            self.poison(address)
        raise last


def fetch_with_quarantine(
    file,
    disk,
    ctx: FaultContext,
    indices: Sequence[int],
) -> tuple[dict[int, bytes], list[int]]:
    """Batched read that survives permanent block failures.

    Runs ``file.read_batched`` under ``ctx``'s retry policy, replanning
    around every block the retries prove dead, until the remaining
    blocks are all delivered.  Returns ``(payloads, lost)``: payloads
    maps file-local block index to bytes; ``lost`` is the sorted list of
    requested indices that could not be read (quarantined before or
    during this fetch).  Termination is guaranteed because every failed
    round quarantines at least one new address -- a round that fails
    without growing the quarantine re-raises instead of looping.
    """
    wanted = sorted(set(indices))
    lost: set[int] = set()
    while True:
        avoid = ctx.quarantine.local_indices(file)
        lost.update(i for i in wanted if i in avoid)
        remaining = [i for i in wanted if i not in lost]
        if not remaining:
            return {}, sorted(lost)
        try:
            payloads = ctx.run(
                lambda: file.read_batched(remaining, avoid=avoid), disk
            )
            return payloads, sorted(lost)
        except (ReadFaultError, IntegrityError) as exc:
            address = fault_address(exc)
            if address is None or address not in ctx.quarantine:
                raise  # not a poisonable fault: no progress possible


@dataclass(frozen=True)
class LostPage:
    """A second-level page a query could not read.

    ``page`` is the partition/page index, ``n_points`` how many points
    it holds, and ``mindist``/``maxdist`` the page MBR's distance bounds
    to the query point (``maxdist`` is ``inf`` for range queries, where
    only membership matters).  Reporting these keeps recall bounds
    honest: any of the ``n_points`` points could have been a result.
    """

    page: int
    n_points: int
    mindist: float
    maxdist: float
