"""Fixed-size-block files over a simulated disk.

A :class:`BlockFile` is a sequence of fixed-size byte blocks living in a
contiguous extent of a :class:`~repro.storage.disk.SimulatedDisk` address
space.  Writes are free (index construction cost is out of scope for the
paper's query-time experiments); reads are charged to the disk ledger.

Pages larger than one block (the X-tree's supernodes, variable-size exact
data runs) are supported by multi-block records.

Every block carries a CRC32 sidecar entry (kept in memory next to the
payload, never charged as I/O).  While a
:class:`~repro.storage.runtime_faults.ReadFaultInjector` is installed on
the disk, every timed read re-verifies the delivered payload against the
sidecar, so silently corrupted bytes surface as
:class:`~repro.exceptions.IntegrityError` instead of garbage results.
The pristine path (no injector) skips verification entirely -- one
attribute check -- so fault tolerance costs nothing when unused.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence

from repro.exceptions import IntegrityError, StorageError
from repro.storage.disk import SimulatedDisk


def _crc(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF

__all__ = ["BlockFile"]


class BlockFile:
    """An append-only file of fixed-size blocks with timed reads.

    Parameters
    ----------
    disk:
        The simulated disk that accounts read time.
    name:
        Human-readable label (shows up in repr/debugging only).
    """

    def __init__(self, disk: SimulatedDisk, name: str = "file"):
        self._disk = disk
        self.name = name
        self._blocks: list[bytes] = []
        #: per-block CRC32 sidecar, maintained on every write path and
        #: checked on timed reads while a fault injector is installed.
        self._crcs: list[int] = []
        self._extent_start: int | None = None

    # ------------------------------------------------------------------
    # Writing (free: construction time is out of scope)
    # ------------------------------------------------------------------
    def append_block(self, payload: bytes) -> int:
        """Append one block; returns its block index within the file.

        ``payload`` may be shorter than the block size (it is padded on
        read by the caller's deserializer) but must not exceed it.
        """
        self._check_not_sealed()
        if len(payload) > self.block_size:
            raise StorageError(
                f"payload of {len(payload)} bytes exceeds block size "
                f"{self.block_size}"
            )
        self._blocks.append(bytes(payload))
        self._crcs.append(_crc(self._blocks[-1]))
        return len(self._blocks) - 1

    def append_record(self, payload: bytes) -> tuple[int, int]:
        """Append a record spanning as many blocks as needed.

        Returns ``(first_block, n_blocks)``.
        """
        self._check_not_sealed()
        if len(payload) == 0:
            raise StorageError("cannot append an empty record")
        first = len(self._blocks)
        size = self.block_size
        for offset in range(0, len(payload), size):
            self._blocks.append(bytes(payload[offset : offset + size]))
            self._crcs.append(_crc(self._blocks[-1]))
        return first, len(self._blocks) - first

    def seal(self) -> None:
        """Freeze the file and place it on the disk's address space.

        After sealing, block addresses are fixed and reads are timed.
        """
        if self._extent_start is not None:
            raise StorageError("file already sealed")
        self._extent_start = self._disk.allocate_extent(len(self._blocks))

    def unseal(self) -> None:
        """Reopen a sealed file for appends (dynamic maintenance).

        The old extent is abandoned; the next :meth:`seal` allocates a
        fresh one.  Address space is never reclaimed -- acceptable for a
        simulator, and it keeps every extent contiguous.
        """
        self._extent_start = None

    # ------------------------------------------------------------------
    # Reading (timed)
    # ------------------------------------------------------------------
    def read_block(self, index: int) -> bytes:
        """Read one block with a (possibly sequential) timed access."""
        self._check_index(index)
        self._disk.read_blocks(self._address(index), 1)
        if self._disk.fault_injector is None:
            return self._blocks[index]
        return self._deliver(index)

    def read_run(self, start: int, count: int, wanted: int = -1) -> list[bytes]:
        """Read ``count`` consecutive blocks in one sequential transfer.

        ``wanted`` (if given) is how many of those blocks the caller
        actually needs; the remainder is accounted as over-read.
        """
        self._check_index(start)
        if count <= 0:
            raise StorageError("run length must be positive")
        self._check_index(start + count - 1)
        overread = 0 if wanted < 0 else max(0, count - wanted)
        self._disk.read_blocks(self._address(start), count, overread=overread)
        if self._disk.fault_injector is None:
            return self._blocks[start : start + count]
        return [self._deliver(i) for i in range(start, start + count)]

    def read_record(self, first_block: int, n_blocks: int) -> bytes:
        """Read a multi-block record as one sequential transfer."""
        parts = self.read_run(first_block, n_blocks)
        return b"".join(parts)

    def scan(self) -> list[bytes]:
        """Read the whole file in one sequential pass."""
        if len(self._blocks) == 0:
            return []
        return self.read_run(0, len(self._blocks))

    def read_batched(
        self, indices: Sequence[int], avoid: Iterable[int] = frozenset()
    ) -> dict[int, bytes]:
        """Fetch a known set of blocks with the optimal Section 2 strategy.

        Gaps shorter than the over-read window are read through instead of
        seeking; returns a mapping from block index to payload.

        ``avoid`` lists file-local block indices (e.g. quarantined pages)
        that must not be touched: they are dropped from the wanted set
        and never read through as gap fill -- runs split around them.
        """
        from repro.storage.scheduler import plan_batched_fetch

        avoid = frozenset(avoid)
        wanted_set = set(indices) - avoid
        indices = sorted(wanted_set)
        for index in indices:
            self._check_index(index)
        result: dict[int, bytes] = {}
        window = self._disk.model.overread_window
        for start, count, wanted in plan_batched_fetch(
            indices, window, forbidden=avoid
        ):
            payload = self.read_run(start, count, wanted=wanted)
            for offset, block in enumerate(payload):
                if start + offset in wanted_set:
                    result[start + offset] = block
        return result

    # ------------------------------------------------------------------
    # Untimed access (for construction / verification only)
    # ------------------------------------------------------------------
    def peek_block(self, index: int) -> bytes:
        """Read a block without charging any I/O time."""
        self._check_index(index)
        return self._blocks[index]

    def replace_block(self, index: int, payload: bytes) -> None:
        """Overwrite a block in place (used by dynamic maintenance)."""
        self._check_index(index)
        if len(payload) > self.block_size:
            raise StorageError("payload exceeds block size")
        self._blocks[index] = bytes(payload)
        self._crcs[index] = _crc(self._blocks[index])

    def block_crc(self, index: int) -> int:
        """CRC32 sidecar entry of one block (untimed, in-memory).

        This is the cheap content-identity check higher-level caches key
        on: the sidecar is updated by every write path
        (:meth:`append_block`, :meth:`append_record`,
        :meth:`replace_block`), so a decoded copy of a block is current
        exactly when its recorded CRC still matches this value.
        """
        self._check_index(index)
        return self._crcs[index]

    def content_crc32(self) -> int:
        """CRC32 over every block payload, in file order (untimed).

        Each block's length is mixed into the digest ahead of its bytes
        so moving padding between adjacent short blocks cannot cancel
        out.  Persistence snapshots this per level file and re-checks it
        after a reload re-layout.
        """
        crc = 0
        for block in self._blocks:
            crc = zlib.crc32(len(block).to_bytes(4, "little"), crc)
            crc = zlib.crc32(block, crc)
        return crc & 0xFFFFFFFF

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """Bytes per block (inherited from the disk model)."""
        return self._disk.model.block_size

    @property
    def n_blocks(self) -> int:
        """Number of blocks currently in the file."""
        return len(self._blocks)

    @property
    def extent_start(self) -> int:
        """Disk address of block 0 (requires the file to be sealed)."""
        if self._extent_start is None:
            raise StorageError("file not sealed yet")
        return self._extent_start

    @property
    def sealed(self) -> bool:
        """Whether the file has a fixed extent on the disk."""
        return self._extent_start is not None

    @property
    def disk(self) -> SimulatedDisk:
        """The simulated disk this file lives on."""
        return self._disk

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:
        sealed = self._extent_start is not None
        return (
            f"BlockFile(name={self.name!r}, blocks={len(self._blocks)}, "
            f"sealed={sealed})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deliver(self, index: int) -> bytes:
        """Deliver one just-transferred block through the fault injector.

        The injector may raise a :class:`~repro.exceptions.ReadFaultError`
        (media error) or substitute corrupted bytes; delivered payloads
        are then verified against the CRC sidecar, so silent corruption
        surfaces as :class:`~repro.exceptions.IntegrityError` carrying
        the faulted disk address.
        """
        address = self._address(index)
        payload = self._disk.fault_injector.filter_read(
            address, self._blocks[index]
        )
        if _crc(payload) != self._crcs[index]:
            raise IntegrityError(
                f"CRC sidecar mismatch for block {index} of file "
                f"{self.name!r} (disk address {address})",
                block=address,
            )
        return payload

    def _address(self, index: int) -> int:
        if self._extent_start is None:
            raise StorageError(
                f"file {self.name!r} must be sealed before timed reads"
            )
        return self._extent_start + index

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._blocks):
            raise StorageError(
                f"block {index} out of range [0, {len(self._blocks)})"
            )

    def _check_not_sealed(self) -> None:
        if self._extent_start is not None:
            raise StorageError("cannot append to a sealed file")
