"""Disk model and simulated-time accounting.

The reproduction substitutes the paper's physical HP-UX workstation disk
with a deterministic model characterized by two parameters:

* ``t_seek`` -- time for one random positioning operation, and
* ``t_xfer`` -- time to transfer one block sequentially.

Every index structure in this repository performs its page reads through
a :class:`SimulatedDisk`, which accrues simulated time in an
:class:`IOStats` ledger.  "Query time" in all experiments is the
simulated I/O time of this ledger, so all methods are compared under
exactly the same device model.

The key derived quantity is the *over-read window* ``v = t_seek /
t_xfer``: when two wanted blocks are fewer than ``v`` blocks apart it is
cheaper to read the gap than to seek over it (paper, Section 2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.exceptions import StorageError
from repro.obs.instruments import (
    DISK_BLOCKS_OVERREAD,
    DISK_BLOCKS_READ,
    DISK_SEEKS,
    DISK_SIM_SECONDS,
    REGISTRY,
)

__all__ = ["DiskModel", "IOStats", "SimulatedDisk"]


@dataclass(frozen=True)
class DiskModel:
    """Timing parameters of the simulated disk.

    Parameters
    ----------
    t_seek:
        Seconds per random seek (default 10 ms -- a late-1990s disk).
    t_xfer:
        Seconds to transfer one block of ``block_size`` bytes
        sequentially (default 0.8 ms for an 8 KiB block, i.e. a
        ~10 MB/s sustained transfer rate).
    block_size:
        Bytes per block.  All files in the storage layer use this
        granularity.
    """

    t_seek: float = 0.010
    t_xfer: float = 0.0008
    block_size: int = 8192

    def __post_init__(self) -> None:
        """Reject degenerate models up front.

        A zero or negative seek/transfer time would silently zero out
        entire terms of the Section 3 cost model (and the drift monitor
        comparing against it), so all three parameters must be strictly
        positive.  Raises :class:`ValueError` -- the standard signal for
        a bad constructor argument.
        """
        if self.t_seek <= 0:
            raise ValueError(
                f"t_seek must be positive, got {self.t_seek!r}"
            )
        if self.t_xfer <= 0:
            raise ValueError(
                f"t_xfer must be positive, got {self.t_xfer!r}"
            )
        if self.block_size <= 0:
            raise ValueError(
                f"block_size must be positive, got {self.block_size!r}"
            )

    @property
    def overread_window(self) -> float:
        """``v = t_seek / t_xfer``: max gap worth over-reading (Sec. 2)."""
        return self.t_seek / self.t_xfer

    def scan_time(self, n_blocks: int) -> float:
        """Time for one seek plus a sequential read of ``n_blocks``."""
        if n_blocks < 0:
            raise StorageError("n_blocks must be non-negative")
        if n_blocks == 0:
            return 0.0
        return self.t_seek + n_blocks * self.t_xfer

    def random_read_time(self, n_blocks: int) -> float:
        """Time for ``n_blocks`` independent single-block random reads."""
        if n_blocks < 0:
            raise StorageError("n_blocks must be non-negative")
        return n_blocks * (self.t_seek + self.t_xfer)


@dataclass
class IOStats:
    """Accumulated I/O accounting for one or more queries.

    Attributes
    ----------
    seeks:
        Number of random positioning operations performed.
    blocks_read:
        Number of blocks transferred (wanted or over-read).
    blocks_overread:
        Subset of ``blocks_read`` transferred purely to bridge a gap.
    elapsed:
        Total simulated time in seconds.

    The ledger is *pure bookkeeping*: none of its methods (including
    :meth:`merged_with` and :meth:`reset`) touch the process-wide
    metrics registry.  Registry disk counters are fed exclusively by
    the physical charge points on :class:`SimulatedDisk`
    (:meth:`SimulatedDisk.read_blocks` and
    :meth:`SimulatedDisk.charge_backoff`), so snapshot/delta/merge
    arithmetic in higher layers (e.g. the batch query engine) can never
    double-count an I/O.
    """

    seeks: int = 0
    blocks_read: int = 0
    blocks_overread: int = 0
    elapsed: float = 0.0

    def add_seek(self, model: DiskModel, count: int = 1) -> None:
        """Record ``count`` random seeks."""
        if count < 0:
            raise StorageError("seek count must be non-negative")
        self.seeks += count
        self.elapsed += count * model.t_seek

    def add_transfer(
        self, model: DiskModel, blocks: int, overread: int = 0
    ) -> None:
        """Record a sequential transfer of ``blocks`` blocks.

        ``overread`` counts how many of those blocks were read only to
        bridge a gap between wanted blocks.
        """
        if blocks < 0 or overread < 0 or overread > blocks:
            raise StorageError("invalid transfer accounting")
        self.blocks_read += blocks
        self.blocks_overread += overread
        self.elapsed += blocks * model.t_xfer

    def merged_with(self, other: "IOStats") -> "IOStats":
        """Return a new ledger with both ledgers' counters summed.

        Carries every counter field, so merging and then resetting the
        inputs round-trips exactly (no information lives outside the
        four counters).
        """
        return IOStats(
            seeks=self.seeks + other.seeks,
            blocks_read=self.blocks_read + other.blocks_read,
            blocks_overread=self.blocks_overread + other.blocks_overread,
            elapsed=self.elapsed + other.elapsed,
        )

    def as_dict(self) -> dict:
        """The four counters as a plain dict (JSON/trace export)."""
        return {
            "seeks": self.seeks,
            "blocks_read": self.blocks_read,
            "blocks_overread": self.blocks_overread,
            "elapsed": self.elapsed,
        }

    def reset(self) -> None:
        """Zero all counters."""
        self.seeks = 0
        self.blocks_read = 0
        self.blocks_overread = 0
        self.elapsed = 0.0


class SimulatedDisk:
    """A disk head over a linear block address space.

    The disk tracks the head position so that reading the block right
    after the previous read continues sequentially at ``t_xfer`` per
    block, while any other target costs a seek first.  Multiple
    :class:`~repro.storage.blockfile.BlockFile` instances can share one
    disk; each file occupies a contiguous extent of the address space,
    mirroring the paper's layout of the three IQ-tree levels in three
    distinct files.
    """

    def __init__(self, model: DiskModel | None = None):
        self.model = model or DiskModel()
        self.stats = IOStats()
        self._head = -1  # unknown position: the first read pays a seek
        self._next_extent_start = 0
        #: optional ReadFaultInjector consulted by every timed BlockFile
        #: read over this disk (None = pristine fast path).
        self.fault_injector = None
        # Charging is head-position-dependent, so two threads racing a
        # read would corrupt the seek accounting.  The lock makes each
        # individual charge atomic; *determinism* across threads is the
        # caller's job (the batch engine keeps every charge on its
        # coordinator thread precisely so ledgers replay bit-identically
        # regardless of the worker count).
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks cannot be copied/pickled; the clone gets a fresh one.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Fault injection (repro.storage.runtime_faults)
    # ------------------------------------------------------------------
    def install_fault_injector(self, injector) -> None:
        """Route every timed read over this disk through ``injector``.

        Installing an injector also turns on per-block CRC verification
        in the block files on this disk, so silently corrupted payloads
        surface as :class:`~repro.exceptions.IntegrityError`.
        """
        self.fault_injector = injector

    def clear_fault_injector(self) -> None:
        """Return to the pristine (unchecked, unfaulted) read path."""
        self.fault_injector = None

    # ------------------------------------------------------------------
    # Extent allocation (one extent per file)
    # ------------------------------------------------------------------
    def allocate_extent(self, n_blocks: int) -> int:
        """Reserve ``n_blocks`` contiguous block addresses; return start."""
        if n_blocks < 0:
            raise StorageError("extent size must be non-negative")
        start = self._next_extent_start
        self._next_extent_start += n_blocks
        return start

    # ------------------------------------------------------------------
    # Timed operations
    # ------------------------------------------------------------------
    def read_blocks(self, start: int, count: int, overread: int = 0) -> None:
        """Account a read of ``count`` consecutive blocks at ``start``.

        A seek is charged unless the head is already positioned at
        ``start`` from a previous sequential read.
        """
        if count <= 0:
            return
        with self._lock:
            seeked = start != self._head
            if seeked:
                self.stats.add_seek(self.model)
            self.stats.add_transfer(self.model, count, overread=overread)
            self._head = start + count
            if REGISTRY.enabled:
                # The one place physical reads feed the metrics registry;
                # see the IOStats docstring for the accounting discipline.
                if seeked:
                    DISK_SEEKS.inc()
                    DISK_SIM_SECONDS.inc(self.model.t_seek)
                DISK_BLOCKS_READ.inc(count)
                if overread:
                    DISK_BLOCKS_OVERREAD.inc(overread)
                DISK_SIM_SECONDS.inc(count * self.model.t_xfer)

    def read_block(self, address: int) -> None:
        """Account a single-block read at ``address``."""
        self.read_blocks(address, 1)

    def charge_backoff(self, seeks: int) -> None:
        """Charge a retry backoff of ``seeks`` random seeks.

        Simulated backoff between read retries is modelled as extra
        positioning operations (the head re-settles on the target
        track).  Goes through the same ledger *and* registry feed as a
        physical seek so span attribution and the metrics discipline
        (registry disk counters mirror the ledger) both stay exact; the
        head is parked because the interrupted transfer lost position.
        """
        if seeks <= 0:
            return
        with self._lock:
            self.stats.add_seek(self.model, seeks)
            self._head = -1
            if REGISTRY.enabled:
                DISK_SEEKS.inc(seeks)
                DISK_SIM_SECONDS.inc(seeks * self.model.t_seek)

    @property
    def head(self) -> int:
        """Current head position (next sequential block address)."""
        return self._head

    def reset_stats(self) -> None:
        """Clear accounting; keep head position and allocations."""
        self.stats.reset()

    def park(self) -> None:
        """Invalidate head position so the next read pays a seek.

        Called between queries to model an arbitrary intervening workload.
        """
        self._head = -1
