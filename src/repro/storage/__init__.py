"""Simulated storage substrate.

The paper measures query cost as elapsed time on a physical disk; this
subpackage provides the equivalent substrate for a reproducible,
hardware-independent build:

* :mod:`repro.storage.disk` -- a disk model with seek/transfer timing and
  an accounting ledger (:class:`IOStats`), plus a :class:`SimulatedDisk`
  that executes seek / sequential-read operations against the ledger.
* :mod:`repro.storage.blockfile` -- fixed-size-block files whose reads
  are routed through a simulated disk.
* :mod:`repro.storage.serializer` -- byte-level (de)serialization of the
  page types used by the indexes.
* :mod:`repro.storage.scheduler` -- the paper's Section 2 access
  strategies: the optimal batched fetch for a known block set, and the
  cost-balance clustering used during nearest-neighbor search.
* :mod:`repro.storage.persistence` -- crash-safe, checksummed container
  files for saving/loading an IQ-tree on the host filesystem.
* :mod:`repro.storage.faults` -- deterministic fault injection
  (truncation, torn writes, bit flips) used to prove the persistence
  layer detects every corruption mode; also the shared fault vocabulary
  re-exporting the runtime adversary.
* :mod:`repro.storage.runtime_faults` -- fault injection on the live
  (timed) read path plus the defenses: retry policy, page quarantine,
  and the fetch loop degraded-mode queries are built on.
"""

from repro.storage.disk import DiskModel, IOStats, SimulatedDisk
from repro.storage.blockfile import BlockFile
from repro.storage.scheduler import (
    plan_batched_fetch,
    batched_fetch_cost,
    cost_balance_window,
)

__all__ = [
    "DiskModel",
    "IOStats",
    "SimulatedDisk",
    "BlockFile",
    "plan_batched_fetch",
    "batched_fetch_cost",
    "cost_balance_window",
]
