"""An LRU buffer pool over the simulated disk.

The paper measures cold queries (every page read hits the disk), but
any real deployment keeps a buffer pool; Section 2's reference [19]
(Seeger et al.) is exactly about reading page sets under a limited
buffer.  :class:`BufferPool` adds that layer: block reads that hit the
pool cost nothing, misses are charged normally and inserted with LRU
replacement.

The pool works at the disk-address level, so one pool naturally spans
all three IQ-tree files (hot directory blocks stay resident while cold
data pages cycle), and the same pool object can be shared by several
indexes on one disk.

The pool is thread-safe.  Residency is *lock-striped*: the address
space is sharded over ``stripes`` independent LRU segments, each behind
its own lock, so concurrent workers touching different blocks never
serialize on one global mutex.  With the default single stripe the
eviction behavior is exactly the classic global LRU the earlier
milestones shipped (and the tests pin).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.exceptions import StorageError
from repro.obs.instruments import (
    POOL_EVICTIONS,
    POOL_HITS,
    POOL_MISSES,
    REGISTRY,
)
from repro.storage.blockfile import BlockFile

__all__ = ["BufferPool", "CachedBlockFile"]


class BufferPool:
    """A fixed-capacity, lock-striped LRU set of resident addresses.

    Parameters
    ----------
    capacity:
        Maximum number of blocks held (0 disables caching).
    stripes:
        Number of independent LRU segments the address space is sharded
        over (``address % stripes``).  One stripe (the default) is the
        classic global LRU; more stripes trade a slightly partitioned
        eviction policy for uncontended concurrent access.  ``capacity``
        is split as evenly as possible across stripes.
    """

    def __init__(self, capacity: int, stripes: int = 1):
        if capacity < 0:
            raise StorageError("pool capacity must be non-negative")
        if stripes < 1:
            raise StorageError("pool must have at least one stripe")
        self.capacity = int(capacity)
        self.stripes = int(stripes)
        self._shards: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.stripes)
        ]
        base, extra = divmod(self.capacity, self.stripes)
        self._shard_caps = [
            base + (1 if i < extra else 0) for i in range(self.stripes)
        ]
        self._locks = [threading.RLock() for _ in range(self.stripes)]
        self._stats_lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __getstate__(self) -> dict:
        # Locks cannot be copied/pickled; the clone gets fresh ones.
        state = self.__dict__.copy()
        del state["_locks"], state["_stats_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._locks = [threading.RLock() for _ in range(self.stripes)]
        self._stats_lock = threading.Lock()

    def _shard_of(self, address: int) -> int:
        return address % self.stripes

    def lookup(self, address: int) -> bool:
        """True (and refresh recency) if ``address`` is resident.

        This is the *charged* residency check: it counts toward
        :attr:`hit_rate` and refreshes LRU recency.  Planning passes
        that only need to know residency must use :meth:`peek`.
        """
        i = self._shard_of(address)
        with self._locks[i]:
            hit = address in self._shards[i]
            if hit:
                self._shards[i].move_to_end(address)
        with self._stats_lock:
            if hit:
                self.hits += 1
                if REGISTRY.enabled:
                    POOL_HITS.inc()
            else:
                self.misses += 1
                if REGISTRY.enabled:
                    POOL_MISSES.inc()
        return hit

    def peek(self, address: int) -> bool:
        """Side-effect-free residency test.

        Unlike :meth:`lookup`, peeking mutates neither the hit/miss
        counters nor the LRU recency order, so fetch *planning* can
        probe the pool without skewing statistics or eviction order.
        """
        i = self._shard_of(address)
        with self._locks[i]:
            return address in self._shards[i]

    def record(self, hits: int = 0, misses: int = 0) -> None:
        """Charge pre-planned lookups to the counters.

        Batched readers plan with :meth:`peek` and then charge the
        final service decision here: a block counts as a hit only when
        it was served from the pool without a disk transfer.
        """
        if hits < 0 or misses < 0:
            raise StorageError("lookup counts must be non-negative")
        with self._stats_lock:
            self.hits += hits
            self.misses += misses
            if REGISTRY.enabled:
                if hits:
                    POOL_HITS.inc(hits)
                if misses:
                    POOL_MISSES.inc(misses)

    def admit(self, address: int) -> None:
        """Insert ``address``, evicting the least recently used block
        of its stripe."""
        if self.capacity == 0:
            return
        i = self._shard_of(address)
        evicted = False
        with self._locks[i]:
            shard = self._shards[i]
            if address in shard:
                shard.move_to_end(address)
                return
            # A zero-capacity stripe (capacity < stripes) never admits.
            if self._shard_caps[i] == 0:
                return
            if len(shard) >= self._shard_caps[i]:
                shard.popitem(last=False)
                evicted = True
            shard[address] = None
        if evicted and REGISTRY.enabled:
            # Counter writes share one lock so stripes cannot race the
            # registry (its instruments are not themselves locked).
            with self._stats_lock:
                POOL_EVICTIONS.inc()

    def invalidate(self, address: int) -> None:
        """Drop one address (used when a block is rewritten)."""
        i = self._shard_of(address)
        with self._locks[i]:
            self._shards[i].pop(address, None)

    def clear(self) -> None:
        """Drop everything (counters are kept)."""
        for i in range(self.stripes):
            with self._locks[i]:
                self._shards[i].clear()

    @property
    def resident_count(self) -> int:
        """Number of blocks currently held."""
        return sum(len(shard) for shard in self._shards)

    @property
    def hit_rate(self) -> float:
        """Fraction of charged lookups served from the pool.

        Defined as ``hits / (hits + misses)``.  When no lookups have
        been charged yet the rate is **0.0** by definition (a cold pool
        has served nothing), never a zero-division error -- callers may
        read it at any time, including on a freshly created pool.
        """
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, "
            f"resident={self.resident_count}, "
            f"hit_rate={self.hit_rate:.2f})"
        )


class CachedBlockFile:
    """A :class:`BlockFile` facade that consults a buffer pool.

    Reads of resident blocks return the payload without touching the
    simulated disk; misses are delegated (and charged) block-run-wise.
    Only the read API used by the search algorithms is wrapped; writes
    and construction go to the underlying file directly.
    """

    def __init__(self, file: BlockFile, pool: BufferPool):
        self._file = file
        self.pool = pool

    # ------------------------------------------------------------------
    # Cached reads
    # ------------------------------------------------------------------
    def read_block(self, index: int) -> bytes:
        """Read one block, free on a pool hit."""
        address = self._file.extent_start + index
        if self.pool.lookup(address):
            return self._file.peek_block(index)
        payload = self._file.read_block(index)
        self.pool.admit(address)
        return payload

    def read_run(self, start: int, count: int, wanted: int = -1) -> list[bytes]:
        """Read a run; fully-resident runs are free, otherwise the
        uncovered span is fetched in one transfer (the pool cannot
        split a sequential transfer without paying extra seeks).

        Residency is *planned* with side-effect-free peeks; the pool is
        charged once per requested block afterwards: blocks inside the
        fetched span are transferred from disk (misses, even if they
        happened to be resident), blocks outside it are served from the
        pool (hits).
        """
        base = self._file.extent_start
        indices = range(start, start + count)
        missing = [i for i in indices if not self.pool.peek(base + i)]
        if missing:
            first, last = missing[0], missing[-1]
            fetch_count = last - first + 1
            fetch_wanted = len(missing) if wanted >= 0 else -1
            # Transfer before charging: if the read faults, the ledger
            # must not claim misses (or hits) that were never served.
            self._file.read_run(first, fetch_count, wanted=fetch_wanted)
            self.pool.record(misses=fetch_count)
            for i in range(first, last + 1):
                self.pool.admit(base + i)
            for i in indices:
                if i < first or i > last:  # resident by construction
                    self.pool.lookup(base + i)
        else:
            for i in indices:
                self.pool.lookup(base + i)
        return [self._file.peek_block(i) for i in indices]

    def scan(self) -> list[bytes]:
        """Full sequential scan (cached like any other run)."""
        if self._file.n_blocks == 0:
            return []
        return self.read_run(0, self._file.n_blocks)

    def read_batched(self, indices, avoid=frozenset()) -> dict[int, bytes]:
        """Optimal batched fetch of the non-resident subset.

        Planning peeks the pool without side effects; each requested
        block is then charged exactly once (hit when served from the
        pool, miss when part of the batched disk fetch).  The plan is
        executed run by run, charging and admitting only after each
        transfer succeeds: if one run faults mid-plan, earlier runs are
        fully accounted (they did happen), the failing and later runs
        leave no trace, and pool hits are only charged once every
        transfer has completed -- the ledger never claims service that
        was not rendered.

        ``avoid`` lists file-local indices (quarantined pages) excluded
        from the request and from gap over-reads.
        """
        from repro.storage.scheduler import plan_batched_fetch

        base = self._file.extent_start
        avoid = frozenset(avoid)
        indices = sorted(set(indices) - avoid)
        missing = [i for i in indices if not self.pool.peek(base + i)]
        if missing:
            missing_set = set(missing)
            window = self._file.disk.model.overread_window
            for start, count, wanted in plan_batched_fetch(
                missing, window, forbidden=avoid
            ):
                self._file.read_run(start, count, wanted=wanted)
                self.pool.record(misses=wanted)
                # Admit every transferred block, gap over-reads
                # included -- they are in memory either way, and
                # read_run admits its whole span, so admitting only the
                # requested subset here would make residency (and every
                # later hit/miss) depend on which read path fetched the
                # block.  Only the ledger charge stays per-request
                # (``wanted``).  Quarantined blocks are never admitted.
                for i in range(start, start + count):
                    if i not in avoid:
                        self.pool.admit(base + i)
            for i in indices:
                if i not in missing_set:
                    self.pool.lookup(base + i)
        else:
            for i in indices:
                self.pool.lookup(base + i)
        return {i: self._file.peek_block(i) for i in indices}

    # ------------------------------------------------------------------
    # Writes that must keep the pool coherent
    # ------------------------------------------------------------------
    def replace_block(self, index: int, payload: bytes) -> None:
        """Overwrite a block and invalidate its pool residency.

        Without the invalidation a later timed read charges a pool
        "hit" -- zero simulated I/O -- for bytes that changed underneath
        (dynamic maintenance rewrites pages in place), as if the stale
        cached copy were still servable.  The rewritten block must pay
        a real transfer on its next read.
        """
        self._file.replace_block(index, payload)
        if self._file.sealed:
            self.pool.invalidate(self._file.extent_start + index)

    # ------------------------------------------------------------------
    # Pass-through
    # ------------------------------------------------------------------
    def __getattr__(self, name):
        # ``_file`` may be absent on a bare instance (pickle/copy
        # protocols probe attributes before __init__ runs); falling
        # through to ``self._file`` would recurse forever.
        try:
            file = object.__getattribute__(self, "_file")
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            ) from None
        return getattr(file, name)

    def __len__(self) -> int:
        return len(self._file)

    def __repr__(self) -> str:
        return f"CachedBlockFile({self._file!r}, {self.pool!r})"
