"""Deterministic fault injection against persisted containers.

Persistence claims two properties that only hold if someone tries to
break them: saves are *atomic* (a crash mid-save never damages the
previous container) and loads are *self-verifying* (any corruption is
detected and surfaced as a clean :class:`~repro.exceptions.StorageError`
naming the failing section, never garbage query results).  This module
is the adversary the tests use to prove both.

:class:`FaultInjector` wraps a container file on disk and mutates it in
place -- truncation, torn (prefix-only) writes, single-bit flips, with
section-targeted aim via :func:`~repro.storage.persistence.section_spans`
-- keeping a pristine copy so one fixture file can be corrupted many
ways.  :func:`torn_save` drives the real atomic-save protocol and cuts
the power (raises :class:`PowerLoss`) after a byte budget, before the
rename; the destination container must come through untouched.

Everything here is deterministic: faults are aimed at explicit offsets,
not sampled, so a failing corruption mode reproduces exactly.

This module is also the *shared fault vocabulary*: the runtime
read-path adversary (:mod:`repro.storage.runtime_faults`) and the
container adversary both import from here, and the runtime names
(:class:`~repro.storage.runtime_faults.ReadFaultInjector`,
:class:`~repro.storage.runtime_faults.RetryPolicy`, ...) are re-exported
lazily so tests composing both layers need a single import.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import StorageError
from repro.storage import persistence

__all__ = [
    "FaultInjector",
    "PowerLoss",
    "corrupt_bytes",
    "torn_save",
    # lazily re-exported from repro.storage.runtime_faults
    "FaultContext",
    "LostPage",
    "QuarantineList",
    "ReadFaultInjector",
    "RetryPolicy",
    "fetch_with_quarantine",
]

#: Runtime-fault names served by module __getattr__ (lazy to avoid a
#: circular import: runtime_faults itself imports corrupt_bytes).
_RUNTIME_NAMES = frozenset(
    {
        "FaultContext",
        "LostPage",
        "QuarantineList",
        "ReadFaultInjector",
        "RetryPolicy",
        "fetch_with_quarantine",
    }
)


def __getattr__(name: str):
    if name in _RUNTIME_NAMES:
        from repro.storage import runtime_faults

        return getattr(runtime_faults, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def corrupt_bytes(payload: bytes, salt: int = 0) -> bytes:
    """Flip one byte of ``payload`` deterministically.

    The byte at offset ``salt % len(payload)`` is XORed with ``0xFF``,
    so the corruption is always detectable by a CRC yet reproduces
    exactly for a given ``(payload, salt)``.  An empty payload corrupts
    to one spurious byte (still a CRC mismatch).  Both the container
    adversary and the runtime read-path adversary use this to model
    silent bit rot with one shared definition.
    """
    if not payload:
        return b"\xff"
    raw = bytearray(payload)
    raw[salt % len(raw)] ^= 0xFF
    return bytes(raw)


class PowerLoss(RuntimeError):
    """Simulated machine crash in the middle of a write.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: it
    models the process dying, which no library code should catch.
    """


class FaultInjector:
    """Mutate one container file in place, deterministically.

    Parameters
    ----------
    path:
        The container file to corrupt.  Its pristine bytes are captured
        at construction time; :meth:`restore` rolls any fault back.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._pristine = self.path.read_bytes()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Byte size of the pristine container."""
        return len(self._pristine)

    def restore(self) -> None:
        """Undo all faults: rewrite the pristine bytes."""
        self.path.write_bytes(self._pristine)

    def section_span(self, name: str) -> tuple[int, int]:
        """Byte span of a v2 section of the pristine container."""
        return persistence.section_spans(self._pristine)[name]

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def truncate_to(self, n_bytes: int) -> None:
        """Keep only the first ``n_bytes`` of the container."""
        if not 0 <= n_bytes <= self.size:
            raise StorageError(
                f"truncation point {n_bytes} outside [0, {self.size}]"
            )
        self.path.write_bytes(self._pristine[:n_bytes])

    def truncate_tail(self, n_bytes: int) -> None:
        """Drop the last ``n_bytes`` of the container."""
        self.truncate_to(self.size - n_bytes)

    def tear(self, fraction: float) -> None:
        """Keep only a prefix: a torn write that stopped mid-file.

        Models a non-atomic writer (or a copy tool) that got
        ``fraction`` of the way through before the machine died.
        """
        if not 0.0 <= fraction <= 1.0:
            raise StorageError("tear fraction must be in [0, 1]")
        self.truncate_to(int(self.size * fraction))

    def flip_bit(self, offset: int, bit: int = 0) -> None:
        """XOR one bit of the byte at ``offset`` (on the current bytes,
        so faults compose)."""
        raw = bytearray(self.path.read_bytes())
        if not 0 <= offset < len(raw):
            raise StorageError(
                f"offset {offset} outside [0, {len(raw)})"
            )
        if not 0 <= bit < 8:
            raise StorageError("bit must be in [0, 8)")
        raw[offset] ^= 1 << bit
        self.path.write_bytes(bytes(raw))

    def flip_bit_in(self, section: str, position: int = 0, bit: int = 0) -> None:
        """Flip a bit ``position`` bytes into a named v2 section."""
        start, stop = self.section_span(section)
        if not 0 <= position < stop - start:
            raise StorageError(
                f"position {position} outside the {section} section "
                f"({stop - start} bytes)"
            )
        self.flip_bit(start + position, bit)


def torn_save(tree, path, byte_budget: int) -> None:
    """Run the atomic save protocol, losing power after ``byte_budget``.

    The temp file gets the first ``byte_budget`` bytes of the new
    container, then :class:`PowerLoss` fires *before* the rename --
    exactly the crash window the temp-file protocol exists for.  The
    destination ``path`` is left untouched (the caller's test asserts
    it), and the partial ``<name>.tmp`` remains as crash debris, as it
    would after a real power loss.
    """
    blob = persistence.serialize_iqtree(tree)

    def tearing_writer(handle, data: bytes) -> None:
        handle.write(data[:byte_budget])
        handle.flush()
        raise PowerLoss(
            f"simulated power loss after {min(byte_budget, len(data))} "
            f"of {len(data)} bytes"
        )

    persistence._atomic_write(path, blob, _writer=tearing_writer)
