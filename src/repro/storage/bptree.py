"""A bulk-loaded B+-tree over the simulated disk.

Substrate for the Pyramid-Technique baseline: points keyed by a scalar
(their pyramid value) live in key-sorted leaf blocks; a small interior
directory routes descents.  I/O accounting follows the same rules as
every other structure in the repository -- interior node visits and the
first leaf of a scan pay random reads, continuing a scan over adjacent
leaves is sequential.

Only the operations the Pyramid Technique needs are implemented: bulk
load and inclusive range scans.  Entries are ``(key: f8, coords: f4*d,
id: u4)`` records packed into fixed-size blocks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import BuildError, StorageError
from repro.storage.blockfile import BlockFile
from repro.storage.disk import SimulatedDisk

__all__ = ["BPlusTree"]


class BPlusTree:
    """A static (bulk-loaded) B+-tree of scalar-keyed point records.

    Parameters
    ----------
    keys:
        Scalar keys, shape ``(n,)``.  Stored sorted.
    coords:
        Point coordinates, shape ``(n, d)`` (float32 precision).
    ids:
        Point ids, shape ``(n,)``.
    disk:
        The simulated disk to place the files on.
    """

    #: bytes per interior routing entry (separator key + child pointer)
    _INTERIOR_ENTRY = 12

    def __init__(
        self,
        keys: np.ndarray,
        coords: np.ndarray,
        ids: np.ndarray,
        disk: SimulatedDisk,
    ):
        keys = np.asarray(keys, dtype=np.float64)
        coords = np.asarray(coords, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if keys.ndim != 1 or coords.ndim != 2 or keys.size == 0:
            raise BuildError("need non-empty keys and (n, d) coords")
        if not keys.size == coords.shape[0] == ids.size:
            raise BuildError("keys, coords, and ids must align")
        self.disk = disk
        self.dim = int(coords.shape[1])
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._coords = coords[order]
        self._ids = ids[order]

        block_size = disk.model.block_size
        entry = 8 + 4 * self.dim + 4
        self._leaf_capacity = block_size // entry
        if self._leaf_capacity < 1:
            raise BuildError("block size too small for one record")
        self._build_files()

    def _build_files(self) -> None:
        n = self._keys.size
        cap = self._leaf_capacity
        self._leaf_file = BlockFile(self.disk, "bptree-leaves")
        self._leaf_bounds: list[tuple[int, int]] = []  # (start, end) rows
        for start in range(0, n, cap):
            end = min(start + cap, n)
            payload = self._encode_leaf(start, end)
            self._leaf_file.append_block(payload)
            self._leaf_bounds.append((start, end))
        self._leaf_lows = np.array(
            [self._keys[s] for s, _e in self._leaf_bounds]
        )

        # Interior levels: opaque blocks sized by the routing fanout;
        # the in-memory mirror does the actual routing, the blocks make
        # descent I/O honest.
        fanout = max(2, self.disk.model.block_size // self._INTERIOR_ENTRY)
        self._interior_file = BlockFile(self.disk, "bptree-interior")
        level = len(self._leaf_bounds)
        self._levels: list[int] = []  # node count per interior level
        while level > 1:
            level = math.ceil(level / fanout)
            self._levels.append(level)
            for _ in range(level):
                self._interior_file.append_block(
                    b"\0" * self.disk.model.block_size
                )
        self._leaf_file.seal()
        self._interior_file.seal()

    def _encode_leaf(self, start: int, end: int) -> bytes:
        m = end - start
        entry = 8 + 4 * self.dim + 4
        rows = np.zeros((m, entry), dtype=np.uint8)
        rows[:, :8] = (
            self._keys[start:end].astype("<f8").view(np.uint8).reshape(m, 8)
        )
        rows[:, 8 : 8 + 4 * self.dim] = (
            self._coords[start:end]
            .astype("<f4")
            .view(np.uint8)
            .reshape(m, 4 * self.dim)
        )
        rows[:, 8 + 4 * self.dim :] = (
            self._ids[start:end]
            .astype("<u4")
            .view(np.uint8)
            .reshape(m, 4)
        )
        return rows.tobytes()

    def _decode_leaf(
        self, payload: bytes, m: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        entry = 8 + 4 * self.dim + 4
        rows = np.frombuffer(
            payload, dtype=np.uint8, count=m * entry
        ).reshape(m, entry)
        keys = np.ascontiguousarray(rows[:, :8]).view("<f8").reshape(m)
        coords = (
            np.ascontiguousarray(rows[:, 8 : 8 + 4 * self.dim])
            .view("<f4")
            .reshape(m, self.dim)
            .astype(np.float64)
        )
        ids = (
            np.ascontiguousarray(rows[:, 8 + 4 * self.dim :])
            .view("<u4")
            .reshape(m)
            .astype(np.int64)
        )
        return keys.astype(np.float64), coords, ids

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        """Number of stored records."""
        return int(self._keys.size)

    @property
    def n_leaves(self) -> int:
        """Number of leaf blocks."""
        return len(self._leaf_bounds)

    @property
    def height(self) -> int:
        """Interior levels above the leaves."""
        return len(self._levels)

    def range_scan(
        self, low: float, high: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All records with ``low <= key <= high`` (inclusive).

        Charges one random read per interior level (root to the first
        affected leaf) plus one sequential transfer over the affected
        leaf run.  Returns ``(keys, coords, ids)``.
        """
        if high < low:
            raise StorageError("range bounds inverted")
        # side="left" so runs of duplicate keys spanning several leaves
        # start at the first leaf that can hold `low`.
        first_leaf = int(
            np.searchsorted(self._leaf_lows, low, side="left") - 1
        )
        first_leaf = max(first_leaf, 0)
        # Skip leading leaves that end before `low`.
        while (
            first_leaf < self.n_leaves
            and self._keys[self._leaf_bounds[first_leaf][1] - 1] < low
        ):
            first_leaf += 1
        if first_leaf >= self.n_leaves:
            return self._empty()
        if self._keys[self._leaf_bounds[first_leaf][0]] > high:
            return self._empty()
        last_leaf = int(
            np.searchsorted(self._leaf_lows, high, side="right") - 1
        )
        last_leaf = max(last_leaf, first_leaf)

        # Descend: one random read per interior level.
        for level_index in range(len(self._levels)):
            offset = sum(self._levels[:level_index])
            self._interior_file.read_block(offset)
        payloads = self._leaf_file.read_run(
            first_leaf, last_leaf - first_leaf + 1
        )
        keys_out, coords_out, ids_out = [], [], []
        for leaf, payload in zip(
            range(first_leaf, last_leaf + 1), payloads
        ):
            start, end = self._leaf_bounds[leaf]
            keys, coords, ids = self._decode_leaf(payload, end - start)
            mask = (keys >= low) & (keys <= high)
            if np.any(mask):
                keys_out.append(keys[mask])
                coords_out.append(coords[mask])
                ids_out.append(ids[mask])
        if not keys_out:
            return self._empty()
        return (
            np.concatenate(keys_out),
            np.concatenate(coords_out),
            np.concatenate(ids_out),
        )

    def _empty(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.empty(0),
            np.empty((0, self.dim)),
            np.empty(0, dtype=np.int64),
        )

    def __repr__(self) -> str:
        return (
            f"BPlusTree(records={self.n_records}, leaves={self.n_leaves}, "
            f"height={self.height})"
        )
