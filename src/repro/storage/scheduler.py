"""Page-access strategies from Section 2 of the paper.

Two strategies are implemented:

* :func:`plan_batched_fetch` -- the optimal strategy when the wanted
  block set is known in advance (range queries).  Walking the sorted
  block list, a gap between consecutive wanted blocks is read through
  whenever ``gap * t_xfer < t_seek``; otherwise the head seeks.
* :func:`cost_balance_window` -- the nearest-neighbor extension
  (Section 2.1).  The pivot block must be read; neighboring blocks in
  file order are speculatively appended to the transfer while the
  cumulative cost balance ``sum_i (t_xfer - l_i * (t_seek + t_xfer))``
  stays favorable, where ``l_i`` is block i's access probability.  The
  scan in each direction stops once the cumulated balance exceeds the
  seek cost.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.exceptions import StorageError
from repro.obs.instruments import (
    REGISTRY,
    SCHED_BATCH_PLANS,
    SCHED_PLANNED_RUNS,
    SCHED_WINDOW_BLOCKS,
    SCHED_WINDOWS,
)
from repro.storage.disk import DiskModel

__all__ = [
    "plan_batched_fetch",
    "batched_fetch_cost",
    "batched_fetch_stats",
    "cost_balance_window",
]


def plan_batched_fetch(
    sorted_blocks: Sequence[int],
    overread_window: float,
    forbidden: frozenset[int] = frozenset(),
) -> Iterator[tuple[int, int, int]]:
    """Group a sorted list of wanted blocks into sequential runs.

    Parameters
    ----------
    sorted_blocks:
        Strictly increasing block indices to fetch.
    overread_window:
        ``v = t_seek / t_xfer``.  A gap of ``gap`` skipped blocks between
        two wanted blocks is over-read iff ``gap < v`` (equivalently
        ``gap * t_xfer < t_seek``, the paper's condition with
        ``gap = p_{i+1} - p_i - 1``).
    forbidden:
        Block indices that must not be transferred at all (quarantined
        pages).  Requesting one is an error; a gap containing one is
        never read through, regardless of the window -- the plan splits
        into two runs around it.

    Yields
    ------
    tuple
        ``(start, count, wanted)`` runs: read ``count`` consecutive
        blocks beginning at ``start``, of which ``wanted`` are needed.
    """
    if overread_window < 0:
        raise StorageError("over-read window must be non-negative")
    blocks = list(sorted_blocks)
    if not blocks:
        return
    if any(b2 <= b1 for b1, b2 in zip(blocks, blocks[1:])):
        raise StorageError("block list must be strictly increasing")
    if forbidden:
        for block in blocks:
            if block in forbidden:
                raise StorageError(
                    f"wanted block {block} is forbidden (quarantined)"
                )
    if REGISTRY.enabled:
        SCHED_BATCH_PLANS.inc()
    run_start = blocks[0]
    run_end = blocks[0]  # inclusive
    wanted = 1
    runs = 0
    for block in blocks[1:]:
        gap = block - run_end - 1
        blocked = forbidden and any(
            b in forbidden for b in range(run_end + 1, block)
        )
        if (gap == 0 or gap < overread_window) and not blocked:
            run_end = block
            wanted += 1
        else:
            runs += 1
            yield run_start, run_end - run_start + 1, wanted
            run_start = run_end = block
            wanted = 1
    runs += 1
    if REGISTRY.enabled:
        SCHED_PLANNED_RUNS.inc(runs)
    yield run_start, run_end - run_start + 1, wanted


def batched_fetch_cost(
    sorted_blocks: Sequence[int], model: DiskModel
) -> float:
    """Simulated time of fetching the blocks with the optimal strategy."""
    return batched_fetch_stats(sorted_blocks, model)["elapsed"]


def batched_fetch_stats(
    sorted_blocks: Sequence[int], model: DiskModel
) -> dict[str, float]:
    """Predicted I/O profile of one optimal batched fetch.

    Returns a dict with ``seeks``, ``blocks_read``, ``blocks_overread``
    and ``elapsed`` -- the same fields an
    :class:`~repro.storage.disk.IOStats` ledger would accrue, computed
    without touching any disk.  The batch query engine uses this to plan
    and report fetch phases before executing them.
    """
    seeks = 0
    blocks = 0
    overread = 0
    for _start, count, wanted in plan_batched_fetch(
        sorted_blocks, model.overread_window
    ):
        seeks += 1
        blocks += count
        overread += count - wanted
    return {
        "seeks": seeks,
        "blocks_read": blocks,
        "blocks_overread": overread,
        "elapsed": seeks * model.t_seek + blocks * model.t_xfer,
    }


def cost_balance_window(
    pivot: int,
    n_blocks: int,
    access_probability: Callable[[int], float],
    model: DiskModel,
    forbidden: frozenset[int] = frozenset(),
) -> tuple[int, int]:
    """Choose the run of blocks to read around a pivot (Section 2.1).

    Parameters
    ----------
    pivot:
        Index of the block that *must* be read (access probability 1).
    n_blocks:
        Total number of blocks in the file; the window is clipped to
        ``[0, n_blocks)``.
    access_probability:
        Callable returning the probability ``l_i`` in ``[0, 1]`` that
        block ``i`` will need to be read later during this query
        (0 for already-processed or pruned blocks).
    model:
        Disk timing parameters.
    forbidden:
        Block indices that must not be transferred (quarantined pages).
        The speculative scan in each direction stops at the first
        forbidden block; the pivot itself must not be forbidden.

    Returns
    -------
    tuple
        ``(first, last)`` inclusive block range containing the pivot.

    Notes
    -----
    Extending the transfer by one block costs ``t_xfer`` now and saves
    ``l_i * (t_seek + t_xfer)`` in expectation, so its balance is
    ``c_i = t_xfer - l_i * (t_seek + t_xfer)`` (paper eq. 1).  The run
    is extended to the farthest block where the cumulated balance since
    the last accepted block is negative; the search in each direction
    gives up once the cumulated balance exceeds ``t_seek``.
    """
    if not 0 <= pivot < n_blocks:
        raise StorageError("pivot outside the file")
    if pivot in forbidden:
        raise StorageError(
            f"pivot block {pivot} is forbidden (quarantined)"
        )
    first = last = pivot

    def _scan(direction: int) -> int:
        accepted = pivot
        balance = 0.0
        i = pivot + direction
        while 0 <= i < n_blocks and i not in forbidden and balance < model.t_seek:
            prob = access_probability(i)
            if not 0.0 <= prob <= 1.0:
                raise StorageError("access probability must be in [0, 1]")
            balance += model.t_xfer - prob * (model.t_seek + model.t_xfer)
            if balance < 0.0:
                accepted = i
                balance = 0.0
            i += direction
        return accepted

    last = _scan(+1)
    first = _scan(-1)
    if REGISTRY.enabled:
        SCHED_WINDOWS.inc()
        SCHED_WINDOW_BLOCKS.observe(last - first + 1)
    return first, last
