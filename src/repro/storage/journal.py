"""Crash-safe online writes: a write-ahead journal over the container.

The container format (:mod:`repro.storage.persistence`) makes *whole
trees* durable; this module makes individual ``insert``/``delete``
operations durable between checkpoints.  A :class:`DurableTree` pairs a
live :class:`~repro.core.tree.IQTree` with an append-only, fsync'd,
CRC-framed :class:`WriteAheadJournal` next to its container file: every
maintenance operation is journaled *before* it touches the in-memory
tree, so an acknowledged write survives any crash, and
:meth:`DurableTree.open` replays the journal tail on load to rebuild
exactly the acknowledged state.

Journal file layout (all integers little-endian)::

    header    magic b"IQWAL001"                       8 bytes
              base_seq   u64  seq at the last reset   8 bytes
              header_crc u32  CRC32(magic + base_seq) 4 bytes
    record*   body_len   u32  length of the body
              frame_crc  u32  CRC32 of the body_len field
              body_crc   u32  CRC32 of the body
              body           <Q seq><B op> + payload

``frame_crc`` protects the length field on its own, which is what lets
the scanner distinguish the two failure modes with different contracts:

* **torn tail** -- the final record's frame or body is *truncated*
  (a crash cut an in-flight append short).  The append was never
  acknowledged, so the scanner drops the partial record and recovery
  proceeds; the file is truncated back to the last complete record.
* **corruption** -- a *complete* frame or body whose CRC does not
  match, or a sequence-number gap.  That is acknowledged data gone
  bad (bit rot, a misdirected write), and silently dropping it would
  lose an acked operation, so the scan raises
  :class:`~repro.exceptions.IntegrityError` instead.

Checkpoint protocol (:meth:`DurableTree.checkpoint`): the container is
re-saved atomically (temp + fsync + rename, the PR 2 machinery) with
the journal's current sequence number recorded in its meta section as
``wal_seq``; the journal is then atomically replaced by an empty one
whose ``base_seq`` equals that ``wal_seq``.  Replay skips records with
``seq <= wal_seq``, so a crash *between* the container rename and the
journal reset cannot double-apply operations, and a crash *during*
either atomic write leaves the old file -- every window is safe.

Fault injection: :meth:`DurableTree.inject_crash` raises
:class:`~repro.storage.faults.PowerLoss` at a named protocol boundary;
:meth:`DurableTree.inject_torn_append` and
:meth:`DurableTree.inject_torn_checkpoint` cut the power mid-write
after a byte budget, the same pattern as
:func:`repro.storage.faults.torn_save`.  At-rest corruption of the
journal reuses :class:`~repro.storage.faults.FaultInjector` directly
(it is path-based), aimed with :func:`record_spans`.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import IntegrityError, SearchError, StorageError
from repro.obs.instruments import (
    REGISTRY,
    WAL_APPENDED_BYTES,
    WAL_APPENDS,
    WAL_CHECKPOINTS,
    WAL_FSYNCS,
    WAL_RECOVERIES,
    WAL_REPLAYED,
    WAL_SIZE,
)
from repro.storage.faults import PowerLoss
from repro.storage.persistence import (
    _atomic_write,
    load_iqtree,
    serialize_iqtree,
)

__all__ = [
    "DurableTree",
    "JournalRecord",
    "JournalScan",
    "OP_DELETE",
    "OP_INSERT",
    "WriteAheadJournal",
    "record_spans",
    "wal_path",
    "CRASH_POINTS",
]

MAGIC_WAL = b"IQWAL001"
_HEADER = struct.Struct("<QI")  # base_seq, header_crc
_HEADER_SIZE = len(MAGIC_WAL) + _HEADER.size
_FRAME = struct.Struct("<III")  # body_len, frame_crc, body_crc
_BODY_HEAD = struct.Struct("<QB")  # seq, op

OP_INSERT = 1
OP_DELETE = 2
_OPS = {OP_INSERT: "insert", OP_DELETE: "delete"}

#: Named crash boundaries honored by :meth:`DurableTree.inject_crash`,
#: in protocol order.  ``*:pre-append`` fires before the journal write
#: (the op is lost, never acked); ``*:post-append`` fires after the
#: fsync but before the in-memory apply (the op is acked and must
#: survive); the checkpoint points bracket the container save and the
#: journal reset.
CRASH_POINTS = (
    "insert:pre-append",
    "insert:post-append",
    "delete:pre-append",
    "delete:post-append",
    "checkpoint:pre-save",
    "checkpoint:post-save",
    "checkpoint:post-reset",
)


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def wal_path(container_path) -> Path:
    """The journal sidecar path of a container file."""
    container_path = Path(container_path)
    return container_path.with_name(container_path.name + ".wal")


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record."""

    seq: int
    op: int
    payload: bytes


@dataclass(frozen=True)
class JournalScan:
    """Outcome of scanning a journal file.

    ``outcome`` is ``"clean"`` or ``"torn-tail"``; a scan that detects
    corruption of acknowledged data raises instead of returning.
    ``valid_bytes`` is where the last complete record ends (the safe
    truncation point); ``dropped_bytes`` counts the torn tail.
    """

    base_seq: int
    records: tuple[JournalRecord, ...]
    valid_bytes: int
    outcome: str
    dropped_bytes: int

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else self.base_seq


def _encode_record(seq: int, op: int, payload: bytes) -> bytes:
    body = _BODY_HEAD.pack(seq, op) + payload
    len_field = struct.pack("<I", len(body))
    return (
        len_field
        + struct.pack("<II", _crc(len_field), _crc(body))
        + body
    )


def scan_journal(path) -> JournalScan:
    """Parse a journal file, applying the torn-vs-corrupt policy.

    Raises :class:`~repro.exceptions.IntegrityError` on a damaged
    header, a complete record whose CRC does not match, or a sequence
    gap -- all of which mean acknowledged data was lost or mangled.  A
    truncated final record is a torn (never-acknowledged) append and is
    reported, not raised.
    """
    raw = Path(path).read_bytes()
    if len(raw) < _HEADER_SIZE or raw[: len(MAGIC_WAL)] != MAGIC_WAL:
        raise IntegrityError(
            f"{path}: not a journal file (bad or truncated header)",
            section="journal",
        )
    base_seq, header_crc = _HEADER.unpack(
        raw[len(MAGIC_WAL) : _HEADER_SIZE]
    )
    if _crc(raw[: _HEADER_SIZE - 4]) != header_crc:
        raise IntegrityError(
            f"{path}: journal header CRC mismatch", section="journal"
        )
    records: list[JournalRecord] = []
    offset = _HEADER_SIZE
    expected = base_seq + 1
    while offset < len(raw):
        remaining = len(raw) - offset
        if remaining < _FRAME.size:
            break  # torn mid-frame: the append was never acked
        body_len, frame_crc, body_crc = _FRAME.unpack(
            raw[offset : offset + _FRAME.size]
        )
        if _crc(raw[offset : offset + 4]) != frame_crc:
            raise IntegrityError(
                f"{path}: journal record frame CRC mismatch at byte "
                f"{offset}",
                section="journal",
            )
        if body_len < _BODY_HEAD.size:
            raise IntegrityError(
                f"{path}: journal record at byte {offset} declares an "
                f"impossible body length {body_len}",
                section="journal",
            )
        if remaining - _FRAME.size < body_len:
            break  # torn mid-body: length field is trustworthy
        body = raw[offset + _FRAME.size : offset + _FRAME.size + body_len]
        if _crc(body) != body_crc:
            raise IntegrityError(
                f"{path}: journal record body CRC mismatch at byte "
                f"{offset} (acknowledged data corrupted)",
                section="journal",
            )
        seq, op = _BODY_HEAD.unpack(body[: _BODY_HEAD.size])
        if seq != expected:
            raise IntegrityError(
                f"{path}: journal sequence gap: expected {expected}, "
                f"found {seq}",
                section="journal",
            )
        if op not in _OPS:
            raise IntegrityError(
                f"{path}: unknown journal op code {op}", section="journal"
            )
        records.append(
            JournalRecord(seq, op, body[_BODY_HEAD.size :])
        )
        expected += 1
        offset += _FRAME.size + body_len
    dropped = len(raw) - offset
    return JournalScan(
        base_seq=base_seq,
        records=tuple(records),
        valid_bytes=offset,
        outcome="torn-tail" if dropped else "clean",
        dropped_bytes=dropped,
    )


def record_spans(path) -> list[tuple[int, int, int]]:
    """Byte span ``(start, stop, seq)`` of each complete record.

    The fault-injection harness uses this to aim a
    :class:`~repro.storage.faults.FaultInjector` bit flip at a specific
    acknowledged record.
    """
    scan = scan_journal(path)
    spans: list[tuple[int, int, int]] = []
    offset = _HEADER_SIZE
    for rec in scan.records:
        stop = offset + _FRAME.size + _BODY_HEAD.size + len(rec.payload)
        spans.append((offset, stop, rec.seq))
        offset = stop
    return spans


class WriteAheadJournal:
    """Append-only fsync'd operation log next to a container file.

    Open an existing journal with the constructor (it scans the file,
    truncates a torn tail, and raises on corruption of acknowledged
    records) or start a fresh one with :meth:`create`.  ``fsync=False``
    skips the durability syncs -- same torn-write atomicity against
    process crashes, no power-loss guarantee (mirrors
    :func:`~repro.storage.persistence.save_iqtree`).
    """

    def __init__(self, path, *, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        scan = scan_journal(self.path)
        if scan.dropped_bytes:
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.valid_bytes)
                if fsync:
                    os.fsync(handle.fileno())
        if REGISTRY.enabled:
            WAL_RECOVERIES.inc(outcome=scan.outcome)
            WAL_SIZE.set(scan.valid_bytes)
        self.base_seq = scan.base_seq
        self._records = list(scan.records)
        self._size = scan.valid_bytes
        self._handle = None
        #: bytes appended (flushed) but not yet fsync'd -- the group
        #: commit window; :meth:`sync` drains it with one fsync.
        self._dirty = False

    @classmethod
    def create(cls, path, *, base_seq: int = 0, fsync: bool = True):
        """Atomically write a fresh (empty) journal and open it."""
        header = MAGIC_WAL + struct.pack("<Q", base_seq)
        blob = header + struct.pack("<I", _crc(header))
        _atomic_write(path, blob, fsync=fsync)
        return cls(path, fsync=fsync)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the newest record (or the reset base)."""
        return self._records[-1].seq if self._records else self.base_seq

    @property
    def n_records(self) -> int:
        return len(self._records)

    @property
    def size_bytes(self) -> int:
        return self._size

    def records(self) -> tuple[JournalRecord, ...]:
        return tuple(self._records)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(
        self, op: int, payload: bytes, *, sync: bool | None = None,
        _writer=None,
    ) -> int:
        """Append one operation; returns its sequence number.

        With ``sync`` omitted (or True) the record is fsync'd (when
        enabled) before the sequence number is handed back -- the
        record counts as *acknowledged* when this method returns.  With
        ``sync=False`` the bytes are written and flushed but the fsync
        is deferred to a later :meth:`sync` -- the group-commit path:
        the record is torn-write-safe against a process crash but only
        acknowledged once the group fsync lands.  ``_writer`` is the
        torn-write fault hook -- it receives ``(handle, record)`` and
        may write a prefix and raise
        :class:`~repro.storage.faults.PowerLoss`, after which this
        journal object must be abandoned (reopen from disk to recover).
        """
        if op not in _OPS:
            raise StorageError(f"unknown journal op code {op}")
        seq = self.last_seq + 1
        record = _encode_record(seq, op, payload)
        handle = self._ensure_handle()
        if _writer is None:
            handle.write(record)
        else:
            _writer(handle, record)
        handle.flush()
        self._dirty = True
        if (sync is None or sync) and self.fsync:
            os.fsync(handle.fileno())
            self._dirty = False
            if REGISTRY.enabled:
                WAL_FSYNCS.inc()
        self._records.append(
            JournalRecord(seq, op, bytes(payload))
        )
        self._size += len(record)
        if REGISTRY.enabled:
            WAL_APPENDS.inc(op=_OPS[op])
            WAL_APPENDED_BYTES.inc(len(record))
            WAL_SIZE.set(self._size)
        return seq

    def sync(self) -> None:
        """Fsync any deferred appends in one call (the group commit).

        No-op when nothing was appended since the last fsync, so it is
        safe to call at every ack boundary.
        """
        if not self._dirty:
            return
        if self.fsync and self._handle is not None:
            os.fsync(self._handle.fileno())
            if REGISTRY.enabled:
                WAL_FSYNCS.inc()
        self._dirty = False

    def reset(self, base_seq: int) -> None:
        """Atomically replace the journal with an empty one.

        Called after a checkpoint recorded ``base_seq`` in the
        container: a crash before, during, or after the replacement is
        safe because replay filters records with ``seq <= wal_seq``.
        """
        self.close()
        header = MAGIC_WAL + struct.pack("<Q", base_seq)
        blob = header + struct.pack("<I", _crc(header))
        _atomic_write(self.path, blob, fsync=self.fsync)
        self.base_seq = base_seq
        self._records = []
        self._size = len(blob)
        self._dirty = False
        if REGISTRY.enabled:
            WAL_SIZE.set(self._size)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = open(self.path, "r+b")
            self._handle.seek(0, os.SEEK_END)
        return self._handle


class DurableTree:
    """A live IQ-tree whose maintenance operations are crash-safe.

    Wraps a tree, its container file, and the journal sidecar.  Use
    :meth:`create` to start from a built tree (saves the container,
    opens a fresh journal) and :meth:`open` to recover after a crash or
    restart (loads the container, replays the journal tail).  The
    answers contract: after any crash, :meth:`open` rebuilds a tree
    whose query answers are bit-identical to a crash-free replay of
    exactly the acknowledged operations.
    """

    def __init__(
        self, tree, path, journal: WriteAheadJournal, *, fsync=True,
        group_commit: int = 1,
    ):
        self.tree = tree
        self.path = Path(path)
        self.journal = journal
        self.fsync = fsync
        if int(group_commit) < 1:
            raise StorageError("group_commit must be >= 1")
        #: appends per fsync.  1 (default) fsyncs every append -- the
        #: original protocol.  G > 1 coalesces up to G appends into one
        #: group fsync; an operation is only *acknowledged* once its
        #: group's fsync lands (at the G-th append, a checkpoint, an
        #: explicit :meth:`sync`, or :meth:`close`).  Crash recovery
        #: still restores a prefix of the appended operations
        #: bit-identically -- only unacknowledged tail records can be
        #: lost.
        self.group_commit = int(group_commit)
        self._pending = 0
        #: records re-applied by :meth:`open` (0 for a clean start)
        self.recovered_ops = 0
        self._crash_points: set[str] = set()
        self._torn_append_budget: int | None = None
        self._torn_checkpoint_budget: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, tree, path, *, fsync: bool = True, group_commit: int = 1
    ) -> "DurableTree":
        """Persist ``tree`` and open an empty journal next to it."""
        from repro.storage.persistence import save_iqtree

        save_iqtree(tree, path, fsync=fsync)
        journal = WriteAheadJournal.create(
            wal_path(path), base_seq=tree._wal_seq, fsync=fsync
        )
        return cls(
            tree, path, journal, fsync=fsync, group_commit=group_commit
        )

    @classmethod
    def open(
        cls, path, *, disk=None, fsync: bool = True, group_commit: int = 1
    ) -> "DurableTree":
        """Load the container and replay the journal tail.

        Records with ``seq <= wal_seq`` (already folded into the
        container by a checkpoint) are skipped, so recovery is
        idempotent across every checkpoint crash window.  A missing
        journal (pre-journal container, or the sidecar was never
        created) starts an empty one.
        """
        tree = load_iqtree(path, disk)
        jpath = wal_path(path)
        if not jpath.exists():
            journal = WriteAheadJournal.create(
                jpath, base_seq=tree._wal_seq, fsync=fsync
            )
            return cls(
                tree, path, journal, fsync=fsync,
                group_commit=group_commit,
            )
        journal = WriteAheadJournal(jpath, fsync=fsync)
        store = cls(
            tree, path, journal, fsync=fsync, group_commit=group_commit
        )
        replayed = 0
        for rec in journal.records():
            if rec.seq <= tree._wal_seq:
                continue
            store._apply(rec)
            replayed += 1
        store.recovered_ops = replayed
        if REGISTRY.enabled and replayed:
            WAL_REPLAYED.inc(replayed)
        return store

    def close(self) -> None:
        self.sync()
        self.journal.close()

    def sync(self) -> None:
        """Fsync the current group; acknowledges every pending append."""
        self.journal.sync()
        self._pending = 0

    def _count_group_append(self) -> None:
        if self.group_commit <= 1:
            return
        self._pending += 1
        if self._pending >= self.group_commit:
            self.sync()

    def _apply(self, rec: JournalRecord) -> None:
        if rec.op == OP_INSERT:
            point = np.frombuffer(rec.payload, dtype="<f8")
            self.tree.insert(point)
        else:
            (point_id,) = struct.unpack("<q", rec.payload)
            self.tree.delete(point_id)

    # ------------------------------------------------------------------
    # Durable maintenance operations
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        """Journal, fsync, then apply one insert; returns the new id.

        The operation is acknowledged (= guaranteed to survive a crash)
        only when this method returns.
        """
        from repro.core.tree import canonicalize

        point = canonicalize(
            np.asarray(point, dtype=np.float64).reshape(-1)
        )
        if point.shape[0] != self.tree.dim:
            raise SearchError(
                f"point must have {self.tree.dim} dimensions, "
                f"got {point.shape[0]}"
            )
        payload = np.ascontiguousarray(point, dtype="<f8").tobytes()
        self._hook("insert:pre-append")
        self.journal.append(
            OP_INSERT, payload, sync=self.group_commit <= 1,
            _writer=self._take_torn_append(),
        )
        self._hook("insert:post-append")
        self._count_group_append()
        return self.tree.insert(point)

    def delete(self, point_id: int) -> None:
        """Journal, fsync, then apply one delete."""
        from repro.core.maintenance import locate_point

        point_id = int(point_id)
        if locate_point(self.tree, point_id) is None:
            raise SearchError(f"unknown point id: {point_id}")
        payload = struct.pack("<q", point_id)
        self._hook("delete:pre-append")
        self.journal.append(
            OP_DELETE, payload, sync=self.group_commit <= 1,
            _writer=self._take_torn_append(),
        )
        self._hook("delete:post-append")
        self._count_group_append()
        self.tree.delete(point_id)

    def checkpoint(self) -> None:
        """Fold the journal into the container, then reset the journal.

        Atomic at every boundary: the container save is temp + fsync +
        rename carrying ``wal_seq = last_seq``; the journal reset is
        its own atomic replace.  A crash anywhere in between recovers
        to the same acknowledged state (replay filters on ``wal_seq``).
        """
        previous = self.tree._wal_seq
        # Drain the group first: a checkpoint acknowledges everything
        # appended so far, so its records must be durable before the
        # journal is reset from under them.
        self.sync()
        try:
            self._hook("checkpoint:pre-save")
            self.tree._wal_seq = self.journal.last_seq
            blob = serialize_iqtree(self.tree)
            budget = self._torn_checkpoint_budget
            self._torn_checkpoint_budget = None
            if budget is None:
                _atomic_write(self.path, blob, fsync=self.fsync)
            else:

                def tearing_writer(handle, data: bytes) -> None:
                    handle.write(data[:budget])
                    handle.flush()
                    raise PowerLoss(
                        f"simulated power loss after "
                        f"{min(budget, len(data))} of {len(data)} "
                        f"checkpoint bytes"
                    )

                _atomic_write(
                    self.path, blob, fsync=self.fsync,
                    _writer=tearing_writer,
                )
            self._hook("checkpoint:post-save")
            self.journal.reset(self.tree._wal_seq)
            self._hook("checkpoint:post-reset")
        except BaseException:
            self.tree._wal_seq = previous
            if REGISTRY.enabled:
                WAL_CHECKPOINTS.inc(outcome="error")
            raise
        if REGISTRY.enabled:
            WAL_CHECKPOINTS.inc(outcome="ok")

    # ------------------------------------------------------------------
    # Fault injection (chaos harness)
    # ------------------------------------------------------------------
    def inject_crash(self, point: str) -> None:
        """Arm a :class:`PowerLoss` at a named protocol boundary."""
        if point not in CRASH_POINTS:
            raise StorageError(
                f"unknown crash point {point!r}; see CRASH_POINTS"
            )
        self._crash_points.add(point)

    def inject_torn_append(self, byte_budget: int) -> None:
        """Cut the power ``byte_budget`` bytes into the *next* append."""
        self._torn_append_budget = int(byte_budget)

    def inject_torn_checkpoint(self, byte_budget: int) -> None:
        """Cut the power mid-write of the next checkpoint's temp file."""
        self._torn_checkpoint_budget = int(byte_budget)

    def _hook(self, name: str) -> None:
        if name in self._crash_points:
            self._crash_points.discard(name)
            raise PowerLoss(f"simulated power loss at {name}")

    def _take_torn_append(self):
        budget = self._torn_append_budget
        if budget is None:
            return None
        self._torn_append_budget = None

        def tearing_writer(handle, record: bytes) -> None:
            handle.write(record[:budget])
            handle.flush()
            raise PowerLoss(
                f"simulated power loss after {min(budget, len(record))} "
                f"of {len(record)} journal bytes"
            )

        return tearing_writer

    def __repr__(self) -> str:
        return (
            f"DurableTree({self.path.name}, seq={self.journal.last_seq}, "
            f"checkpointed={self.tree._wal_seq})"
        )
