"""Command-line entry point for the figure experiments.

Usage::

    python -m repro.experiments figure8            # default scale
    python -m repro.experiments figure9 --scale 2  # 2x database sizes
    python -m repro.experiments all --queries 5
    python -m repro.experiments figure7 --out results.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import figures
from repro.experiments.report import format_figure

__all__ = ["main", "FIGURES"]

#: name -> (figure function, scalable size kwarg)
FIGURES: dict[str, tuple[Callable, str]] = {
    "figure7": (figures.figure7, "n"),
    "figure8": (figures.figure8, "n"),
    "figure9": (figures.figure9, "ns"),
    "figure10": (figures.figure10, "ns"),
    "figure11": (figures.figure11, "ns"),
    "figure12": (figures.figure12, "ns"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate the paper's evaluation figures on the simulated "
            "disk and print the series as text tables."
        ),
    )
    parser.add_argument(
        "figure",
        choices=[*FIGURES, "all"],
        help="which figure to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiplier on every database size (default 1.0)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=10,
        help="held-out query points per configuration (default 10)",
    )
    parser.add_argument(
        "--k", type=int, default=1, help="neighbors per query (default 1)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="also append the tables to this file",
    )
    return parser


def _run_one(name: str, args: argparse.Namespace) -> str:
    func, size_kwarg = FIGURES[name]
    kwargs = {"n_queries": args.queries, "k": args.k, "seed": args.seed}
    if args.scale != 1.0:
        defaults = func.__defaults__[0]
        if size_kwarg == "n":
            kwargs["n"] = max(500, int(defaults * args.scale))
        else:
            kwargs["ns"] = tuple(
                max(500, int(n * args.scale)) for n in defaults
            )
    result = func(**kwargs)
    return format_figure(result)


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    names = list(FIGURES) if args.figure == "all" else [args.figure]
    outputs = []
    for name in names:
        text = _run_one(name, args)
        print(text)
        print()
        outputs.append(text)
    if args.out:
        with open(args.out, "a") as handle:
            for text in outputs:
                handle.write(text + "\n\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
