"""Experiment harness reproducing the paper's evaluation (Figures 7-12).

* :mod:`repro.experiments.harness` -- build helpers and workload runners
  that measure mean simulated query time per method.
* :mod:`repro.experiments.figures` -- one function per paper figure,
  each returning a :class:`~repro.experiments.harness.FigureResult`
  with the same series the paper plots.
* :mod:`repro.experiments.report` -- plain-text table rendering.
"""

from repro.experiments.harness import (
    FigureResult,
    WorkloadStats,
    run_nn_workload,
    best_vafile,
)
from repro.experiments.figures import (
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
)
from repro.experiments.report import format_figure
from repro.experiments.validation import ModelValidation, validate_cost_model

__all__ = [
    "ModelValidation",
    "validate_cost_model",
    "FigureResult",
    "WorkloadStats",
    "run_nn_workload",
    "best_vafile",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "format_figure",
]
