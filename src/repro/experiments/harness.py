"""Workload measurement harness.

Every method (the IQ-tree and the three baselines) exposes
``nearest(query, k) -> answer`` with an ``io`` ledger delta and shares
the same simulated-disk timing model, so "query time" means the same
thing for all of them.  The harness parks the disk head before each
query (modelling an arbitrary intervening workload), runs the workload,
and aggregates per-query statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.baselines.vafile import VAFile
from repro.storage.disk import SimulatedDisk

__all__ = [
    "WorkloadStats",
    "FigureResult",
    "run_nn_workload",
    "best_vafile",
    "experiment_disk",
]


def experiment_disk() -> SimulatedDisk:
    """The disk model all reproduced experiments run on.

    A consistent 1:4 scale model of the default late-1990s disk: 2 KiB
    blocks (vs 8 KiB) at the same 10 MB/s transfer rate, with the seek
    time reduced by the same factor (2.5 ms vs 10 ms) so the over-read
    window ``v = t_seek / t_xfer ~ 12.5`` matches the paper-era ratio.
    The published experiments use 500k points on 8 KiB pages; the
    selectivity and scheduling effects the figures show depend on the
    *number of pages* (split depth) and on the seek-vs-scan balance, and
    the scale model preserves both at laptop-scale point counts.
    """
    from repro.storage.disk import DiskModel

    return SimulatedDisk(
        DiskModel(t_seek=0.0025, t_xfer=0.0002, block_size=2048)
    )


@dataclass
class WorkloadStats:
    """Aggregated statistics of one method over one query workload."""

    name: str
    times: np.ndarray
    seeks: np.ndarray
    blocks: np.ndarray
    refinements: np.ndarray

    @property
    def mean_time(self) -> float:
        """Mean simulated query time in seconds."""
        return float(self.times.mean())

    @property
    def std_time(self) -> float:
        """Standard deviation of the simulated query time."""
        return float(self.times.std())

    @property
    def mean_seeks(self) -> float:
        """Mean random seeks per query."""
        return float(self.seeks.mean())

    @property
    def mean_blocks(self) -> float:
        """Mean blocks transferred per query."""
        return float(self.blocks.mean())

    @property
    def mean_refinements(self) -> float:
        """Mean exact-record look-ups per query."""
        return float(self.refinements.mean())


@dataclass
class FigureResult:
    """One reproduced figure: x values plus one time series per method."""

    figure_id: str
    title: str
    x_label: str
    x_values: list
    series: dict[str, list[float]] = field(default_factory=dict)
    details: dict[str, dict] = field(default_factory=dict)

    def add(self, name: str, x, stats: WorkloadStats) -> None:
        """Record one measured point of one series."""
        self.series.setdefault(name, [])
        self.series[name].append(stats.mean_time)
        self.details.setdefault(name, {})[x] = stats

    def ratio(self, slower: str, faster: str) -> list[float]:
        """Per-x speedup of ``faster`` over ``slower``."""
        if slower not in self.series or faster not in self.series:
            raise ReproError("unknown series name")
        return [
            s / f for s, f in zip(self.series[slower], self.series[faster])
        ]


def run_nn_workload(
    method,
    queries: np.ndarray,
    k: int = 1,
    name: str | None = None,
    nearest: Callable | None = None,
) -> WorkloadStats:
    """Run a k-NN workload and aggregate its simulated-I/O statistics.

    Parameters
    ----------
    method:
        An index object with a ``disk`` attribute and a
        ``nearest(query, k)`` method.
    queries:
        Query points, shape ``(q, d)``.
    k:
        Neighbors per query.
    name:
        Series label (defaults to ``method.name`` or the class name).
    nearest:
        Optional override called as ``nearest(query)``, for methods
        whose query entry point needs extra arguments (e.g. the
        IQ-tree's scheduler choice).
    """
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[0] == 0:
        raise ReproError("queries must be a non-empty (q, d) array")
    call = nearest or (lambda q: method.nearest(q, k=k))
    times, seeks, blocks, refinements = [], [], [], []
    for query in queries:
        method.disk.park()
        answer = call(query)
        times.append(answer.io.elapsed)
        seeks.append(answer.io.seeks)
        blocks.append(answer.io.blocks_read)
        refinements.append(getattr(answer, "refinements", 0))
    label = name or getattr(method, "name", type(method).__name__)
    return WorkloadStats(
        name=label,
        times=np.array(times),
        seeks=np.array(seeks, dtype=np.float64),
        blocks=np.array(blocks, dtype=np.float64),
        refinements=np.array(refinements, dtype=np.float64),
    )


def best_vafile(
    data: np.ndarray,
    queries: np.ndarray,
    k: int = 1,
    bits_candidates: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    metric="euclidean",
    disk_factory: Callable[[], SimulatedDisk] | None = None,
) -> tuple[VAFile, WorkloadStats, dict[int, float]]:
    """Sweep the VA-file's bits-per-dimension and keep the fastest.

    The paper tunes the VA-file this way before every comparison
    ("we first tested the VA-file with different numbers of bits per
    dimension (between 2 and 8) and then selected the compression rate
    for which the VA-file performed best").

    Returns ``(best_vafile, its_stats, mean_time_by_bits)``.
    """
    if not bits_candidates:
        raise ReproError("need at least one bits candidate")
    factory = disk_factory or SimulatedDisk
    best: tuple[VAFile, WorkloadStats] | None = None
    sweep: dict[int, float] = {}
    for bits in bits_candidates:
        va = VAFile(data, bits=bits, disk=factory(), metric=metric)
        stats = run_nn_workload(va, queries, k=k, name=f"va-file({bits}b)")
        sweep[bits] = stats.mean_time
        if best is None or stats.mean_time < best[1].mean_time:
            best = (va, stats)
    va, stats = best
    stats.name = "va-file"
    return va, stats, sweep
