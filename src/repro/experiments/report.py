"""Plain-text rendering of reproduced figures.

The benchmark harness prints the same rows/series a paper figure plots:
one row per x value, one column per method, mean simulated query time in
seconds.
"""

from __future__ import annotations

from repro.experiments.harness import FigureResult

__all__ = ["format_figure", "format_sweep"]


def format_figure(result: FigureResult, precision: int = 4) -> str:
    """Render a :class:`FigureResult` as an aligned text table."""
    names = list(result.series)
    header = [result.x_label] + names
    rows = [header]
    for i, x in enumerate(result.x_values):
        row = [f"{x}"]
        for name in names:
            row.append(f"{result.series[name][i]:.{precision}f}")
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = [f"{result.figure_id}: {result.title}", ""]
    for r, row in enumerate(rows):
        line = "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        lines.append(line)
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_sweep(sweep: dict, label: str = "bits") -> str:
    """Render a parameter sweep (e.g. the VA-file bits tuning)."""
    parts = [f"{label}={key}: {value:.4f}s" for key, value in sweep.items()]
    return ", ".join(parts)
