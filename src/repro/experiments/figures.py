"""One experiment definition per paper figure (Figures 7-12).

Each function sweeps the figure's x axis, builds every method on a fresh
simulated disk, runs the shared held-out query workload, and returns a
:class:`~repro.experiments.harness.FigureResult` with the paper's
series.  Default scales are reduced relative to the paper's 500k-point
databases (the shapes are scale-stable; pass larger ``n``/``ns`` to go
bigger) -- see DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.tree import IQTree
from repro.baselines.scan import SequentialScan
from repro.baselines.xtree import XTree
from repro.datasets import (
    cad_like,
    color_histogram_like,
    make_workload,
    uniform,
    weather_like,
)
from repro.experiments.harness import (
    FigureResult,
    best_vafile,
    experiment_disk,
    run_nn_workload,
)

__all__ = [
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
]

#: series labels reused across figures
IQ_TREE = "iq-tree"
X_TREE = "x-tree"
VA_FILE = "va-file"
SCAN = "scan"


def _iq_variant(
    data: np.ndarray, optimize: bool, scheduler: str, queries: np.ndarray,
    k: int,
):
    """Build one IQ-tree ablation variant and run the workload."""
    tree = IQTree.build(data, disk=experiment_disk(), optimize=optimize)
    return run_nn_workload(
        tree,
        queries,
        k=k,
        nearest=lambda q: tree.nearest(q, k=k, scheduler=scheduler),
    )


def figure7(
    n: int = 20_000,
    dims: Sequence[int] = (4, 6, 8, 10, 12, 16),
    n_queries: int = 10,
    k: int = 1,
    seed: int = 0,
) -> FigureResult:
    """Fig. 7 -- IQ-tree concept ablation on UNIFORM, varying dimension.

    Four variants: {optimized, standard} NN page scheduling x
    {quantization, none}.  Paper: quantization pays off for d >~ 8;
    optimized scheduling helps at every d.
    """
    result = FigureResult(
        "figure7",
        "IQ-tree concept ablation on UNIFORM "
        f"({n:,} points, varying dimension)",
        "dimension",
        list(dims),
    )
    variants = [
        ("optimized NN-search, quantization", True, "optimized"),
        ("optimized NN-search, no quantization", False, "optimized"),
        ("standard NN-search, quantization", True, "standard"),
        ("standard NN-search, no quantization", False, "standard"),
    ]
    for dim in dims:
        data, queries = make_workload(
            uniform, n=n, n_queries=n_queries, seed=seed, dim=dim
        )
        for name, optimize, scheduler in variants:
            stats = _iq_variant(data, optimize, scheduler, queries, k)
            stats.name = name
            result.add(name, dim, stats)
    return result


def _comparison_at(
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    include_scan: bool,
) -> dict:
    """Build and measure the four compared methods on one data set."""
    out = {}
    tree = IQTree.build(data, disk=experiment_disk())
    out[IQ_TREE] = run_nn_workload(tree, queries, k=k, name=IQ_TREE)
    xtree = XTree(data, disk=experiment_disk())
    out[X_TREE] = run_nn_workload(xtree, queries, k=k, name=X_TREE)
    _va, va_stats, _sweep = best_vafile(
        data, queries, k=k, disk_factory=experiment_disk
    )
    out[VA_FILE] = va_stats
    if include_scan:
        scan = SequentialScan(data, disk=experiment_disk())
        out[SCAN] = run_nn_workload(scan, queries, k=k, name=SCAN)
    return out


def _comparison_figure(
    figure_id: str,
    title: str,
    x_label: str,
    x_values: Sequence,
    dataset_at: Callable[[object], tuple[np.ndarray, np.ndarray]],
    k: int,
    include_scan: bool,
) -> FigureResult:
    result = FigureResult(figure_id, title, x_label, list(x_values))
    for x in x_values:
        data, queries = dataset_at(x)
        for name, stats in _comparison_at(
            data, queries, k, include_scan
        ).items():
            result.add(name, x, stats)
    return result


def figure8(
    n: int = 30_000,
    dims: Sequence[int] = (4, 6, 8, 10, 12, 16),
    n_queries: int = 10,
    k: int = 1,
    seed: int = 0,
) -> FigureResult:
    """Fig. 8 -- method comparison on UNIFORM, varying dimension.

    Paper: X-tree ~ IQ-tree below d=8, degenerates past the scan around
    d=12; IQ-tree beats the VA-file at every d (up to ~3x at d=16).
    """
    return _comparison_figure(
        "figure8",
        f"Method comparison on UNIFORM ({n:,} points, varying dimension)",
        "dimension",
        dims,
        lambda dim: make_workload(
            uniform, n=n, n_queries=n_queries, seed=seed, dim=dim
        ),
        k,
        include_scan=True,
    )


def figure9(
    ns: Sequence[int] = (10_000, 20_000, 40_000, 80_000),
    dim: int = 16,
    n_queries: int = 10,
    k: int = 1,
    seed: int = 0,
) -> FigureResult:
    """Fig. 9 -- UNIFORM, 16 dimensions, varying database size.

    Paper: IQ-tree and VA-file beat X-tree/scan by >= an order of
    magnitude; the IQ-tree/VA-file gap (1.6x-3x) grows with N.
    """
    return _comparison_figure(
        "figure9",
        f"Method comparison on UNIFORM ({dim} dims, varying N)",
        "number of points",
        ns,
        lambda n: make_workload(
            uniform, n=n, n_queries=n_queries, seed=seed, dim=dim
        ),
        k,
        include_scan=True,
    )


def figure10(
    ns: Sequence[int] = (10_000, 20_000, 40_000, 80_000),
    dim: int = 16,
    n_queries: int = 10,
    k: int = 1,
    seed: int = 0,
) -> FigureResult:
    """Fig. 10 -- CAD analogue (moderately clustered), varying N.

    Paper: the X-tree beats the VA-file despite the high dimension; the
    IQ-tree beats both (up to 3x vs X-tree, 5x vs VA-file).
    """
    return _comparison_figure(
        "figure10",
        f"Method comparison on CAD analogue ({dim} dims, varying N)",
        "number of points",
        ns,
        lambda n: make_workload(
            cad_like, n=n, n_queries=n_queries, seed=seed, dim=dim
        ),
        k,
        include_scan=False,
    )


def figure11(
    ns: Sequence[int] = (20_000, 40_000, 80_000),
    dim: int = 16,
    n_queries: int = 10,
    k: int = 1,
    seed: int = 0,
) -> FigureResult:
    """Fig. 11 -- COLOR analogue (slightly clustered), varying N.

    Paper: IQ-tree best (up to 2.6x vs VA-file, 6.6x vs X-tree); the
    X-tree still beats the sequential scan.
    """
    return _comparison_figure(
        "figure11",
        f"Method comparison on COLOR analogue ({dim} dims, varying N)",
        "number of points",
        ns,
        lambda n: make_workload(
            color_histogram_like, n=n, n_queries=n_queries, seed=seed,
            dim=dim,
        ),
        k,
        include_scan=True,
    )


def figure12(
    ns: Sequence[int] = (20_000, 40_000, 80_000, 120_000),
    dim: int = 9,
    n_queries: int = 10,
    k: int = 1,
    seed: int = 0,
) -> FigureResult:
    """Fig. 12 -- WEATHER analogue (highly clustered, low D_F), varying N.

    Paper: X-tree ~ IQ-tree; both beat the VA-file by up to 11.5x.
    """
    return _comparison_figure(
        "figure12",
        f"Method comparison on WEATHER analogue ({dim} dims, varying N)",
        "number of points",
        ns,
        lambda n: make_workload(
            weather_like, n=n, n_queries=n_queries, seed=seed, dim=dim
        ),
        k,
        include_scan=True,
    )
