"""Cost-model validation: predicted vs. measured query behaviour.

The optimizer is only as good as its cost model, so this module checks
the model's three levels directly against instrumented query runs:

* predicted second-level page accesses (eqs. 16-18) vs. measured pages
  read per query,
* predicted third-level refinement look-ups (eq. 15) vs. measured
  refinements per query,
* predicted total time (eq. 23) vs. measured simulated time.

These are the quantities the paper's optimality theorem is *relative
to* ("optimal with respect to a given cost model"); validating them
closes the loop between the theorem and the measured figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tree import IQTree
from repro.costmodel.pages import expected_page_accesses

__all__ = ["ModelValidation", "validate_cost_model"]


@dataclass
class ModelValidation:
    """Predicted-vs-measured summary for one tree and workload.

    ``*_ratio`` fields are predicted / measured; 1.0 is a perfect
    model, and the paper-era literature treats anything within a small
    constant factor as a usable optimizer signal.
    """

    predicted_pages: float
    measured_pages: float
    predicted_refinements: float
    measured_refinements: float
    predicted_time: float
    measured_time: float

    @property
    def pages_ratio(self) -> float:
        """Predicted / measured second-level page accesses."""
        return self.predicted_pages / max(self.measured_pages, 1e-12)

    @property
    def refinements_ratio(self) -> float:
        """Predicted / measured third-level look-ups."""
        return self.predicted_refinements / max(
            self.measured_refinements, 1e-12
        )

    @property
    def time_ratio(self) -> float:
        """Predicted / measured total simulated time."""
        return self.predicted_time / max(self.measured_time, 1e-12)

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"pages {self.predicted_pages:.1f}/{self.measured_pages:.1f} "
            f"({self.pages_ratio:.2f}x), "
            f"refinements {self.predicted_refinements:.2f}/"
            f"{self.measured_refinements:.2f} "
            f"({self.refinements_ratio:.2f}x), "
            f"time {self.predicted_time * 1e3:.2f}/"
            f"{self.measured_time * 1e3:.2f} ms "
            f"({self.time_ratio:.2f}x)"
        )


def validate_cost_model(
    tree: IQTree, queries: np.ndarray, k: int = 1
) -> ModelValidation:
    """Run ``queries`` against ``tree`` and compare with the model.

    The tree's own bound cost model supplies the predictions; the
    queries are executed with the optimized scheduler and instrumented.
    """
    queries = np.asarray(queries, dtype=np.float64)
    model = tree.cost_model

    predicted_pages = expected_page_accesses(
        tree.n_pages,
        tree.n_live_points,
        tree.dim,
        fractal_dim=model.fractal_dim,
        data_space_volume=model.data_space_volume,
        metric=model.metric,
        k=k,
    )
    breakdown = tree.estimated_query_cost()
    per_lookup = tree.disk.model.t_seek + tree.disk.model.t_xfer
    predicted_refinements = breakdown.refinement / per_lookup

    pages, refinements, times = [], [], []
    for query in queries:
        # Page-access counts are compared under the standard scheduler:
        # eqs. 16-18 predict the *minimum* pages an NN query must read,
        # while the optimized scheduler deliberately pre-reads extra
        # pages (trading transfers for seeks).
        tree.disk.park()
        minimal = tree.nearest(query, k=k, scheduler="standard")
        pages.append(minimal.pages_read)
        refinements.append(minimal.refinements)
        # Total time is compared under the optimized scheduler -- the
        # configuration the optimizer's T_2nd term models (eq. 21).
        tree.disk.park()
        times.append(tree.nearest(query, k=k).io.elapsed)

    return ModelValidation(
        predicted_pages=float(predicted_pages),
        measured_pages=float(np.mean(pages)),
        predicted_refinements=float(predicted_refinements),
        measured_refinements=float(np.mean(refinements)),
        predicted_time=float(breakdown.total),
        measured_time=float(np.mean(times)),
    )
