"""Grid quantizer relative to a page's MBR.

Quantization divides each side of the page's MBR into ``2^g`` equal
intervals ("virtual grid cells", paper Section 3.1) and stores, per
point, only the index of the cell that contains it.  A cell is a
conservative box approximation of its point, so search can compute lower
and upper distance bounds from the query to each point without touching
the exact coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import QuantizationError
from repro.geometry.mbr import MBR, mindist_to_boxes, maxdist_to_boxes
from repro.geometry.metrics import EUCLIDEAN

__all__ = ["GridQuantizer"]


class GridQuantizer:
    """Encode/decode points against the ``2^g`` grid of one MBR.

    Parameters
    ----------
    mbr:
        The page's minimum bounding rectangle.  All encoded points must
        lie inside it.
    bits:
        Bits per dimension ``g``, ``1 <= g <= 31``.  (The ``g = 32``
        exact representation bypasses the quantizer entirely.)

    Notes
    -----
    Degenerate MBR sides (zero extent) quantize every point to cell 0 in
    that dimension and decode to the exact (shared) coordinate, which is
    both valid and maximally tight.
    """

    def __init__(self, mbr: MBR, bits: int):
        if not 1 <= bits <= 31:
            raise QuantizationError("grid quantizer needs bits in [1, 31]")
        self.mbr = mbr
        self.bits = int(bits)
        self.n_cells = 1 << self.bits
        extents = mbr.extents
        # Guard degenerate sides: cell width 0 would divide by zero on
        # encode; use width 1 there and clamp codes to 0 (extent is 0, so
        # every in-box coordinate equals the lower bound).
        self._degenerate = extents == 0.0
        safe_extents = np.where(self._degenerate, 1.0, extents)
        self._cell_width = safe_extents / self.n_cells

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, points: np.ndarray) -> np.ndarray:
        """Map points (shape ``(m, d)``) to uint32 cell codes.

        Points must lie inside the MBR (boundary inclusive); points on
        the upper boundary fall into the last cell.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.mbr.dim:
            raise QuantizationError(
                f"expected (m, {self.mbr.dim}) points, got {points.shape}"
            )
        below = points < self.mbr.lower - 1e-12
        above = points > self.mbr.upper + 1e-12
        if np.any(below) or np.any(above):
            raise QuantizationError("point outside the quantizer's MBR")
        offsets = points - self.mbr.lower
        codes = np.floor(offsets / self._cell_width).astype(np.int64)
        np.clip(codes, 0, self.n_cells - 1, out=codes)
        codes[:, self._degenerate] = 0
        return codes.astype(np.uint32)

    def cell_bounds(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Conservative per-point boxes for cell codes ``(m, d)``.

        Returns ``(lowers, uppers)`` of shape ``(m, d)``.  Degenerate
        dimensions decode to the exact shared coordinate.
        """
        codes = np.asarray(codes, dtype=np.float64)
        lowers = self.mbr.lower + codes * self._cell_width
        uppers = lowers + self._cell_width
        if np.any(self._degenerate):
            exact = np.broadcast_to(self.mbr.lower, codes.shape)
            lowers = np.where(self._degenerate, exact, lowers)
            uppers = np.where(self._degenerate, exact, uppers)
        return lowers, uppers

    def decode_centers(self, codes: np.ndarray) -> np.ndarray:
        """Cell center points -- the best single-point reconstruction."""
        lowers, uppers = self.cell_bounds(codes)
        return 0.5 * (lowers + uppers)

    # ------------------------------------------------------------------
    # Distance bounds (the search hot path)
    # ------------------------------------------------------------------
    def cell_mindist(
        self, query: np.ndarray, codes: np.ndarray, metric=None
    ) -> np.ndarray:
        """Lower bound on the query-to-point distance for each code."""
        metric = metric or EUCLIDEAN
        lowers, uppers = self.cell_bounds(codes)
        return mindist_to_boxes(query, lowers, uppers, metric)

    def cell_maxdist(
        self, query: np.ndarray, codes: np.ndarray, metric=None
    ) -> np.ndarray:
        """Upper bound on the query-to-point distance for each code."""
        metric = metric or EUCLIDEAN
        lowers, uppers = self.cell_bounds(codes)
        return maxdist_to_boxes(query, lowers, uppers, metric)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cell_widths(self) -> np.ndarray:
        """Per-dimension cell side lengths (0-extent dims report 0)."""
        return np.where(self._degenerate, 0.0, self._cell_width)

    def max_quantization_error(self, metric=None) -> float:
        """Largest possible point-to-cell-center distance."""
        metric = metric or EUCLIDEAN
        return metric.length(0.5 * self.cell_widths)

    def __repr__(self) -> str:
        return f"GridQuantizer(bits={self.bits}, dim={self.mbr.dim})"
