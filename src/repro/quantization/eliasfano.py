"""Elias-Fano compressed integer lists for the first-level directory.

A directory entry is an exact float32 MBR plus four u32 references
(quantized page id, exact-run first block, exact-run block count, point
count).  The MBR floats carry real geometry, but the references are
small, near-monotone integers -- exactly the regime where the Elias-Fano
representation stores a monotone list of ``n`` values with universe
``u`` in ``n * (2 + log2(u/n))`` bits instead of 32 per value.

Two encodings per list, chosen automatically and recorded in the blob
header:

* **mode 0 (direct)** -- the values are already monotone nondecreasing
  (page ids are consecutive, exact-run firsts are sorted by layout).
* **mode 1 (cumsum)** -- arbitrary non-negative values are prefix-summed
  into a monotone list and recovered by differencing.

Blobs are self-delimiting (the 12-byte header carries the element
count, the upper-bitmap byte length, the low-bit width, and the mode),
so a directory block concatenates MBR rows and four blobs with no
offset table.  Decoding reproduces the exact input arrays, which is
what keeps the Elias-Fano directory answer-invariant: queries consume
identical decoded arrays, just from fewer transferred blocks.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import StorageError
from repro.quantization.bitpack import pack_codes, packed_size

__all__ = [
    "encode_ef_list",
    "decode_ef_list",
    "ef_list_size",
    "encode_ef_directory",
    "decode_ef_directory",
]

#: blob header: u32 n, u32 upper_bytes, u8 low_bits, u8 mode, 2 pad
_EF_HEADER = struct.Struct("<IIBBxx")

#: directory block header: u16 entry count, u16 reserved
_EF_BLOCK_HEADER = struct.Struct("<HH")

_MODE_DIRECT = 0
_MODE_CUMSUM = 1


def _low_bits(universe: int, n: int) -> int:
    if n <= 0 or universe <= 0:
        return 0
    ratio = universe // n
    return ratio.bit_length() - 1 if ratio >= 1 else 0


def _encode_monotone(values: np.ndarray, mode: int) -> bytes:
    n = int(values.size)
    if n == 0:
        return _EF_HEADER.pack(0, 0, 0, mode)
    universe = int(values[-1])
    low = _low_bits(universe, n)
    if low > 0:
        low_vals = (values & ((1 << low) - 1)).astype(np.uint32)
        low_stream = pack_codes(low_vals, low)
    else:
        low_stream = b""
    high = (values >> low) + np.arange(n, dtype=np.uint64)
    n_bits = int(high[-1]) + 1
    bits = np.zeros(n_bits, dtype=np.uint8)
    bits[high.astype(np.int64)] = 1
    upper = np.packbits(bits, bitorder="little").tobytes()
    return (
        _EF_HEADER.pack(n, len(upper), low, mode) + low_stream + upper
    )


def encode_ef_list(values: np.ndarray) -> bytes:
    """Encode a non-negative integer list as a self-delimiting EF blob."""
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise StorageError("Elias-Fano input must be one-dimensional")
    if values.size and int(values.min()) < 0:
        raise StorageError("Elias-Fano input must be non-negative")
    as_u64 = values.astype(np.uint64)
    if values.size == 0 or np.all(values[1:] >= values[:-1]):
        return _encode_monotone(as_u64, _MODE_DIRECT)
    return _encode_monotone(np.cumsum(as_u64), _MODE_CUMSUM)


def ef_list_size(values: np.ndarray) -> int:
    """Encoded byte length of :func:`encode_ef_list` without encoding.

    Exact: both the mode choice and the header arithmetic are repeated
    symbolically, so greedy block packing can budget without building
    the blobs it will throw away.
    """
    values = np.asarray(values, dtype=np.int64)
    n = int(values.size)
    if n == 0:
        return _EF_HEADER.size
    if np.all(values[1:] >= values[:-1]):
        top = int(values[-1])
    else:
        top = int(values.sum())
    low = _low_bits(top, n)
    low_bytes = packed_size(n, low) if low else 0
    upper_bits = (top >> low) + n
    return _EF_HEADER.size + low_bytes + (upper_bits + 7) // 8


def decode_ef_list(blob: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
    """Decode one blob at ``offset``; returns ``(values, next_offset)``."""
    if len(blob) - offset < _EF_HEADER.size:
        raise StorageError("Elias-Fano blob header truncated")
    n, upper_bytes, low, mode = _EF_HEADER.unpack_from(blob, offset)
    if mode not in (_MODE_DIRECT, _MODE_CUMSUM):
        raise StorageError(f"unknown Elias-Fano mode {mode}")
    if low > 32:
        raise StorageError(f"Elias-Fano low-bit width {low} out of range")
    cursor = offset + _EF_HEADER.size
    if n == 0:
        return np.zeros(0, dtype=np.int64), cursor
    low_bytes = packed_size(n, low) if low else 0
    if len(blob) - cursor < low_bytes + upper_bytes:
        raise StorageError("Elias-Fano blob body truncated")
    if low:
        from repro.quantization.bitpack import unpack_codes

        low_vals = unpack_codes(
            blob[cursor : cursor + low_bytes], low, n, 1
        ).reshape(n).astype(np.uint64)
    else:
        low_vals = np.zeros(n, dtype=np.uint64)
    cursor += low_bytes
    raw = np.frombuffer(blob, dtype=np.uint8, count=upper_bytes, offset=cursor)
    cursor += upper_bytes
    positions = np.flatnonzero(
        np.unpackbits(raw, bitorder="little")
    ).astype(np.uint64)
    if positions.size < n:
        raise StorageError("Elias-Fano upper bitmap has too few set bits")
    high = positions[:n] - np.arange(n, dtype=np.uint64)
    values = ((high << np.uint64(low)) | low_vals).astype(np.int64)
    if np.any(values[1:] < values[:-1]):
        raise StorageError("Elias-Fano decoded list not monotone")
    if mode == _MODE_CUMSUM:
        values = np.diff(values, prepend=np.int64(0))
    return values, cursor


# ----------------------------------------------------------------------
# The Elias-Fano directory block format
# ----------------------------------------------------------------------
def _encode_block(
    lowers: np.ndarray,
    uppers: np.ndarray,
    refs: list[np.ndarray],
    start: int,
    stop: int,
) -> bytes:
    n = stop - start
    d = lowers.shape[1]
    mbr = np.empty((n, 8 * d), dtype=np.uint8)
    mbr[:, : 4 * d] = (
        lowers[start:stop].astype("<f4").view(np.uint8).reshape(n, 4 * d)
    )
    mbr[:, 4 * d :] = (
        uppers[start:stop].astype("<f4").view(np.uint8).reshape(n, 4 * d)
    )
    blobs = b"".join(encode_ef_list(col[start:stop]) for col in refs)
    return _EF_BLOCK_HEADER.pack(n, 0) + mbr.tobytes() + blobs


def _block_size_for(
    refs: list[np.ndarray], dim: int, start: int, stop: int
) -> int:
    n = stop - start
    return (
        _EF_BLOCK_HEADER.size
        + n * 8 * dim
        + sum(ef_list_size(col[start:stop]) for col in refs)
    )


def encode_ef_directory(
    lowers: np.ndarray,
    uppers: np.ndarray,
    quant_pages: np.ndarray,
    exact_firsts: np.ndarray,
    exact_counts: np.ndarray,
    point_counts: np.ndarray,
    block_size: int,
) -> list[bytes]:
    """Serialize the directory with Elias-Fano reference columns.

    Greedy fill: each block takes the longest entry prefix whose
    encoded size fits ``block_size`` (found by binary search on the
    exact size function), so the block count is minimal for this
    format.  The decoded arrays are bit-identical to the dense format's
    -- only the block count changes.
    """
    lowers = np.asarray(lowers, dtype=np.float64)
    uppers = np.asarray(uppers, dtype=np.float64)
    if lowers.ndim != 2 or lowers.shape != uppers.shape:
        raise StorageError("directory bounds must be matching (n, d)")
    n, d = lowers.shape
    refs = [
        np.asarray(quant_pages, dtype=np.int64),
        np.asarray(exact_firsts, dtype=np.int64),
        np.asarray(exact_counts, dtype=np.int64),
        np.asarray(point_counts, dtype=np.int64),
    ]
    for col in refs:
        if col.shape != (n,):
            raise StorageError("directory reference columns must be (n,)")
    blocks: list[bytes] = []
    start = 0
    while start < n:
        lo_c, hi_c = 1, min(n - start, 0xFFFF)
        if _block_size_for(refs, d, start, start + 1) > block_size:
            raise StorageError(
                "Elias-Fano directory entry larger than a block"
            )
        while lo_c < hi_c:
            mid = (lo_c + hi_c + 1) // 2
            if _block_size_for(refs, d, start, start + mid) <= block_size:
                lo_c = mid
            else:
                hi_c = mid - 1
        payload = _encode_block(lowers, uppers, refs, start, start + lo_c)
        if len(payload) > block_size:
            raise StorageError("Elias-Fano directory block overflow")
        blocks.append(payload)
        start += lo_c
    return blocks


def decode_ef_directory(
    blocks: list[bytes], dim: int, n_entries: int
) -> dict[str, np.ndarray]:
    """Inverse of :func:`encode_ef_directory`; dense-format return shape."""
    lowers_parts: list[np.ndarray] = []
    uppers_parts: list[np.ndarray] = []
    ref_parts: list[list[np.ndarray]] = [[], [], [], []]
    seen = 0
    for payload in blocks:
        if seen >= n_entries:
            break
        if len(payload) < _EF_BLOCK_HEADER.size:
            raise StorageError("Elias-Fano directory block truncated")
        n, _reserved = _EF_BLOCK_HEADER.unpack_from(payload)
        if n < 1 or seen + n > n_entries:
            raise StorageError(
                "Elias-Fano directory block entry count inconsistent"
            )
        mbr_bytes = n * 8 * dim
        offset = _EF_BLOCK_HEADER.size
        if len(payload) < offset + mbr_bytes:
            raise StorageError("Elias-Fano directory MBR rows truncated")
        rows = np.frombuffer(
            payload, dtype=np.uint8, count=mbr_bytes, offset=offset
        ).reshape(n, 8 * dim)
        lowers_parts.append(
            np.ascontiguousarray(rows[:, : 4 * dim])
            .view("<f4")
            .astype(np.float64)
            .reshape(n, dim)
        )
        uppers_parts.append(
            np.ascontiguousarray(rows[:, 4 * dim :])
            .view("<f4")
            .astype(np.float64)
            .reshape(n, dim)
        )
        cursor = offset + mbr_bytes
        for c in range(4):
            values, cursor = decode_ef_list(payload, cursor)
            if values.size != n:
                raise StorageError(
                    "Elias-Fano reference column length mismatch"
                )
            ref_parts[c].append(values)
        seen += n
    if seen != n_entries:
        raise StorageError("directory blocks truncated")
    names = ("quant_pages", "exact_firsts", "exact_counts", "point_counts")
    out = {
        "lowers": np.concatenate(lowers_parts, axis=0),
        "uppers": np.concatenate(uppers_parts, axis=0),
    }
    for name, parts in zip(names, ref_parts):
        out[name] = np.concatenate(parts)
    return out
