"""Page-capacity arithmetic shared by the builder and the optimizer.

A quantized data page has a fixed block size; the number of points it can
hold depends on the chosen bits-per-dimension ``g``.  The builder needs
the inverse question too: given ``m`` points, what is the finest ``g``
that still fits in one page?  Both directions live here so the split-tree
optimizer and the page writer can never disagree.
"""

from __future__ import annotations

from repro.exceptions import QuantizationError

__all__ = ["EXACT_BITS", "capacity_for_bits", "max_bits_for_count"]

#: bits per dimension of the exact (float32) representation
EXACT_BITS = 32


def capacity_for_bits(block_size: int, dim: int, bits: int) -> int:
    """Points per quantized page at ``bits`` bits/dim (>= 1 required)."""
    # Imported lazily: the serializer needs the bit packer from this
    # subpackage, so a module-level import here would be circular.
    from repro.storage.serializer import quantized_page_capacity

    capacity = quantized_page_capacity(block_size, dim, bits)
    if capacity < 1:
        raise QuantizationError(
            f"a {block_size}-byte page cannot hold even one "
            f"{dim}-d point at {bits} bits/dim"
        )
    return capacity


def max_bits_for_count(block_size: int, dim: int, count: int) -> int:
    """The finest ``g`` such that ``count`` points fit in one page.

    Returns 0 if the points do not fit even at 1 bit/dim (the partition
    must then be split before it can be stored).  Capacity is monotone
    decreasing in ``g``, so a binary search over [1, 32] suffices.
    """
    from repro.storage.serializer import quantized_page_capacity

    if count <= 0:
        raise QuantizationError("point count must be positive")
    if quantized_page_capacity(block_size, dim, 1) < count:
        return 0
    lo, hi = 1, EXACT_BITS
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if quantized_page_capacity(block_size, dim, mid) >= count:
            lo = mid
        else:
            hi = mid - 1
    return lo
