"""Pluggable second-level page codecs.

The paper's grid quantizer is one way to spend a page's bit budget;
this module generalizes "independent quantization" to independent
*codec* selection per page.  A codec must provide the same three
operations the search path consumes -- ``cell_bounds`` /
``cell_mindist`` / ``cell_maxdist`` over the page's decoded codes --
with **conservative** per-point boxes, so pruning and the degraded
interval contract stay exact regardless of which codec stored the page.

Two codecs exist:

* ``CODEC_GRID`` (0) -- the reference grid quantizer
  (:class:`~repro.quantization.grid.GridQuantizer`).  Its on-disk page
  format is byte-identical to the pre-codec format (the codec tag
  occupies a former header pad byte that was always zero), so legacy
  containers load unchanged.
* ``CODEC_PQ`` (1) -- a per-page k-means codebook.  Each page fits its
  own codebook of ``K = min(2^b, m)`` clusters per subspace over ``S``
  contiguous-dimension subspaces and stores, per cluster, the exact
  float32 bounding box of its assigned points.  Codes select boxes, so
  distance bounds are asymmetric-distance lookups into the gathered
  boxes -- tighter than grid cells whenever the page's points cluster,
  which is exactly when the cost model picks this codec.

Determinism contract: :func:`fit_pq` is a pure function of its inputs
(sorted quantile initialization, fixed Lloyd iterations, lowest-index
tie-breaks, no RNG), so re-encoding a page always reproduces the same
bytes -- required by the container's ``level_crcs`` verification and by
maintenance re-encodes.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import QuantizationError, StorageError
from repro.geometry.mbr import maxdist_to_boxes, mindist_to_boxes
from repro.geometry.metrics import EUCLIDEAN
from repro.quantization.bitpack import pack_codes, packed_size, unpack_codes

__all__ = [
    "CODEC_GRID",
    "CODEC_PQ",
    "PQView",
    "subspace_spans",
    "fit_pq",
    "pq_page_fits",
    "encode_pq_body",
    "decode_pq_body",
    "effective_bits",
    "MAX_EFF_BITS",
]

CODEC_GRID = 0
CODEC_PQ = 1

#: PQ page subheader following the shared quantized-page header:
#: u8 subspace count S, u8 reserved, u16 cluster count K
PQ_SUBHEADER = struct.Struct("<BBH")

#: Lloyd iterations of the deterministic per-subspace k-means.
_LLOYD_ITERS = 6

#: ceiling for the codec-aware effective resolution (strictly below the
#: exact 32-bit level so the cost model never treats a PQ page as free)
MAX_EFF_BITS = 31.99


def subspace_spans(dim: int, n_sub: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` dimension spans of the subspaces.

    Sizes differ by at most one; earlier subspaces take the remainder.
    """
    if not 1 <= n_sub <= dim:
        raise QuantizationError("subspace count must be in [1, dim]")
    base, extra = divmod(dim, n_sub)
    spans = []
    start = 0
    for s in range(n_sub):
        size = base + (1 if s < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def _kmeans_1sub(sub: np.ndarray, k: int) -> np.ndarray:
    """Deterministic k-means assignment for one subspace.

    Returns the per-point cluster index ``(m,)``.  Initialization takes
    evenly spaced points of the lexicographically sorted subspace
    vectors (a quantile sketch -- stable and data-deterministic); Lloyd
    runs a fixed number of iterations; argmin ties go to the lowest
    cluster index; an emptied cluster keeps its previous centroid.
    """
    m = sub.shape[0]
    order = np.lexsort(
        tuple(sub[:, c] for c in range(sub.shape[1] - 1, -1, -1))
    )
    picks = (np.arange(k, dtype=np.int64) * m) // k
    centroids = sub[order[picks]].astype(np.float64).copy()
    assign = np.zeros(m, dtype=np.int64)
    for _ in range(_LLOYD_ITERS):
        diff = sub[:, None, :] - centroids[None, :, :]
        d2 = np.einsum("mkd,mkd->mk", diff, diff)
        assign = np.argmin(d2, axis=1)
        counts = np.bincount(assign, minlength=k)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, sub)
        nonempty = counts > 0
        centroids[nonempty] = (
            sums[nonempty] / counts[nonempty][:, None]
        )
    return assign


def _sound_f32_bounds(
    lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Round boxes outward to float32 so containment survives the cast.

    Float32-canonical inputs (the normal case) cast exactly and the
    nudge is a no-op; arbitrary float64 inputs get widened by one ulp
    where the cast would have tightened the box.
    """
    lo32 = lo.astype(np.float32)
    hi32 = hi.astype(np.float32)
    lo32 = np.where(
        lo32.astype(np.float64) > lo,
        np.nextafter(lo32, np.float32(-np.inf)),
        lo32,
    )
    hi32 = np.where(
        hi32.astype(np.float64) < hi,
        np.nextafter(hi32, np.float32(np.inf)),
        hi32,
    )
    return lo32.astype("<f4"), hi32.astype("<f4")


def fit_pq(
    points: np.ndarray, n_sub: int, bits: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fit a per-page PQ codebook; returns ``(codes, box_lo, box_hi)``.

    ``codes`` is ``(m, S)`` uint32 cluster selectors; ``box_lo`` /
    ``box_hi`` are ``(K, d)`` little-endian float32 arrays where the
    columns of subspace ``s`` hold that subspace's cluster boxes.
    Unused dimensions of a cluster slot (and entirely empty slots) are
    filled from slot 0 of the same subspace -- codes never reference
    them, but the arrays must be fully deterministic for byte-stable
    re-encoding.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise QuantizationError("expected (m, d) points")
    m, d = points.shape
    if m < 1:
        raise QuantizationError("PQ needs at least one point")
    if not 1 <= bits <= 16:
        raise QuantizationError("PQ bits must be in [1, 16]")
    k = min(1 << bits, m)
    spans = subspace_spans(d, n_sub)
    codes = np.empty((m, len(spans)), dtype=np.uint32)
    box_lo = np.empty((k, d), dtype=np.float64)
    box_hi = np.empty((k, d), dtype=np.float64)
    for s, (a, b) in enumerate(spans):
        sub = points[:, a:b]
        assign = _kmeans_1sub(sub, k)
        codes[:, s] = assign.astype(np.uint32)
        lo = np.full((k, b - a), np.inf)
        hi = np.full((k, b - a), -np.inf)
        np.minimum.at(lo, assign, sub)
        np.maximum.at(hi, assign, sub)
        empty = ~np.isfinite(lo[:, 0])
        if np.any(empty):
            lo[empty] = lo[int(np.flatnonzero(~empty)[0])]
            hi[empty] = hi[int(np.flatnonzero(~empty)[0])]
        box_lo[:, a:b] = lo
        box_hi[:, a:b] = hi
    lo32, hi32 = _sound_f32_bounds(box_lo, box_hi)
    return codes, lo32, hi32


def pq_body_size(m: int, dim: int, n_sub: int, bits: int) -> int:
    """Bytes of a PQ page body (everything after the shared header)."""
    k = min(1 << bits, m)
    return (
        PQ_SUBHEADER.size
        + 2 * k * dim * 4
        + packed_size(m * n_sub, bits)
    )


def pq_page_fits(
    m: int, dim: int, n_sub: int, bits: int, block_size: int
) -> bool:
    """Whether an ``m``-point PQ page fits a block (worst-case K)."""
    from repro.storage.serializer import QUANT_PAGE_HEADER

    return (
        QUANT_PAGE_HEADER.size + pq_body_size(m, dim, n_sub, bits)
        <= block_size
    )


def encode_pq_body(points: np.ndarray, n_sub: int, bits: int) -> bytes:
    """Serialize the PQ body: subheader + codebook boxes + packed codes."""
    codes, lo32, hi32 = fit_pq(points, n_sub, bits)
    k = lo32.shape[0]
    return (
        PQ_SUBHEADER.pack(n_sub, 0, k)
        + lo32.tobytes()
        + hi32.tobytes()
        + pack_codes(codes, bits)
    )


def decode_pq_body(
    body: bytes, m: int, bits: int, dim: int
) -> tuple[np.ndarray, "PQView"]:
    """Parse and validate a PQ page body; returns ``(codes, view)``.

    Every structural defect -- impossible subspace/cluster counts,
    truncated codebook or code stream, codes referencing clusters past
    ``K``, inverted boxes -- raises :class:`StorageError` so corruption
    is loud, never a wrong answer.
    """
    if len(body) < PQ_SUBHEADER.size:
        raise StorageError("PQ page body shorter than its subheader")
    n_sub, _reserved, k = PQ_SUBHEADER.unpack_from(body)
    if not 1 <= n_sub <= dim:
        raise StorageError(
            f"PQ subspace count {n_sub} invalid for dimension {dim}"
        )
    if not 1 <= bits <= 16:
        raise StorageError(f"PQ code width {bits} out of range")
    if not 1 <= k <= (1 << bits):
        raise StorageError(
            f"PQ cluster count {k} invalid for {bits}-bit codes"
        )
    cb_bytes = 2 * k * dim * 4
    code_bytes = packed_size(m * n_sub, bits)
    if len(body) < PQ_SUBHEADER.size + cb_bytes + code_bytes:
        raise StorageError("PQ page body truncated")
    cb = np.frombuffer(
        body, dtype="<f4", count=2 * k * dim, offset=PQ_SUBHEADER.size
    ).astype(np.float64)
    box_lo = cb[: k * dim].reshape(k, dim)
    box_hi = cb[k * dim :].reshape(k, dim)
    if not np.all(np.isfinite(box_lo)) or not np.all(np.isfinite(box_hi)):
        raise StorageError("PQ codebook contains non-finite bounds")
    if np.any(box_lo > box_hi):
        raise StorageError("PQ codebook box inverted (lower > upper)")
    codes = unpack_codes(
        body[PQ_SUBHEADER.size + cb_bytes :], bits, m, n_sub
    )
    if codes.size and int(codes.max()) >= k:
        raise StorageError(
            f"PQ code references cluster >= K={k}"
        )
    return codes, PQView(box_lo, box_hi, n_sub, dim)


class PQView:
    """The search-facing codec view of one decoded PQ page.

    Mirrors the :class:`~repro.quantization.grid.GridQuantizer` bound
    interface (``cell_bounds`` / ``cell_mindist`` / ``cell_maxdist``
    over a codes array), backed by the page's cluster boxes instead of
    a uniform grid.
    """

    def __init__(
        self,
        box_lo: np.ndarray,
        box_hi: np.ndarray,
        n_sub: int,
        dim: int,
    ):
        self.box_lo = box_lo
        self.box_hi = box_hi
        self.n_sub = int(n_sub)
        self.dim = int(dim)
        self.spans = subspace_spans(dim, n_sub)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the codebook (decoded-cache accounting)."""
        return self.box_lo.nbytes + self.box_hi.nbytes

    def cell_bounds(
        self, codes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-point conservative boxes gathered from the codebook."""
        codes = np.asarray(codes)
        m = codes.shape[0]
        lowers = np.empty((m, self.dim))
        uppers = np.empty((m, self.dim))
        for s, (a, b) in enumerate(self.spans):
            sel = codes[:, s].astype(np.int64)
            lowers[:, a:b] = self.box_lo[:, a:b][sel]
            uppers[:, a:b] = self.box_hi[:, a:b][sel]
        return lowers, uppers

    def cell_mindist(
        self, query: np.ndarray, codes: np.ndarray, metric=None
    ) -> np.ndarray:
        metric = metric or EUCLIDEAN
        lowers, uppers = self.cell_bounds(codes)
        return mindist_to_boxes(query, lowers, uppers, metric)

    def cell_maxdist(
        self, query: np.ndarray, codes: np.ndarray, metric=None
    ) -> np.ndarray:
        metric = metric or EUCLIDEAN
        lowers, uppers = self.cell_bounds(codes)
        return maxdist_to_boxes(query, lowers, uppers, metric)

    def __repr__(self) -> str:
        return (
            f"PQView(K={self.box_lo.shape[0]}, S={self.n_sub}, "
            f"dim={self.dim})"
        )


def effective_bits(
    extents: np.ndarray,
    codes: np.ndarray,
    view: PQView,
) -> float:
    """Grid-equivalent resolution of a fitted PQ page.

    The cost model's refinement probability (eq. 15) is parameterized
    by the cell volume ``V_mbr / 2^(d*g)``; the PQ equivalent ``g`` per
    dimension is ``log2(extent_j / mean_box_side_j)``, and the
    geometric-mean aggregation (an arithmetic mean in log space) makes
    the implied cell volume match the mean box volume exactly.
    Degenerate MBR sides are excluded; the result is clamped to
    ``[1, MAX_EFF_BITS]`` so it stays a valid model input.
    """
    extents = np.asarray(extents, dtype=np.float64)
    lowers, uppers = view.cell_bounds(codes)
    mean_sides = (uppers - lowers).mean(axis=0)
    live = extents > 0.0
    if not np.any(live):
        return MAX_EFF_BITS
    sides = mean_sides[live]
    ext = extents[live]
    per_dim = np.where(
        sides > 0.0,
        np.log2(ext / np.maximum(sides, 1e-300)),
        MAX_EFF_BITS,
    )
    eff = float(per_dim.mean())
    return float(min(max(eff, 1.0), MAX_EFF_BITS))
