"""Grid quantization relative to a page's MBR.

The defining idea of the IQ-tree is *independent quantization*: every
data page chooses its own number of bits per dimension ``g`` and encodes
its points on a ``2^g``-cell grid spanned by the page's own MBR (not the
whole data space, as the VA-file does).  This subpackage provides:

* :mod:`repro.quantization.bitpack` -- dense packing of g-bit integers
  into bytes (numpy-vectorized).
* :mod:`repro.quantization.grid` -- the :class:`GridQuantizer` that maps
  points to cell codes and back to conservative cell bounds, plus the
  vectorized cell mindist/maxdist used during search.
* :mod:`repro.quantization.capacity` -- page-capacity math shared by the
  builder and the optimizer.
"""

from repro.quantization.bitpack import pack_codes, unpack_codes
from repro.quantization.grid import GridQuantizer
from repro.quantization.capacity import (
    max_bits_for_count,
    capacity_for_bits,
    EXACT_BITS,
)

__all__ = [
    "pack_codes",
    "unpack_codes",
    "GridQuantizer",
    "max_bits_for_count",
    "capacity_for_bits",
    "EXACT_BITS",
]
