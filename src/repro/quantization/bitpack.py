"""Dense packing of g-bit unsigned integers into a byte stream.

Cell codes on a quantized data page occupy exactly ``g`` bits each,
concatenated in row-major point order with no per-point padding -- this
is what makes the byte budget of the fixed block size translate directly
into the paper's capacity/accuracy trade-off.

The implementation expands each code into its ``g`` constituent bits with
numpy (no Python-level bit loops), so packing a full page of several
thousand codes is a handful of vectorized operations.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import QuantizationError

__all__ = [
    "pack_codes",
    "unpack_codes",
    "unpack_codes_bulk",
    "packed_size",
]


def packed_size(n_codes: int, bits: int) -> int:
    """Bytes needed to store ``n_codes`` codes of ``bits`` bits each."""
    _check_bits(bits)
    if n_codes < 0:
        raise QuantizationError("code count must be non-negative")
    return (n_codes * bits + 7) // 8


def pack_codes(codes: np.ndarray, bits: int) -> bytes:
    """Pack an integer array into a dense little-bit-endian bit stream.

    Parameters
    ----------
    codes:
        Any-shape array of unsigned integers, each in ``[0, 2**bits)``.
        The array is flattened in C order before packing.
    bits:
        Width of each code in bits, ``1 <= bits <= 32``.
    """
    _check_bits(bits)
    flat = np.ascontiguousarray(codes, dtype=np.uint32).ravel()
    if flat.size == 0:
        return b""
    limit = np.uint64(1) << np.uint64(bits)
    if np.any(flat.astype(np.uint64) >= limit):
        raise QuantizationError(f"code out of range for {bits} bits")
    # Expand each code into its `bits` bits, least-significant first.
    shifts = np.arange(bits, dtype=np.uint32)
    bit_matrix = (flat[:, None] >> shifts[None, :]) & np.uint32(1)
    bit_stream = bit_matrix.astype(np.uint8).ravel()
    return np.packbits(bit_stream, bitorder="little").tobytes()


def unpack_codes(
    payload: bytes, bits: int, n_points: int, dim: int
) -> np.ndarray:
    """Inverse of :func:`pack_codes` for a ``(n_points, dim)`` code array."""
    _check_bits(bits)
    if n_points < 0 or dim <= 0:
        raise QuantizationError("invalid shape for unpacking")
    n_codes = n_points * dim
    if n_codes == 0:
        return np.zeros((0, dim), dtype=np.uint32)
    total_bits = n_codes * bits
    need_bytes = (total_bits + 7) // 8
    if len(payload) < need_bytes:
        raise QuantizationError(
            f"payload of {len(payload)} bytes too short for "
            f"{n_codes} codes of {bits} bits"
        )
    raw = np.frombuffer(payload, dtype=np.uint8, count=need_bytes)
    bit_stream = np.unpackbits(raw, bitorder="little")[:total_bits]
    bit_matrix = bit_stream.reshape(n_codes, bits).astype(np.uint32)
    shifts = np.arange(bits, dtype=np.uint32)
    codes = (bit_matrix << shifts[None, :]).sum(axis=1, dtype=np.uint64)
    return codes.astype(np.uint32).reshape(n_points, dim)


def unpack_codes_bulk(
    payloads, bits: int, n_points, dim: int
) -> list[np.ndarray]:
    """Unpack many same-width pages in one vectorized pass.

    Equivalent to ``[unpack_codes(p, bits, m, dim) for p, m in
    zip(payloads, n_points)]`` but with a single ``np.unpackbits`` call
    and a single shift/accumulate over the concatenated bit streams, so
    decoding a whole batch of pages costs a handful of numpy operations
    instead of one pass per page.  This is the decode entry point of the
    batch query engine.

    Parameters
    ----------
    payloads:
        Per-page packed byte strings (possibly of different lengths).
    bits:
        Shared code width in bits, ``1 <= bits <= 32``.
    n_points:
        Per-page point counts, aligned with ``payloads``.
    dim:
        Codes per point.

    Returns
    -------
    list of numpy.ndarray
        One ``(m_i, dim)`` uint32 array per input page.
    """
    _check_bits(bits)
    if dim <= 0:
        raise QuantizationError("invalid shape for unpacking")
    payloads = list(payloads)
    counts = [int(m) for m in n_points]
    if len(payloads) != len(counts):
        raise QuantizationError("payloads and n_points must align")
    if any(m < 0 for m in counts):
        raise QuantizationError("invalid shape for unpacking")
    if not payloads:
        return []
    n_codes = np.array([m * dim for m in counts], dtype=np.int64)
    total_bits = n_codes * bits
    need_bytes = (total_bits + 7) // 8
    for payload, need in zip(payloads, need_bytes):
        if len(payload) < need:
            raise QuantizationError(
                f"payload of {len(payload)} bytes too short for "
                f"{int(need) * 8 // max(bits, 1)} codes of {bits} bits"
            )
    if int(n_codes.sum()) == 0:
        return [np.zeros((0, dim), dtype=np.uint32) for _ in counts]
    max_bytes = int(need_bytes.max())
    matrix = np.zeros((len(payloads), max_bytes), dtype=np.uint8)
    for row, (payload, need) in enumerate(zip(payloads, need_bytes)):
        if need:
            matrix[row, :need] = np.frombuffer(
                payload, dtype=np.uint8, count=int(need)
            )
    bit_rows = np.unpackbits(matrix, axis=1, bitorder="little")
    valid = np.arange(bit_rows.shape[1])[None, :] < total_bits[:, None]
    bit_matrix = bit_rows[valid].reshape(-1, bits).astype(np.uint32)
    shifts = np.arange(bits, dtype=np.uint32)
    codes = (
        (bit_matrix << shifts[None, :])
        .sum(axis=1, dtype=np.uint64)
        .astype(np.uint32)
    )
    out: list[np.ndarray] = []
    cursor = 0
    for m, nc in zip(counts, n_codes):
        out.append(codes[cursor : cursor + nc].reshape(m, dim))
        cursor += int(nc)
    return out


def _check_bits(bits: int) -> None:
    if not 1 <= bits <= 32:
        raise QuantizationError("bits must be in [1, 32]")
