"""Dense packing of g-bit unsigned integers into a byte stream.

Cell codes on a quantized data page occupy exactly ``g`` bits each,
concatenated in row-major point order with no per-point padding -- this
is what makes the byte budget of the fixed block size translate directly
into the paper's capacity/accuracy trade-off.

The implementation expands each code into its ``g`` constituent bits with
numpy (no Python-level bit loops), so packing a full page of several
thousand codes is a handful of vectorized operations.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import QuantizationError

__all__ = ["pack_codes", "unpack_codes", "packed_size"]


def packed_size(n_codes: int, bits: int) -> int:
    """Bytes needed to store ``n_codes`` codes of ``bits`` bits each."""
    _check_bits(bits)
    if n_codes < 0:
        raise QuantizationError("code count must be non-negative")
    return (n_codes * bits + 7) // 8


def pack_codes(codes: np.ndarray, bits: int) -> bytes:
    """Pack an integer array into a dense little-bit-endian bit stream.

    Parameters
    ----------
    codes:
        Any-shape array of unsigned integers, each in ``[0, 2**bits)``.
        The array is flattened in C order before packing.
    bits:
        Width of each code in bits, ``1 <= bits <= 32``.
    """
    _check_bits(bits)
    flat = np.ascontiguousarray(codes, dtype=np.uint32).ravel()
    if flat.size == 0:
        return b""
    limit = np.uint64(1) << np.uint64(bits)
    if np.any(flat.astype(np.uint64) >= limit):
        raise QuantizationError(f"code out of range for {bits} bits")
    # Expand each code into its `bits` bits, least-significant first.
    shifts = np.arange(bits, dtype=np.uint32)
    bit_matrix = (flat[:, None] >> shifts[None, :]) & np.uint32(1)
    bit_stream = bit_matrix.astype(np.uint8).ravel()
    return np.packbits(bit_stream, bitorder="little").tobytes()


def unpack_codes(
    payload: bytes, bits: int, n_points: int, dim: int
) -> np.ndarray:
    """Inverse of :func:`pack_codes` for a ``(n_points, dim)`` code array."""
    _check_bits(bits)
    if n_points < 0 or dim <= 0:
        raise QuantizationError("invalid shape for unpacking")
    n_codes = n_points * dim
    if n_codes == 0:
        return np.zeros((0, dim), dtype=np.uint32)
    total_bits = n_codes * bits
    need_bytes = (total_bits + 7) // 8
    if len(payload) < need_bytes:
        raise QuantizationError(
            f"payload of {len(payload)} bytes too short for "
            f"{n_codes} codes of {bits} bits"
        )
    raw = np.frombuffer(payload, dtype=np.uint8, count=need_bytes)
    bit_stream = np.unpackbits(raw, bitorder="little")[:total_bits]
    bit_matrix = bit_stream.reshape(n_codes, bits).astype(np.uint32)
    shifts = np.arange(bits, dtype=np.uint32)
    codes = (bit_matrix << shifts[None, :]).sum(axis=1, dtype=np.uint64)
    return codes.astype(np.uint32).reshape(n_points, dim)


def _check_bits(bits: int) -> None:
    if not 1 <= bits <= 32:
        raise QuantizationError("bits must be in [1, 32]")
