#!/usr/bin/env python
"""Validate Prometheus text-exposition output read from stdin or a file.

A zero-dependency linter for the subset of the exposition format that
``python -m repro stats`` emits:

* ``# HELP <name> <text>`` / ``# TYPE <name> <counter|gauge|histogram>``
  pairs, HELP before TYPE, at most one of each per metric;
* sample lines ``name{label="value",...} <number>`` whose metric name
  matches the preceding TYPE block (histograms expose ``_bucket`` /
  ``_sum`` / ``_count`` series);
* metric and label names matching the Prometheus grammar, label values
  with proper escaping, sample values parseable as floats (``+Inf``
  allowed);
* histogram invariants: cumulative, non-decreasing bucket counts, a
  ``+Inf`` bucket equal to ``_count``.

Exit status 0 when the input is clean, 1 with one diagnostic per line
otherwise.  Usage::

    python -m repro stats index.iqt | python scripts/lint_prometheus.py
    python scripts/lint_prometheus.py dump.prom
"""

from __future__ import annotations

import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)
TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_value(text: str) -> float | None:
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    try:
        return float(text)
    except ValueError:
        return None


def _parse_labels(raw: str, errors: list[str], lineno: int) -> dict | None:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = LABEL_PAIR_RE.match(raw, pos)
        if match is None:
            errors.append(f"line {lineno}: malformed label set {{{raw}}}")
            return None
        labels[match.group("key")] = match.group("value")
        pos = match.end()
    return labels


def lint(text: str) -> list[str]:
    """All format violations in ``text`` (empty list = clean)."""
    errors: list[str] = []
    helped: set[str] = set()
    typed: dict[str, str] = {}
    current: str | None = None  # metric of the open HELP/TYPE block
    # histogram name -> {labelset-key -> [(le, count)]}, plus sums/counts
    buckets: dict[str, dict[tuple, list[tuple[float, float]]]] = {}
    counts: dict[str, dict[tuple, float]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3].strip():
                errors.append(f"line {lineno}: HELP without text")
                continue
            name = parts[2]
            if not METRIC_RE.match(name):
                errors.append(f"line {lineno}: bad metric name {name!r}")
            if name in helped:
                errors.append(f"line {lineno}: duplicate HELP for {name}")
            helped.add(name)
            current = name
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in TYPES:
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            name = parts[2]
            if name in typed:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            if name not in helped:
                errors.append(f"line {lineno}: TYPE for {name} before HELP")
            typed[name] = parts[3]
            current = name
            continue
        if line.startswith("#"):
            continue  # comment
        match = SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        metric = name if name in typed else base
        if metric not in typed:
            errors.append(
                f"line {lineno}: sample {name} without a TYPE block"
            )
            continue
        if metric != current:
            errors.append(
                f"line {lineno}: sample {name} outside its metric block"
            )
        kind = typed[metric]
        if kind == "histogram" and name == metric:
            errors.append(
                f"line {lineno}: histogram {metric} must expose "
                "_bucket/_sum/_count series"
            )
        labels = _parse_labels(match.group("labels") or "", errors, lineno)
        if labels is None:
            continue
        for key in labels:
            if not LABEL_RE.match(key):
                errors.append(f"line {lineno}: bad label name {key!r}")
        value = _parse_value(match.group("value"))
        if value is None:
            errors.append(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            )
            continue
        if kind == "histogram":
            series = {k: v for k, v in labels.items() if k != "le"}
            key = tuple(sorted(series.items()))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        f"line {lineno}: _bucket sample without le label"
                    )
                    continue
                le = _parse_value(labels["le"])
                if le is None:
                    errors.append(
                        f"line {lineno}: bad le value {labels['le']!r}"
                    )
                    continue
                buckets.setdefault(metric, {}).setdefault(key, []).append(
                    (le, value)
                )
            elif name.endswith("_count"):
                counts.setdefault(metric, {})[key] = value

    for metric, series in buckets.items():
        for key, entries in series.items():
            prev = -1.0
            for le, count in entries:  # emitted in ascending le order
                if count < prev:
                    errors.append(
                        f"{metric}{dict(key)}: bucket le={le} count "
                        f"{count} below previous bucket ({prev})"
                    )
                prev = count
            if not entries or entries[-1][0] != float("inf"):
                errors.append(f"{metric}{dict(key)}: missing +Inf bucket")
            elif metric in counts and key in counts[metric]:
                if entries[-1][1] != counts[metric][key]:
                    errors.append(
                        f"{metric}{dict(key)}: +Inf bucket "
                        f"{entries[-1][1]} != _count {counts[metric][key]}"
                    )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        text = open(argv[1], encoding="utf-8").read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        print("lint_prometheus: empty input", file=sys.stderr)
        return 1
    problems = lint(text)
    for problem in problems:
        print(f"lint_prometheus: {problem}", file=sys.stderr)
    if not problems:
        samples = sum(
            1
            for line in text.splitlines()
            if line.strip() and not line.startswith("#")
        )
        print(f"lint_prometheus: OK ({samples} samples)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
