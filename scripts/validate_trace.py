#!/usr/bin/env python
"""Validate a Chrome trace-event JSON export read from stdin or a file.

A zero-dependency checker for the subset of the trace-event format that
``python -m repro trace --export chrome`` emits (loadable by Perfetto
and ``chrome://tracing``):

* the document is a JSON object with a ``traceEvents`` list (the
  "JSON Object Format"); every event is an object with ``name``,
  ``ph``, ``pid``, ``tid``, and a numeric ``ts``;
* only duration phases ``B`` / ``E`` appear, and within each
  ``(pid, tid)`` track they nest with stack discipline: every ``E``
  closes the most recent open ``B`` of the same name, and no ``B``
  stays open at the end;
* ``ts`` is monotone non-decreasing within each track -- the exporter
  emits simulated microseconds depth-first, so any regression means
  the span tree's simulated clock is broken.

Exit status 0 when the trace is clean, 1 with one diagnostic per
problem otherwise.  Usage::

    python -m repro trace index.iqt --export chrome | \
        python scripts/validate_trace.py
    python scripts/validate_trace.py trace.json
"""

from __future__ import annotations

import json
import sys

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")
PHASES = ("B", "E")


def validate(text: str) -> list[str]:
    """All violations in one exported trace (empty list = clean)."""
    errors: list[str] = []
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"not valid JSON: {exc}"]
    if not isinstance(document, dict):
        return [f"top level must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        errors.append("'traceEvents' is empty")

    # (pid, tid) -> stack of open B names / last seen ts
    stacks: dict[tuple, list[str]] = {}
    last_ts: dict[tuple, float] = {}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [key for key in REQUIRED_KEYS if key not in event]
        if missing:
            errors.append(f"{where}: missing keys {missing}")
            continue
        name, phase = event["name"], event["ph"]
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: bad name {name!r}")
            continue
        if phase not in PHASES:
            errors.append(f"{where}: unexpected phase {phase!r}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        track = (event["pid"], event["tid"])
        if ts < last_ts.get(track, 0.0):
            errors.append(
                f"{where}: ts {ts} regresses below {last_ts[track]} "
                f"on track pid={track[0]} tid={track[1]}"
            )
        last_ts[track] = ts
        stack = stacks.setdefault(track, [])
        if phase == "B":
            stack.append(name)
        elif not stack:
            errors.append(f"{where}: E '{name}' with no open B")
        elif stack[-1] != name:
            errors.append(
                f"{where}: E '{name}' closes open B '{stack[-1]}' "
                f"(events must nest)"
            )
        else:
            stack.pop()
    for track, stack in stacks.items():
        if stack:
            errors.append(
                f"track pid={track[0]} tid={track[1]}: unclosed B "
                f"events {stack}"
            )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        text = open(argv[1], encoding="utf-8").read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        print("validate_trace: empty input", file=sys.stderr)
        return 1
    problems = validate(text)
    for problem in problems:
        print(f"validate_trace: {problem}", file=sys.stderr)
    if not problems:
        count = len(json.loads(text)["traceEvents"])
        print(f"validate_trace: OK ({count} events)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
