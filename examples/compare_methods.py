"""Side-by-side comparison of all six techniques on one workload.

Builds the IQ-tree, the X-tree, a tuned VA-file, the sequential scan,
the Pyramid Technique, and the SS-tree over the same data set on
identical simulated disks, verifies they return identical answers, and
reports their I/O profiles -- a miniature of the paper's evaluation
plus its related-work section.

Run with:  python examples/compare_methods.py [dim]
"""

import sys

import numpy as np

from repro.baselines import PyramidTechnique, SequentialScan, SSTree, XTree
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.experiments.harness import (
    best_vafile,
    experiment_disk,
    run_nn_workload,
)


def main(dim: int = 12) -> None:
    data, queries = make_workload(
        uniform, n=30_000, n_queries=8, seed=0, dim=dim
    )
    print(f"UNIFORM workload: 30,000 points, {dim} dimensions, 8 queries")

    tree = IQTree.build(data, disk=experiment_disk())
    xtree = XTree(data, disk=experiment_disk())
    scan = SequentialScan(data, disk=experiment_disk())
    pyramid = PyramidTechnique(data, disk=experiment_disk())
    sstree = SSTree(data, disk=experiment_disk())

    # All methods must agree exactly.
    for q in queries:
        reference = scan.nearest(q, k=3).distances
        for method in (tree, xtree, pyramid, sstree):
            assert np.allclose(
                method.nearest(q, k=3).distances, reference
            )
    print("all methods agree on every query (verified against the scan)")

    results = [
        run_nn_workload(tree, queries, k=3, name="iq-tree"),
        run_nn_workload(xtree, queries, k=3, name="x-tree"),
        best_vafile(data, queries, k=3, disk_factory=experiment_disk)[1],
        run_nn_workload(scan, queries, k=3, name="scan"),
        run_nn_workload(pyramid, queries, k=3, name="pyramid"),
        run_nn_workload(sstree, queries, k=3, name="ss-tree"),
    ]

    print(
        f"\n{'method':>8}  {'time (ms)':>10}  {'seeks':>6}  "
        f"{'blocks':>7}  {'refinements':>11}"
    )
    for stats in results:
        print(
            f"{stats.name:>8}  {stats.mean_time * 1000:10.2f}  "
            f"{stats.mean_seeks:6.1f}  {stats.mean_blocks:7.1f}  "
            f"{stats.mean_refinements:11.1f}"
        )
    fastest = min(results, key=lambda s: s.mean_time)
    print(f"\nfastest at {dim} dimensions: {fastest.name}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
