"""Finding climatically similar weather stations.

The paper's WEATHER scenario: each station reports a 9-dimensional
measurement vector (temperatures, pressure, humidity, wind, ...), and
an analyst asks "which stations' conditions are most similar to this
one?".  Because weather is driven by a couple of latent factors
(latitude and season here), the data has a low fractal dimension -- the
regime where hierarchical indexes crush flat compression schemes.

Run with:  python examples/weather_station_neighbors.py
"""

import numpy as np

from repro.core.tree import IQTree
from repro.costmodel.fractal import correlation_dimension
from repro.datasets import holdout_queries, weather_like
from repro.experiments.harness import (
    best_vafile,
    experiment_disk,
    run_nn_workload,
)


def main() -> None:
    readings = weather_like(60_010, dim=9, seed=23)
    database, probes = holdout_queries(readings, 10, seed=5)
    d2 = correlation_dimension(database)
    print(
        f"{database.shape[0]:,} station readings, 9 measurements each; "
        f"estimated fractal dimension D2 = {d2:.2f}"
    )

    tree = IQTree.build(database, disk=experiment_disk())
    print(
        f"IQ-tree uses D_F = {tree.cost_model.fractal_dim:.2f} in its "
        f"cost model; {tree.n_pages} pages"
    )

    probe = probes[0]
    similar = tree.nearest(probe, k=8)
    print(f"stations most similar to probe: {similar.ids.tolist()}")

    # Range query: all readings within a climate-similarity threshold.
    within = tree.range_query(probe, radius=0.05)
    print(f"{len(within.ids)} readings within radius 0.05")

    # Low-D_F data is where the paper's Figure 12 shows the largest
    # index-over-compression factors (up to 11.5x vs the VA-file).
    iq_stats = run_nn_workload(tree, probes, name="iq-tree")
    _va, va_stats, _sweep = best_vafile(
        database, probes, disk_factory=experiment_disk
    )
    print(
        f"\nmean simulated query time: iq-tree "
        f"{iq_stats.mean_time * 1000:.2f} ms vs va-file "
        f"{va_stats.mean_time * 1000:.2f} ms "
        f"({va_stats.mean_time / iq_stats.mean_time:.1f}x)"
    )


if __name__ == "__main__":
    main()
