"""Quickstart: build an IQ-tree and run nearest-neighbor queries.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import IQTree
from repro.datasets import make_workload, uniform


def main() -> None:
    # A 20k-point, 12-dimensional uniform data set, plus five held-out
    # query points following the same distribution.
    data, queries = make_workload(uniform, n=20_000, n_queries=5, dim=12)

    # Build the index.  The builder bulk-loads an initial partitioning,
    # estimates the data's fractal dimension, and runs the paper's
    # optimal-quantization algorithm to pick each page's resolution.
    tree = IQTree.build(data)
    bits, counts = np.unique(tree.page_bits, return_counts=True)
    print(f"built: {tree}")
    print(f"page resolutions (bits/dim -> pages): {dict(zip(bits, counts))}")
    print(f"file sizes (blocks): {tree.size_summary()}")

    # Nearest-neighbor queries.  `io.elapsed` is the simulated disk time
    # this query would have cost on the configured disk model.
    for i, query in enumerate(queries):
        result = tree.nearest(query, k=3)
        print(
            f"query {i}: ids={result.ids.tolist()} "
            f"dist={np.round(result.distances, 4).tolist()} "
            f"time={result.io.elapsed * 1000:.2f} ms "
            f"(pages={result.pages_read}, refinements={result.refinements})"
        )

    # Range query: everything within radius 0.5 of the first query.
    nearby = tree.range_query(queries[0], radius=0.5)
    print(f"range(0.5): {len(nearby.ids)} points")

    # The index is dynamic (paper Section 6).
    new_id = tree.insert(np.full(12, 0.5))
    hit = tree.nearest(np.full(12, 0.5), k=1)
    assert hit.ids[0] == new_id
    print(f"inserted point {new_id} and found it again")


if __name__ == "__main__":
    main()
