"""Dynamic maintenance: inserts, deletes, and re-optimization.

Paper Section 6: the IQ-tree supports dynamic updates, and the
interesting decision is what to do when a page overflows its current
quantization level -- split the page (one more page, finer grid) or
re-quantize it coarser (same page count, more refinements).  The tree
consults its cost model for that choice; this example watches it
happen and then re-optimizes globally.

Run with:  python examples/dynamic_maintenance.py
"""

import numpy as np

from repro.core.tree import IQTree
from repro.datasets import uniform
from repro.experiments.harness import experiment_disk
from repro.geometry.metrics import EUCLIDEAN


def describe(tree: IQTree, label: str) -> None:
    bits, counts = np.unique(tree.page_bits, return_counts=True)
    print(
        f"{label}: {tree.n_live_points:,} live points, {tree.n_pages} pages, "
        f"resolutions {dict(zip(bits.tolist(), counts.tolist()))}"
    )


def main() -> None:
    rng = np.random.default_rng(99)
    tree = IQTree.build(uniform(10_000, 8, seed=1), disk=experiment_disk())
    describe(tree, "initial build")

    # A hotspot develops: 2,000 new points arrive in one tiny region.
    hotspot = np.clip(
        0.3 + rng.normal(0, 0.01, size=(2_000, 8)), 0, 1
    )
    for point in hotspot:
        tree.insert(point)
    describe(tree, "after 2,000 hotspot inserts")

    # Old data is retired.
    for point_id in range(0, 3_000, 2):
        tree.delete(point_id)
    describe(tree, "after 1,500 deletes")

    # Queries remain exact throughout (verified against brute force
    # over the live points).
    query = rng.random(8)
    result = tree.nearest(query, k=5)
    live = sorted(
        pid
        for opt in tree._partitions
        for pid in opt.partition.indices.tolist()
    )
    expected = np.sort(
        EUCLIDEAN.distances(query, tree.points[live])
    )[:5]
    assert np.allclose(result.distances, expected)
    print("5-NN after churn verified against brute force")

    # Global re-optimization re-runs bulk load + optimal quantization.
    tree.reoptimize()
    describe(tree, "after reoptimize()")
    result = tree.nearest(query, k=5)
    assert np.allclose(result.distances, expected)
    print("answers unchanged after reoptimize")


if __name__ == "__main__":
    main()
