"""Looking inside a query: diagnostics and cost-model validation.

Two introspection tools round out the library:

* ``explain_query`` traces one nearest-neighbor search -- which pages
  were pivots, which were pre-read speculatively by the cost-balance
  scheduler, which were pruned -- so you can watch Section 2.1 of the
  paper operate on your data.
* ``validate_cost_model`` compares the cost model's predictions
  (expected page accesses, refinements, total time) against an
  instrumented workload -- the sanity check behind "optimal with
  respect to a given cost model".

Run with:  python examples/explain_and_validate.py
"""

from collections import Counter

from repro.core.diagnostics import explain_query
from repro.core.tree import IQTree
from repro.datasets import gaussian_clusters, make_workload
from repro.experiments.harness import experiment_disk
from repro.experiments.validation import validate_cost_model


def main() -> None:
    data, queries = make_workload(
        gaussian_clusters,
        n=25_000,
        n_queries=8,
        seed=1,
        dim=10,
        n_clusters=12,
        spread=0.04,
    )
    tree = IQTree.build(data, disk=experiment_disk())
    print(f"{tree}\n")

    # --- explain one query -------------------------------------------
    explanation = explain_query(tree, queries[0], k=5)
    print("query explanation:", explanation.summary())
    outcomes = Counter(d.outcome for d in explanation.decisions)
    print(f"page outcomes: {dict(outcomes)}")
    loaded = sorted(
        (d for d in explanation.decisions if d.outcome != "pruned"),
        key=lambda d: d.order,
    )
    print("first pages touched (page id, mindist, how):")
    for decision in loaded[:6]:
        print(
            f"  page {decision.page:4d}  mindist={decision.mindist:.4f}"
            f"  {decision.outcome}"
        )

    # --- validate the cost model --------------------------------------
    validation = validate_cost_model(tree, queries, k=5)
    print("\ncost-model validation (predicted/measured):")
    print(" ", validation.summary())
    print(
        f"  -> the optimizer minimized a prediction that is "
        f"{validation.time_ratio:.2f}x the measured time"
    )

    # --- warm-cache effect ---------------------------------------------
    pool = tree.use_buffer_pool(4096)
    tree.disk.park()
    cold = tree.nearest(queries[1], k=5).io.elapsed
    tree.disk.park()
    warm = tree.nearest(queries[1], k=5).io.elapsed
    print(
        f"\nbuffer pool: cold {cold * 1e3:.2f} ms -> warm "
        f"{warm * 1e3:.2f} ms (hit rate {pool.hit_rate:.0%})"
    )


if __name__ == "__main__":
    main()
