"""Content-based image retrieval over color histograms.

This is the paper's COLOR scenario: every "image" is summarized by a
16-bin color histogram, and similarity search means finding the images
whose histograms are closest to a query image's.  The example builds an
IQ-tree over 50k histograms, runs k-NN retrieval, and contrasts the
simulated I/O cost against a tuned VA-file and a sequential scan.

Run with:  python examples/image_color_search.py
"""

import numpy as np

from repro.baselines import SequentialScan
from repro.core.tree import IQTree
from repro.datasets import color_histogram_like, holdout_queries
from repro.experiments.harness import (
    best_vafile,
    experiment_disk,
    run_nn_workload,
)


def main() -> None:
    all_histograms = color_histogram_like(50_010, dim=16, seed=42)
    database, query_images = holdout_queries(all_histograms, 10, seed=7)
    print(f"database: {database.shape[0]:,} images, 16-bin histograms")

    tree = IQTree.build(database, disk=experiment_disk())
    print(
        f"IQ-tree: {tree.n_pages} pages, estimated fractal dimension "
        f"{tree.cost_model.fractal_dim:.2f}"
    )

    # Retrieve the 10 most similar images for one query.
    result = tree.nearest(query_images[0], k=10)
    print("top-10 similar images:", result.ids.tolist())
    print(
        f"retrieval cost: {result.io.elapsed * 1000:.2f} ms simulated "
        f"({result.pages_read} pages, {result.refinements} exact look-ups)"
    )

    # Compare against the techniques of the paper's evaluation.
    iq_stats = run_nn_workload(tree, query_images, k=10, name="iq-tree")
    _va, va_stats, sweep = best_vafile(
        database, query_images, k=10, disk_factory=experiment_disk
    )
    scan = SequentialScan(database, disk=experiment_disk())
    scan_stats = run_nn_workload(scan, query_images, k=10)

    print("\nmean simulated time per 10-NN query:")
    for stats in (iq_stats, va_stats, scan_stats):
        print(f"  {stats.name:>8}: {stats.mean_time * 1000:8.2f} ms")
    print(f"  (va-file tuned over bits/dim: { {b: round(t*1000, 2) for b, t in sweep.items()} })")


if __name__ == "__main__":
    main()
