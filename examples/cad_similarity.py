"""CAD part similarity search over Fourier shape descriptors.

The paper's CAD scenario: each part's outline curvature is summarized
by its first 16 Fourier coefficients, and engineers look up parts with
similar shapes.  Moderately clustered data like this is where the
IQ-tree shines: the hierarchical level keeps its selectivity (unlike
the VA-file's flat scan) while the quantized level avoids the X-tree's
random I/O per page.

Run with:  python examples/cad_similarity.py
"""

import numpy as np

from repro.baselines import XTree
from repro.core.tree import IQTree
from repro.datasets import cad_like, holdout_queries
from repro.experiments.harness import (
    best_vafile,
    experiment_disk,
    run_nn_workload,
)


def main() -> None:
    descriptors = cad_like(40_008, dim=16, seed=11)
    database, query_parts = holdout_queries(descriptors, 8, seed=3)
    print(f"catalog: {database.shape[0]:,} parts, 16 Fourier coefficients")

    tree = IQTree.build(database, disk=experiment_disk())
    xtree = XTree(database, disk=experiment_disk())

    # Find the five most similar parts for each query part.
    for i, part in enumerate(query_parts[:3]):
        hit = tree.nearest(part, k=5)
        print(
            f"part {i}: matches={hit.ids.tolist()} "
            f"(best distance {hit.distances[0]:.4f}, "
            f"{hit.io.elapsed * 1000:.2f} ms simulated)"
        )

    # The paper's Figure 10 comparison, in miniature.
    iq_stats = run_nn_workload(tree, query_parts, k=5, name="iq-tree")
    xt_stats = run_nn_workload(xtree, query_parts, k=5, name="x-tree")
    _va, va_stats, _sweep = best_vafile(
        database, query_parts, k=5, disk_factory=experiment_disk
    )

    print("\nmean simulated time per 5-NN query:")
    for stats in (iq_stats, xt_stats, va_stats):
        print(f"  {stats.name:>8}: {stats.mean_time * 1000:8.2f} ms")
    print(
        f"\nIQ-tree speedup: {xt_stats.mean_time / iq_stats.mean_time:.1f}x "
        f"vs X-tree, {va_stats.mean_time / iq_stats.mean_time:.1f}x vs "
        f"VA-file (paper reports up to 3x and 5x)"
    )


if __name__ == "__main__":
    main()
