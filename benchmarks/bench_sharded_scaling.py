"""Extension bench -- sharded scatter-gather serving under open-loop load.

A clustered workload is served by :class:`~repro.engine.ShardRouter`
at 1 shard and at ``SHARDS`` shards, on identical source trees.  Two
questions, kept clearly apart:

**Does the global bound pruning work?**  On clustered data the
centroid-sorted contiguous partitioning puts each cluster's pages on
few shards, so a query near one cluster should be answered by a prefix
of the visit order and the running k-th-distance bound should prove the
remaining shards irrelevant.  The bench records shards contacted per
query and asserts the clustered workload skips at least one shard per
query on average -- while the merged answers stay bit-identical to the
single-shard router (which is itself answer-identical to the plain
engine; the sweep tests pin that).

**What does latency look like under arrival traffic?**  Queries arrive
open-loop (deterministic Poisson process, the same arrival trace for
every configuration) at ~70% of the single-shard service capacity and
queue FIFO for one server; per-query latency = queue wait + service,
where service is the router's merged simulated I/O time for that query.
Latencies feed the ``iq_sharded_query_simulated_seconds`` observability
histogram, and the reported p50/p99 come from
:meth:`~repro.obs.registry.Histogram.quantile` over those buckets (the
exact sample percentiles are recorded alongside as a cross-check).
The router visits shards sequentially -- that is what lets the bound
tighten between shards -- so its service time charges the *sum* of
per-shard I/O, and every contacted shard pays its own directory scan
and seeks: with ~1.7 shards contacted per query the sequential sum
runs slightly *above* the single-tree service time.  The latency win
of sharding is the concurrent scatter: the per-query max over
contacted shards (each shard is an independent disk) is the floor a
fan-out deployment would pay, and it is recorded both as
``scatter_floor_ms`` and as its own open-loop latency series
(``<SHARDS>_scatter``).  It is a floor, not an exact figure -- a
concurrent scatter cannot tighten bounds mid-flight, so its real
per-shard work would sit between the floor and the sequential cost.

Results land in ``BENCH_sharded.json`` at the repo root.  Run directly
with ``--smoke`` for the CI-sized run (``--backend`` picks the worker
backend; answers and simulated latencies are backend-invariant by the
determinism contract, so the JSON is too).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.core.tree import IQTree
from repro.datasets import gaussian_clusters, make_workload
from repro.engine import ShardRouter
from repro.experiments.harness import experiment_disk
from repro.obs.instruments import REGISTRY, SHARDED_QUERY_SECONDS

SHARDS = 4
K = 5
DIM = 8
N_QUERIES = 64
#: offered load relative to single-shard service capacity
UTILIZATION = 0.7


def build_fixture(n_points: int, n_queries: int):
    data, queries = make_workload(
        gaussian_clusters,
        n=n_points,
        n_queries=n_queries,
        seed=7,
        dim=DIM,
        n_clusters=8,
        spread=0.04,
    )
    tree = IQTree.build(
        data, disk=experiment_disk(), optimize=False, fixed_bits=6
    )
    return tree, queries


def measure_services(router: ShardRouter, queries: np.ndarray) -> list:
    """Serve each query alone; return its (service, trace, result)."""
    out = []
    for i in range(queries.shape[0]):
        result = router.knn_batch(queries[i : i + 1], k=K)
        out.append(
            (float(result.stats.io.elapsed), result.routing, result[0])
        )
    return out


def open_loop(services, arrivals, label: str) -> dict:
    """Replay the arrival trace against one FIFO server.

    ``services[i]`` is query ``i``'s simulated service time; latency is
    queue wait plus service.  Every latency is observed into the
    ``iq_sharded_query_simulated_seconds`` histogram under ``label``,
    and the reported p50/p99 are read back from those buckets.
    """
    free = 0.0
    latencies = []
    for arrival, service in zip(arrivals, services):
        start = max(free, arrival)
        free = start + service
        latency = free - arrival
        latencies.append(latency)
        SHARDED_QUERY_SECONDS.observe(latency, shards=label)
    latencies = np.asarray(latencies)
    return {
        "p50_ms": round(
            SHARDED_QUERY_SECONDS.quantile(0.5, shards=label) * 1e3, 3
        ),
        "p99_ms": round(
            SHARDED_QUERY_SECONDS.quantile(0.99, shards=label) * 1e3, 3
        ),
        "p50_exact_ms": round(float(np.percentile(latencies, 50)) * 1e3, 3),
        "p99_exact_ms": round(float(np.percentile(latencies, 99)) * 1e3, 3),
        "mean_ms": round(float(latencies.mean()) * 1e3, 3),
        "max_ms": round(float(latencies.max()) * 1e3, 3),
    }


def run_bench(
    n_points: int = scaled(12_000),
    n_queries: int = N_QUERIES,
    workers: int = 2,
    backend: str = "thread",
) -> dict:
    tree, queries = build_fixture(n_points, n_queries)

    REGISTRY.reset()
    REGISTRY.enable()
    try:
        configs = {}
        answers = {}
        served = {}
        for n_shards in (1, SHARDS):
            router = ShardRouter(
                tree, shards=n_shards, workers=workers, backend=backend
            )
            served[n_shards] = measure_services(router, queries)
            answers[n_shards] = [r for _, _, r in served[n_shards]]
            router.close()

        # Identical answers at every shard count.
        for one, many in zip(answers[1], answers[SHARDS]):
            assert (one.ids == many.ids).all()
            assert (one.distances == many.distances).all()

        # One arrival trace for every configuration: deterministic
        # Poisson arrivals at UTILIZATION of single-shard capacity.
        base_services = np.asarray([s for s, _, _ in served[1]])
        mean_interarrival = float(base_services.mean()) / UTILIZATION
        rng = np.random.default_rng(42)
        arrivals = np.cumsum(
            rng.exponential(mean_interarrival, size=n_queries)
        )

        for n_shards, rows in served.items():
            services = [s for s, _, _ in rows]
            traces = [t for _, t, _ in rows]
            label = str(n_shards)
            lat = open_loop(services, arrivals, label)
            contacted = np.asarray(
                [int(t.contacted[0]) for t in traces]
            )
            scatter_floor = [
                max(t.shard_seconds) if t.shard_seconds else 0.0
                for t in traces
            ]
            lat_scatter = None
            if n_shards > 1:
                lat_scatter = open_loop(
                    scatter_floor, arrivals, f"{label}_scatter"
                )
            configs[label] = {
                "shards": n_shards,
                "latency": lat,
                "latency_concurrent_scatter": lat_scatter,
                "mean_service_ms": round(
                    float(np.mean(services)) * 1e3, 3
                ),
                "scatter_floor_ms": round(
                    float(np.mean(scatter_floor)) * 1e3, 3
                ),
                "mean_shards_contacted": round(
                    float(contacted.mean()), 3
                ),
                "max_shards_contacted": int(contacted.max()),
                "shard_visits_skipped": int(
                    sum(t.skipped for t in traces)
                ),
                "histogram_samples": SHARDED_QUERY_SECONDS.count(
                    shards=label
                ),
            }
    finally:
        REGISTRY.disable()

    sharded = configs[str(SHARDS)]
    out = {
        "fixture": {
            "n_points": int(tree.n_points),
            "dim": DIM,
            "k": K,
            "n_queries": n_queries,
            "pages": int(tree.n_pages),
            "shards": SHARDS,
            "workers": workers,
            "backend": backend,
            "utilization": UTILIZATION,
            "mean_interarrival_ms": round(mean_interarrival * 1e3, 3),
        },
        "configs": configs,
        # Headline: pruning effectiveness on the clustered workload.
        "mean_shards_contacted": sharded["mean_shards_contacted"],
        "mean_shards_skipped": round(
            SHARDS - sharded["mean_shards_contacted"], 3
        ),
        # Sequential gather pays per-shard overheads; the concurrent
        # scatter floor is where the latency win shows up.
        "p99_speedup_sequential": round(
            configs["1"]["latency"]["p99_ms"]
            / max(sharded["latency"]["p99_ms"], 1e-9),
            3,
        ),
        "p99_speedup_scatter_floor": round(
            configs["1"]["latency"]["p99_ms"]
            / max(
                sharded["latency_concurrent_scatter"]["p99_ms"], 1e-9
            ),
            3,
        ),
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    return out


@pytest.fixture(scope="module")
def result() -> dict:
    return run_bench()


def test_sharded_scaling(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print()
    print(json.dumps(result, indent=2))


def test_pruning_skips_shards_on_clustered_workload(result):
    """ISSUE acceptance: bound pruning must prove at least one shard
    irrelevant per query (on average) on the clustered workload."""
    assert result["mean_shards_skipped"] >= 1.0
    assert result["mean_shards_contacted"] < SHARDS


def test_percentiles_come_from_the_obs_histogram(result):
    """Every latency sample must have landed in the histogram, and the
    bucket-interpolated percentiles must bracket the exact ones to
    within one bucket (sanity on the quantile estimator)."""
    for cfg in result["configs"].values():
        assert cfg["histogram_samples"] == result["fixture"]["n_queries"]
        lat = cfg["latency"]
        assert lat["p50_ms"] > 0
        assert lat["p99_ms"] >= lat["p50_ms"]


def test_json_artifact_written(result):
    path = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"
    data = json.loads(path.read_text())
    assert data["mean_shards_contacted"] == result["mean_shards_contacted"]
    assert {
        "fixture", "configs", "p99_speedup_scatter_floor"
    } <= set(data)


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Sharded scatter-gather serving benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run (small fixture, same assertions)",
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="worker backend for every shard engine",
    )
    args = parser.parse_args()

    if args.smoke:
        out = run_bench(
            n_points=3_000, n_queries=24, workers=2, backend=args.backend
        )
    else:
        out = run_bench(backend=args.backend)

    print(json.dumps(out, indent=2))
    assert out["mean_shards_skipped"] >= 1.0, (
        "bound pruning failed to skip any shard on the clustered "
        "workload"
    )
    sharded = out["configs"][str(SHARDS)]
    print(
        f"ok: {out['mean_shards_contacted']}/{SHARDS} shards contacted "
        f"per query; p99 ms -- unsharded "
        f"{out['configs']['1']['latency']['p99_ms']}, sequential gather "
        f"{sharded['latency']['p99_ms']}, concurrent-scatter floor "
        f"{sharded['latency_concurrent_scatter']['p99_ms']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
