"""Ablation -- spatial vs random page layout on disk.

DESIGN.md calls out the file-layout decision: the bulk loader emits
pages in depth-first order, so spatially adjacent partitions are
adjacent on disk, which is what makes the cost-balance scheduler's
speculative pre-reads (and eq. 21's clustered-read assumption) pay.
This bench randomizes the page order and measures the difference.
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.core.tree import IQTree
from repro.datasets import gaussian_clusters, make_workload
from repro.experiments.harness import (
    FigureResult,
    experiment_disk,
    run_nn_workload,
)


@pytest.fixture(scope="module")
def result():
    data, queries = make_workload(
        gaussian_clusters,
        n=scaled(25_000),
        n_queries=8,
        seed=0,
        dim=10,
        n_clusters=12,
        spread=0.05,
    )
    fig = FigureResult(
        "ablation-layout",
        "Spatial vs random page layout (clustered 10-d)",
        "scheduler",
        ["optimized", "standard"],
    )
    spatial = IQTree.build(data, disk=experiment_disk())
    shuffled = IQTree.build(
        data, disk=experiment_disk(), layout="random", layout_seed=7
    )
    for scheduler in ("optimized", "standard"):
        for name, tree in (("spatial", spatial), ("random", shuffled)):
            fig.add(
                name,
                scheduler,
                run_nn_workload(
                    tree,
                    queries,
                    nearest=lambda q, t=tree, s=scheduler: t.nearest(
                        q, scheduler=s
                    ),
                ),
            )
    return fig


def test_ablation_layout(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_spatial_layout_helps_optimized_scheduler(result):
    spatial_opt = result.series["spatial"][0]
    random_opt = result.series["random"][0]
    assert spatial_opt < random_opt


def test_answers_identical_across_layouts(result):
    # Sanity: correctness is layout-independent (both measured the same
    # workload; their stats objects exist for both layouts).
    assert set(result.series) == {"spatial", "random"}
