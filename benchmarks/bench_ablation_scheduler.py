"""Ablation -- cost-balance scheduler vs the seek/transfer ratio.

The Section 2 scheduler's advantage depends on the disk's over-read
window ``v = t_seek / t_xfer``: the more expensive seeks are relative
to transfers, the more speculative pre-reading pays.  This bench sweeps
the ratio and checks that (a) the optimized scheduler never loses, and
(b) its advantage grows with the seek cost.
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.experiments.harness import FigureResult, run_nn_workload
from repro.storage.disk import DiskModel, SimulatedDisk

#: (label, t_seek) at fixed t_xfer = 0.2 ms -> windows 2.5 .. 50.
SEEK_COSTS = [(2.5, 0.0005), (12.5, 0.0025), (50.0, 0.0100)]


@pytest.fixture(scope="module")
def result():
    data, queries = make_workload(
        uniform, n=scaled(20_000), n_queries=8, seed=0, dim=12
    )
    fig = FigureResult(
        "ablation-scheduler",
        "Cost-balance scheduler vs seek/transfer ratio (12-d UNIFORM)",
        "overread window v",
        [v for v, _ in SEEK_COSTS],
    )
    for window, t_seek in SEEK_COSTS:
        disk = SimulatedDisk(
            DiskModel(t_seek=t_seek, t_xfer=0.0002, block_size=2048)
        )
        tree = IQTree.build(data, disk=disk)
        fig.add(
            "optimized",
            window,
            run_nn_workload(
                tree,
                queries,
                nearest=lambda q, t=tree: t.nearest(
                    q, scheduler="optimized"
                ),
            ),
        )
        fig.add(
            "standard",
            window,
            run_nn_workload(
                tree,
                queries,
                nearest=lambda q, t=tree: t.nearest(
                    q, scheduler="standard"
                ),
            ),
        )
    return fig


def test_ablation_scheduler(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_optimized_never_loses(result):
    for opt, std in zip(
        result.series["optimized"], result.series["standard"]
    ):
        assert opt <= std * 1.05


def test_advantage_grows_with_seek_cost(result):
    ratios = [
        std / opt
        for opt, std in zip(
            result.series["optimized"], result.series["standard"]
        )
    ]
    assert ratios[-1] > ratios[0]
