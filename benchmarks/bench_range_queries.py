"""Extension bench -- range queries with the Section 2 batched fetch.

Range queries know their candidate page set up front, so the IQ-tree
fetches it with the optimal over-read strategy (Figure 1 of the paper).
This bench measures range queries at several selectivities and checks
that the batched strategy beats one-seek-per-page by a growing margin
as the selected page set densifies.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_figure, scaled
from repro.baselines.scan import SequentialScan
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.experiments.harness import FigureResult, experiment_disk
from repro.storage.disk import IOStats

RADII = (0.2, 0.4, 0.6, 0.8)


@pytest.fixture(scope="module")
def setup():
    data, queries = make_workload(
        uniform, n=scaled(20_000), n_queries=6, seed=0, dim=10
    )
    tree = IQTree.build(data, disk=experiment_disk())
    scan = SequentialScan(data, disk=experiment_disk())
    return tree, scan, queries


@pytest.fixture(scope="module")
def result(setup):
    tree, scan, queries = setup
    fig = FigureResult(
        "extension-range",
        "Range query cost vs radius (10-d UNIFORM)",
        "radius",
        list(RADII),
    )

    class _Stats:
        def __init__(self, mean_time):
            self.mean_time = mean_time

    for radius in RADII:
        times, seeks, naive = [], [], []
        for q in queries:
            tree.disk.park()
            res = tree.range_query(q, radius)
            times.append(res.io.elapsed)
            seeks.append(res.io.seeks)
            naive.append(
                res.pages_read
                * (tree.disk.model.t_seek + tree.disk.model.t_xfer)
            )
        fig.add("iq-tree", radius, _Stats(float(np.mean(times))))
        fig.add(
            "one-seek-per-page", radius, _Stats(float(np.mean(naive)))
        )
        scan_times = []
        for q in queries:
            scan.disk.park()
            scan_times.append(scan.range_query(q, radius).io.elapsed)
        fig.add("scan", radius, _Stats(float(np.mean(scan_times))))
    return fig


def test_range_queries(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_batched_beats_per_page_seeks(result):
    for iq, naive in zip(
        result.series["iq-tree"], result.series["one-seek-per-page"]
    ):
        assert iq < naive


def test_batched_advantage_peaks_at_moderate_selectivity(result):
    """At tiny radii few pages are touched (little to merge); at huge
    radii the cost is dominated by returning the answer set's exact
    records.  In between, merging gaps pays most."""
    ratios = [
        naive / iq
        for iq, naive in zip(
            result.series["iq-tree"], result.series["one-seek-per-page"]
        )
    ]
    assert max(ratios[1:-1]) > ratios[0]
    assert max(ratios) > 1.5


def test_range_correctness_spotcheck(setup):
    tree, scan, queries = setup
    q = queries[0]
    a = tree.range_query(q, 0.4)
    b = scan.range_query(q, 0.4)
    assert set(a.ids.tolist()) == set(b.ids.tolist())
