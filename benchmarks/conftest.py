"""Shared infrastructure for the figure-reproduction benchmarks.

Each benchmark module regenerates one figure of the paper's evaluation
at a laptop-feasible scale, prints the same series the paper plots, and
asserts the figure's qualitative shape (who wins, where the crossovers
fall).  Set ``IQ_REPRO_SCALE`` (a float, default 1.0) to scale every
database size, e.g. ``IQ_REPRO_SCALE=4 pytest benchmarks/`` for a run
closer to the paper's 500k points.
"""

from __future__ import annotations

import os

import pytest


def repro_scale() -> float:
    """Database-size multiplier from the environment (default 1.0)."""
    return float(os.environ.get("IQ_REPRO_SCALE", "1.0"))


def scaled(n: int) -> int:
    """Scale one database size, keeping it sane for tiny factors."""
    return max(500, int(n * repro_scale()))


@pytest.fixture(scope="session")
def scale() -> float:
    return repro_scale()


def print_figure(result) -> None:
    """Print a reproduced figure table and persist it to bench_results/.

    pytest captures stdout by default, so the on-disk copy is the
    reliable artifact; EXPERIMENTS.md is written from these files.
    """
    from pathlib import Path

    from repro.experiments.report import format_figure

    text = format_figure(result)
    print()
    print(text)
    out_dir = Path(__file__).resolve().parent.parent / "bench_results"
    out_dir.mkdir(exist_ok=True)
    (out_dir / f"{result.figure_id}.txt").write_text(text + "\n")
