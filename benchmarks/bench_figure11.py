"""Figure 11 -- COLOR analogue (slightly clustered 16-d), varying N.

Paper claims reproduced here:

* the IQ-tree performs best of all techniques;
* although the data is only slightly clustered, the X-tree still ends
  up below the sequential scan at scale (the hierarchical index retains
  some selectivity).
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.experiments import figure11


NS = tuple(scaled(n) for n in (20_000, 40_000, 80_000))


@pytest.fixture(scope="module")
def result():
    return figure11(ns=NS, n_queries=8)


def test_figure11(benchmark, result):
    benchmark.pedantic(
        lambda: figure11(ns=(scaled(4_000),), n_queries=3),
        rounds=1,
        iterations=1,
    )
    print_figure(result)


def test_iqtree_best_overall(result):
    for i, n in enumerate(NS):
        iq = result.series["iq-tree"][i]
        assert iq < result.series["x-tree"][i], f"iq vs x-tree at {n}"
        assert iq <= result.series["va-file"][i] * 1.1, f"iq vs va at {n}"
        assert iq < result.series["scan"][i], f"iq vs scan at {n}"


def test_xtree_below_scan_at_scale(result):
    assert result.series["x-tree"][-1] < result.series["scan"][-1]


def test_iqtree_advantage_over_xtree_large(result):
    """Paper: up to 6.6x on COLOR."""
    ratio = result.series["x-tree"][-1] / result.series["iq-tree"][-1]
    assert ratio > 3.0
