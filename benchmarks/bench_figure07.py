"""Figure 7 -- IQ-tree concept ablation on UNIFORM, varying dimension.

Paper claims reproduced here:

* the optimized page-access strategy improves performance at *every*
  dimension, with the gain growing with dimension;
* quantization pays off for high dimensions (the quantized variants win
  clearly by d = 16) while contributing little at low dimensions.
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.experiments import figure7


DIMS = (4, 8, 12, 16)


@pytest.fixture(scope="module")
def result():
    return figure7(n=scaled(20_000), dims=DIMS, n_queries=8)


def test_figure7(benchmark, result):
    """Regenerate the Figure 7 table (timing the full experiment)."""
    benchmark.pedantic(
        lambda: figure7(n=scaled(4_000), dims=(8,), n_queries=3),
        rounds=1,
        iterations=1,
    )
    print_figure(result)


def test_optimized_scheduling_helps_at_every_dimension(result):
    for quant in ("quantization", "no quantization"):
        opt = result.series[f"optimized NN-search, {quant}"]
        std = result.series[f"standard NN-search, {quant}"]
        for o, s, d in zip(opt, std, DIMS):
            assert o <= s * 1.05, f"optimized slower at d={d} ({quant})"


def test_scheduling_gain_grows_with_dimension(result):
    opt = result.series["optimized NN-search, quantization"]
    std = result.series["standard NN-search, quantization"]
    gains = [s - o for o, s in zip(opt, std)]
    assert gains[-1] > gains[0]


def test_quantization_pays_off_at_high_dimension(result):
    quant = result.series["optimized NN-search, quantization"]
    exact = result.series["optimized NN-search, no quantization"]
    # By d = 16 the compressed second level must win clearly.
    assert quant[-1] < exact[-1]
