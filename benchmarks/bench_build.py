"""Extension bench -- construction cost of the optimizer.

Section 3.5 argues the optimal-quantization algorithm costs
``32 * P`` test-and-partition operations -- "exactly the cost to build
a regular hierarchical index".  This bench measures wall-clock build
time and the optimizer trajectory length across database sizes and
checks both grow near-linearly in N.
"""

import time

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.core.tree import IQTree
from repro.datasets import uniform
from repro.experiments.harness import FigureResult, experiment_disk

NS = tuple(scaled(n) for n in (5_000, 10_000, 20_000, 40_000))


@pytest.fixture(scope="module")
def result():
    fig = FigureResult(
        "extension-build",
        "IQ-tree construction (12-d UNIFORM): wall seconds and "
        "optimizer steps",
        "number of points",
        list(NS),
    )

    class _Stats:
        def __init__(self, mean_time):
            self.mean_time = mean_time

    for n in NS:
        data = uniform(n, 12, seed=0)
        start = time.perf_counter()
        tree = IQTree.build(data, disk=experiment_disk())
        elapsed = time.perf_counter() - start
        fig.add("wall-seconds", n, _Stats(elapsed))
        fig.add("optimizer-steps", n, _Stats(len(tree.trace.costs) - 1))
        fig.add("pages-chosen", n, _Stats(tree.n_pages))
    return fig


def test_build(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_trajectory_linear_in_n(result):
    steps = result.series["optimizer-steps"]
    n_ratio = NS[-1] / NS[0]
    growth = steps[-1] / max(steps[0], 1)
    assert growth < n_ratio * 1.5


def test_build_time_near_linear(result):
    wall = result.series["wall-seconds"]
    n_ratio = NS[-1] / NS[0]
    # Allow up to n log n-ish growth; reject anything quadratic.
    assert wall[-1] / wall[0] < n_ratio * 2.5
