"""Extension bench -- page codecs vs the grid-only reference layout.

The same workload is indexed four times, once per codec policy
(``grid`` reference, forced ``pq``, Elias-Fano ``ef`` directory, and
cost-model ``auto``), and an identical query stream runs against each
build.  Two figures per (workload, codec) cell:

**Blocks transferred** -- the :class:`~repro.storage.disk.IOStats`
ledger's ``blocks_read`` summed over the stream.  This is the paper's
objective: quantization exists to move fewer blocks per query, and a
codec only earns its place by lowering this number.  The expected win
has two independent sources: PQ codebook pages encode clustered pages
in fewer bits than the uniform grid at equal-or-tighter cell bounds
(fewer second-level blocks *and* fewer third-level refinements), and
the Elias-Fano directory shrinks the sequential first-level scan every
query pays.

**Wall-clock time** -- decode cost is not free (PQ adds a codebook
gather per page), so the bench records real seconds per build to show
the CPU price of the block savings.

The workloads bracket the codec decision: ``clustered`` draws many
Gaussian micro-clusters far smaller than a page, so one page holds
several tight clumps and a per-page k-means codebook beats the uniform
grid; ``uniform`` is the adversarial case where the grid is optimal and
``auto``'s job is to *decline* PQ (picking it would transfer more).

Answers must be bit-identical across every build -- codecs change the
conservative bounds, never the refined results.

Results land in ``BENCH_codecs.json`` at the repo root.  ``--smoke``
runs the CI-sized fixture and gates the cost-model pick: ``auto`` may
never transfer more blocks than ``grid`` on either workload.  The full
run additionally asserts the ISSUE acceptance: >= 15% fewer blocks on
the clustered workload under ``auto``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.tree import IQTree
from repro.datasets import gaussian_clusters, make_workload, uniform

CODECS = ("grid", "pq", "ef", "auto")
K = 10

#: ISSUE acceptance: auto must cut >= this fraction of grid's blocks
#: on the clustered workload (full-size run only).
CLUSTERED_SAVINGS_FLOOR = 0.15


def make_fixtures(n_points: int, n_queries: int, dim: int) -> dict:
    """The two workloads, as ``name -> (data, queries)``.

    The clustered generator draws micro-clusters much smaller than a
    grid cell (~125 points each at sub-cell spread), so a page holds
    several tight clumps -- the regime where per-page codebooks encode
    the same points in far fewer bits than the uniform grid and the
    merge pass can coalesce neighboring pages into single blocks.
    """
    clustered = make_workload(
        gaussian_clusters,
        n=n_points,
        n_queries=n_queries,
        seed=7,
        dim=dim,
        n_clusters=max(n_points // 125, 8),
        spread=0.0005,
    )
    flat = make_workload(
        uniform, n=n_points, n_queries=n_queries, dim=dim, seed=9
    )
    return {"clustered": clustered, "uniform": flat}


def run_stream(tree: IQTree, queries: np.ndarray) -> tuple[dict, list]:
    """Serve the stream; return (figures, answers)."""
    tree.disk.reset_stats()
    answers = []
    start = time.perf_counter()
    for query in queries:
        answers.append(tree.nearest(query, k=K))
    wall = time.perf_counter() - start
    stats = tree.disk.stats
    figures = {
        "blocks_read": int(stats.blocks_read),
        "seeks": int(stats.seeks),
        "simulated_s": round(float(stats.elapsed), 6),
        "wall_s": round(wall, 4),
        "refinements": int(sum(a.refinements for a in answers)),
        "pages_read": int(sum(a.pages_read for a in answers)),
    }
    return figures, answers


def codec_census(tree: IQTree) -> dict:
    """How the build actually encoded the tree."""
    pq_pages = sum(1 for opt in tree._partitions if opt.codec)
    return {
        "pages": int(tree.n_pages),
        "pq_pages": int(pq_pages),
        "directory_codec": tree.directory_codec,
        "directory_blocks": int(tree._dir_file.n_blocks),
    }


def run_bench(
    n_points: int = 32_000, n_queries: int = 48, dim: int = 16
) -> dict:
    fixtures = make_fixtures(n_points, n_queries, dim)
    workloads = {}
    for name, (data, queries) in fixtures.items():
        cells = {}
        baseline_answers = None
        for codec in CODECS:
            tree = IQTree.build(data, codec=codec)
            figures, answers = run_stream(tree, queries)
            figures.update(codec_census(tree))
            cells[codec] = figures
            if codec == "grid":
                baseline_answers = answers
            else:
                # Codecs change bounds, never answers: bit-identical.
                for want, got in zip(baseline_answers, answers):
                    assert (want.ids == got.ids).all(), (
                        f"{name}/{codec}: ids differ from grid baseline"
                    )
                    assert (want.distances == got.distances).all(), (
                        f"{name}/{codec}: distances differ from grid"
                    )
        grid_blocks = cells["grid"]["blocks_read"]
        for codec in CODECS:
            cells[codec]["blocks_vs_grid"] = round(
                cells[codec]["blocks_read"] / max(grid_blocks, 1), 4
            )
        workloads[name] = cells

    out = {
        "fixture": {
            "n_points": n_points,
            "n_queries": n_queries,
            "dim": dim,
            "k": K,
        },
        "workloads": workloads,
        "clustered_auto_block_savings": round(
            1.0 - workloads["clustered"]["auto"]["blocks_vs_grid"], 4
        ),
        "uniform_auto_block_savings": round(
            1.0 - workloads["uniform"]["auto"]["blocks_vs_grid"], 4
        ),
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_codecs.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    return out


def check_auto_never_worse(out: dict) -> None:
    """CI gate: the cost-model pick must never transfer more blocks
    than the grid-only reference, on either workload."""
    for name, cells in out["workloads"].items():
        assert (
            cells["auto"]["blocks_read"] <= cells["grid"]["blocks_read"]
        ), f"{name}: auto transferred more blocks than grid-only"


@pytest.fixture(scope="module")
def result() -> dict:
    return run_bench()


def test_codecs(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print()
    print(json.dumps(result, indent=2))


def test_auto_never_transfers_more_than_grid(result):
    check_auto_never_worse(result)


def test_clustered_savings_meet_acceptance(result):
    """ISSUE acceptance: >= 15% fewer blocks transferred on the
    clustered workload with cost-model codec selection."""
    savings = result["clustered_auto_block_savings"]
    assert savings >= CLUSTERED_SAVINGS_FLOOR, (
        f"auto saved only {savings:.1%} of grid's blocks on the "
        f"clustered workload (need >= {CLUSTERED_SAVINGS_FLOOR:.0%})"
    )


def test_json_artifact_written(result):
    path = Path(__file__).resolve().parent.parent / "BENCH_codecs.json"
    data = json.loads(path.read_text())
    assert set(data["workloads"]) == {"clustered", "uniform"}
    for cells in data["workloads"].values():
        assert set(cells) == set(CODECS)


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Page-codec benchmark (blocks transferred vs grid)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: gates auto <= grid blocks on both "
        "workloads (the 15%% clustered-savings floor only applies to "
        "the full run)",
    )
    args = parser.parse_args()

    if args.smoke:
        out = run_bench(n_points=16_000, n_queries=24, dim=16)
    else:
        out = run_bench()

    print(json.dumps(out, indent=2))
    check_auto_never_worse(out)
    savings = out["clustered_auto_block_savings"]
    if not args.smoke:
        assert savings >= CLUSTERED_SAVINGS_FLOOR, (
            f"clustered auto savings {savings:.1%} below the "
            f"{CLUSTERED_SAVINGS_FLOOR:.0%} acceptance floor"
        )
    print(
        f"ok: clustered auto saves {savings:.1%} of grid's blocks "
        f"(uniform: {out['uniform_auto_block_savings']:.1%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
