"""Extension bench -- warm-cache behaviour with an LRU buffer pool.

The paper measures cold queries; real deployments keep a buffer pool.
This bench sweeps the pool size on a repeated-query workload and checks
the expected profile: even a pool that only fits the directory removes
the per-query first-level scan, and a pool that fits the whole
quantized level makes warm queries nearly free.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_figure, scaled
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.experiments.harness import (
    FigureResult,
    experiment_disk,
    run_nn_workload,
)

#: pool capacities in blocks (0 = uncached baseline)
CAPACITIES = (0, 16, 256, 4096)


@pytest.fixture(scope="module")
def result():
    data, queries = make_workload(
        uniform, n=scaled(20_000), n_queries=8, seed=0, dim=12
    )
    fig = FigureResult(
        "extension-buffer-pool",
        "Warm-query time vs buffer-pool size (12-d UNIFORM)",
        "pool blocks",
        list(CAPACITIES),
    )
    for capacity in CAPACITIES:
        tree = IQTree.build(data, disk=experiment_disk())
        if capacity:
            tree.use_buffer_pool(capacity)
        # Warm the pool with one pass, then measure the repeat pass.
        run_nn_workload(tree, queries)
        fig.add("warm", capacity, run_nn_workload(tree, queries))
    return fig


def test_buffer_pool(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_warm_time_monotone_in_pool_size(result):
    warm = result.series["warm"]
    for smaller, larger in zip(warm, warm[1:]):
        assert larger <= smaller * 1.05


def test_large_pool_nearly_free(result):
    warm = result.series["warm"]
    assert warm[-1] < warm[0] * 0.2
