"""Fault-tolerance overhead -- the pristine read path must stay ~free.

The read-path fault layer (``repro.storage.runtime_faults``) guards
everything behind two cheap checks: ``disk.fault_injector is None`` on
every timed block delivery and ``tree._fault_ctx is None`` at the query
layer.  With no injector installed and no fault context attached, a
query must cost the same as it did before the layer existed: no CRC is
computed, no quarantine is consulted, no payload is routed through a
filter.

This bench times the same kNN batch workload twice: once with the
shipped code (no injector, no context -- the production default) and
once with the hottest read methods monkeypatched back to pristine,
guard-free versions.  The relative overhead must stay under
``IQ_CHAOS_OVERHEAD_THRESHOLD`` (default 0.05, i.e. 5%).  CI runs this
in smoke mode with a laxer threshold because shared runners time
noisily.  Min-of-N timing suppresses scheduler noise.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import scaled
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.engine.engine import QueryEngine
from repro.experiments.harness import experiment_disk
from repro.storage.blockfile import BlockFile
from repro.storage.cache import BufferPool

REPS = 5
BATCHES = 6
BATCH_SIZE = 16
K = 5


def _threshold() -> float:
    return float(os.environ.get("IQ_CHAOS_OVERHEAD_THRESHOLD", "0.05"))


@pytest.fixture(scope="module")
def workload():
    data, queries = make_workload(
        uniform,
        n=scaled(8_000),
        n_queries=BATCHES * BATCH_SIZE,
        seed=13,
        dim=8,
    )
    tree = IQTree.build(data, disk=experiment_disk())
    return tree, queries


def _run(tree, queries) -> None:
    engine = QueryEngine(tree, pool=BufferPool(128))
    for i in range(BATCHES):
        batch = queries[i * BATCH_SIZE : (i + 1) * BATCH_SIZE]
        engine.knn_batch(batch, k=K)


def _time(tree, queries) -> float:
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        _run(tree, queries)
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Pristine (guard-free) copies of the read methods the fault layer
# touched: the shipped implementations minus the injector branch.
# ----------------------------------------------------------------------
def _pristine_read_block(self, index):
    self._check_index(index)
    self._disk.read_blocks(self._address(index), 1)
    return self._blocks[index]


def _pristine_read_run(self, start, count, wanted=-1):
    self._check_index(start)
    if count <= 0:
        raise AssertionError("run length must be positive")
    self._check_index(start + count - 1)
    overread = 0 if wanted < 0 else max(0, count - wanted)
    self._disk.read_blocks(self._address(start), count, overread=overread)
    return self._blocks[start : start + count]


def _patch_pristine(monkeypatch) -> None:
    monkeypatch.setattr(BlockFile, "read_block", _pristine_read_block)
    monkeypatch.setattr(BlockFile, "read_run", _pristine_read_run)
    monkeypatch.setattr(
        QueryEngine, "_fault_counters", lambda self: (0, 0, 0, 0)
    )


def test_no_faults_read_path_overhead(workload, monkeypatch):
    tree, queries = workload
    assert tree.disk.fault_injector is None
    assert tree._fault_ctx is None

    guarded = _time(tree, queries)
    with monkeypatch.context() as patched:
        _patch_pristine(patched)
        pristine = _time(tree, queries)

    overhead = (guarded - pristine) / pristine
    threshold = _threshold()
    print(
        f"\nno-faults read-path overhead: {overhead * 100:+.2f}% "
        f"(pristine {pristine * 1e3:.1f} ms, "
        f"guarded {guarded * 1e3:.1f} ms, "
        f"threshold {threshold * 100:.0f}%)"
    )
    assert overhead < threshold, (
        f"fault-tolerance guards cost {overhead * 100:.1f}% "
        f"(> {threshold * 100:.0f}%) with no injector installed; a "
        "hot-path check is doing real work in the pristine case"
    )


def test_injector_cost_reported_not_asserted(workload):
    """Informational: what an installed (observing) injector costs.

    Installing an injector turns on per-block delivery filtering and
    CRC verification -- that price is expected and only paid when a
    chaos schedule is active.
    """
    from repro.storage.faults import ReadFaultInjector

    tree, queries = workload
    plain = _time(tree, queries)
    tree.disk.install_fault_injector(ReadFaultInjector())
    try:
        observed = _time(tree, queries)
    finally:
        tree.disk.clear_fault_injector()
    print(
        f"\nobserver-injector cost: "
        f"{(observed - plain) / plain * 100:+.2f}% "
        f"(plain {plain * 1e3:.1f} ms, observed {observed * 1e3:.1f} ms)"
    )
    assert observed > 0  # smoke: the filtered run completed


def test_results_identical_with_and_without_guards(workload, monkeypatch):
    """The guards are accounting-invisible, not just cheap."""
    import numpy as np

    tree, queries = workload
    engine = QueryEngine(tree)
    batch = queries[:BATCH_SIZE]
    shipped = engine.knn_batch(batch, k=K)
    with monkeypatch.context() as patched:
        _patch_pristine(patched)
        pristine = engine.knn_batch(batch, k=K)
    for a, b in zip(shipped.queries, pristine.queries):
        assert np.array_equal(a.ids, b.ids)
        assert np.allclose(a.distances, b.distances)
    assert shipped.stats.io.blocks_read == pristine.stats.io.blocks_read
    assert shipped.stats.io.seeks == pristine.stats.io.seeks
