"""Figure 10 -- CAD analogue (moderately clustered 16-d), varying N.

Paper claims reproduced here:

* on moderately clustered data the X-tree beats the VA-file despite the
  high dimension (clustering restores the index's selectivity);
* the IQ-tree beats both;
* the sequential scan is "out of question" (far above everything).
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.experiments import figure10
from repro.baselines.scan import SequentialScan
from repro.datasets import cad_like, make_workload
from repro.experiments.harness import experiment_disk, run_nn_workload


NS = tuple(scaled(n) for n in (10_000, 20_000, 40_000, 80_000))


@pytest.fixture(scope="module")
def result():
    return figure10(ns=NS, n_queries=8)


def test_figure10(benchmark, result):
    benchmark.pedantic(
        lambda: figure10(ns=(scaled(4_000),), n_queries=3),
        rounds=1,
        iterations=1,
    )
    print_figure(result)


def test_iqtree_beats_both(result):
    for i, n in enumerate(NS):
        iq = result.series["iq-tree"][i]
        assert iq < result.series["x-tree"][i], f"iq vs x-tree at {n}"
        assert iq < result.series["va-file"][i], f"iq vs va-file at {n}"


def test_xtree_beats_vafile_at_scale(result):
    """Clustering restores index selectivity: by the largest N the
    X-tree must run below the VA-file (the paper sees up to 2x)."""
    assert result.series["x-tree"][-1] < result.series["va-file"][-1]


def test_scan_out_of_question():
    data, queries = make_workload(
        cad_like, n=NS[-1], n_queries=5, seed=0
    )
    scan = SequentialScan(data, disk=experiment_disk())
    stats = run_nn_workload(scan, queries)
    partial = figure10(ns=(NS[-1],), n_queries=5)
    assert stats.mean_time > 3 * partial.series["x-tree"][0]
