"""Extension bench -- cost-model validation across data distributions.

The optimality theorem is "optimal with respect to a given cost model";
this bench closes the loop by tabulating predicted-vs-measured page
accesses, refinements, and total time on each of the evaluation's data
distributions (under the uniform model for UNIFORM data and the
estimated fractal model elsewhere).
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.core.tree import IQTree
from repro.datasets import (
    cad_like,
    make_workload,
    uniform,
    weather_like,
)
from repro.experiments.harness import FigureResult, experiment_disk
from repro.experiments.validation import validate_cost_model

WORKLOADS = [
    ("uniform-8d", lambda n: make_workload(uniform, n, 8, seed=0, dim=8), None),
    ("cad-16d", lambda n: make_workload(cad_like, n, 8, seed=1), "auto"),
    ("weather-9d", lambda n: make_workload(weather_like, n, 8, seed=2), "auto"),
]


@pytest.fixture(scope="module")
def result():
    fig = FigureResult(
        "extension-validation",
        "Cost model: predicted / measured ratios per distribution",
        "workload",
        [name for name, _f, _fd in WORKLOADS],
    )

    class _Stats:
        def __init__(self, mean_time):
            self.mean_time = mean_time

    for name, factory, fractal in WORKLOADS:
        data, queries = factory(scaled(15_000))
        tree = IQTree.build(
            data, disk=experiment_disk(), fractal_dim=fractal
        )
        v = validate_cost_model(tree, queries)
        fig.add("pages-ratio", name, _Stats(v.pages_ratio))
        fig.add("refinements-ratio", name, _Stats(v.refinements_ratio))
        fig.add("time-ratio", name, _Stats(v.time_ratio))
    return fig


def test_validation(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_time_predictions_usable_everywhere(result):
    for ratio, name in zip(
        result.series["time-ratio"], result.x_values
    ):
        assert 0.05 < ratio < 20.0, name


def test_uniform_model_predictions_tight(result):
    # The first workload runs under the model's home assumptions.
    assert 0.3 < result.series["time-ratio"][0] < 3.0
    assert 0.2 < result.series["pages-ratio"][0] < 5.0