"""Extension bench -- parallel serving, simulated AND wall-clock.

A query server replays similar batches over and over; the paper's
measurement discipline (everything cold, head parked) prices each round
as if it were the first.  This bench measures two different things and
keeps them clearly apart:

**Simulated speedup** (the repo's standard cost measure).  A repeated
16-d kNN workload runs two ways on identical trees and disks:

* **serial**: ``QueryEngine(workers=1)`` with no decoded-page cache --
  every round re-fetches and re-decodes its candidate pages (the
  engine's per-batch amortization still applies *within* a round);
* **cached-parallel**: the full serving stack --
  ``QueryEngine(workers=4)`` with a lock-striped
  :class:`~repro.storage.cache.BufferPool` over the block level and one
  :class:`~repro.engine.page_cache.DecodedPageCache` shared across
  rounds: the first round decodes, later rounds serve pages (and their
  cell bounds) from memory, skip the quantized-level transfers
  entirely, and serve repeated third-level blocks from the pool.

**Wall-clock speedup** (real elapsed time on the host).  The same warm
workload -- decoded cache hot, so per-query CPU dominates -- runs with
``workers=1`` and with ``workers=4, backend="process"`` on separate but
identical trees; results must be bit-identical, only the clock may
differ.  The process backend ships the per-query kernels to worker
processes (large arrays via a shared-memory arena), so this is where
multi-core hosts convert the simulated speedup into real time.  The
measurement is host-dependent by nature: the acceptance threshold below
is only asserted when the runner actually has >= 4 usable cores, and
the JSON records the core count alongside the numbers.

Acceptance thresholds asserted below, from the ISSUEs:

* >= 2x simulated batch-query throughput, cached-parallel vs serial;
* >= 80% decoded-cache hit rate on the repeated workload;
* >= 2.5x wall-clock batch speedup at 4 process workers -- asserted on
  hosts with >= 4 cores, skipped (and still recorded) elsewhere.

Results land in ``BENCH_parallel.json`` at the repo root so CI can
track the trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import scaled
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.experiments.harness import experiment_disk
from repro.storage.cache import BufferPool

#: identical rounds of the same batch (a repeated workload)
ROUNDS = 6
#: queries per round (simulated-speedup section)
BATCH = 8
K = 5
DIM = 16
WORKERS = 4
#: queries per round of the wall-clock section -- large enough that the
#: per-query kernels dominate the coordinator's bookkeeping
WALL_BATCH = 64
WALL_ROUNDS = 3
#: ISSUE acceptance for the wall-clock section (4-core hosts and up)
WALL_SPEEDUP_FLOOR = 2.5


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_fixture(n_queries: int = BATCH):
    data, queries = make_workload(
        uniform, n=scaled(20_000), n_queries=n_queries, seed=11, dim=DIM
    )
    tree = IQTree.build(
        data, disk=experiment_disk(), optimize=False, fixed_bits=8
    )
    return tree, queries


def run_rounds(engine, queries):
    """Replay the workload; return (sim_seconds, wall_seconds, results)."""
    sim = 0.0
    wall = -time.perf_counter()
    last = None
    for _ in range(ROUNDS):
        last = engine.knn_batch(queries, k=K)
        sim += last.stats.io.elapsed
    wall += time.perf_counter()
    return sim, wall, last


def run_wall(tree, queries, workers, backend):
    """Warm the decoded cache, then time WALL_ROUNDS replays."""
    engine = tree.query_engine(
        workers=workers, backend=backend, decode_cache=64 << 20
    )
    engine.knn_batch(queries, k=K)  # warm: decode once, off the clock
    wall = -time.perf_counter()
    last = None
    for _ in range(WALL_ROUNDS):
        last = engine.knn_batch(queries, k=K)
    wall += time.perf_counter()
    engine.close()
    return wall, last


@pytest.fixture(scope="module")
def result() -> dict:
    n_queries = ROUNDS * BATCH

    tree_s, queries = build_fixture()
    serial_sim, serial_wall, serial_last = run_rounds(
        tree_s.query_engine(), queries
    )

    tree_p, _ = build_fixture()
    pool = BufferPool(2048, stripes=WORKERS)
    engine = tree_p.query_engine(
        pool=pool, workers=WORKERS, decode_cache=64 << 20
    )
    par_sim, par_wall, par_last = run_rounds(engine, queries)
    cache = tree_p.decoded_cache
    engine.close()

    # Identical answers, round after round.
    for s, p in zip(serial_last, par_last):
        assert (s.ids == p.ids).all()
        assert (s.distances == p.distances).all()

    # Wall-clock section: same warm workload, serial vs process pool.
    tree_w1, wall_queries = build_fixture(WALL_BATCH)
    wall_serial, wall_serial_last = run_wall(
        tree_w1, wall_queries, workers=1, backend="auto"
    )
    tree_wp, _ = build_fixture(WALL_BATCH)
    wall_process, wall_process_last = run_wall(
        tree_wp, wall_queries, workers=WORKERS, backend="process"
    )
    for s, p in zip(wall_serial_last, wall_process_last):
        assert (s.ids == p.ids).all()
        assert (s.distances == p.distances).all()

    sim_speedup = serial_sim / par_sim
    wall_speedup = wall_serial / wall_process
    out = {
        "fixture": {
            "n_points": int(tree_s.n_points),
            "dim": DIM,
            "k": K,
            "batch": BATCH,
            "rounds": ROUNDS,
            "workers": WORKERS,
            "pages": int(tree_p.n_pages),
        },
        "serial": {
            "sim_seconds": round(serial_sim, 6),
            "wall_seconds": round(serial_wall, 4),
            "throughput_qps_sim": round(n_queries / serial_sim, 2),
        },
        "cached_parallel": {
            "sim_seconds": round(par_sim, 6),
            "wall_seconds": round(par_wall, 4),
            "throughput_qps_sim": round(n_queries / par_sim, 2),
            "decode_cache_hit_rate": round(cache.hit_rate, 4),
            "decoded_pages_reused": cache.hits,
            "pages_decoded": cache.misses,
        },
        "speedup_sim": round(sim_speedup, 3),
        # Wall-clock scaling of the warm workload (process backend).
        # Host-dependent: meaningful on >= WORKERS cores, recorded
        # everywhere for trend visibility.
        "wall_clock": {
            "cores": usable_cores(),
            "batch": WALL_BATCH,
            "rounds": WALL_ROUNDS,
            "serial_seconds": round(wall_serial, 4),
            "process_seconds": round(wall_process, 4),
            "speedup_wall": round(wall_speedup, 3),
            "threshold": WALL_SPEEDUP_FLOOR,
            "threshold_asserted": usable_cores() >= WORKERS,
        },
        "speedup_wall": round(wall_speedup, 3),
        # Classic parallel efficiency (speedup / workers).  On a
        # single-core host the gain comes from cross-round decode
        # amortization, not concurrency, so values below 1 are normal.
        "scaling_efficiency": round(sim_speedup / WORKERS, 3),
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    return out


def test_parallel_scaling(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print()
    print(json.dumps(result, indent=2))


def test_cached_parallel_at_least_twice_serial_throughput(result):
    """ISSUE acceptance: >= 2x throughput on the repeated workload."""
    assert result["speedup_sim"] >= 2.0


def test_decode_cache_hit_rate_at_least_80_percent(result):
    """ISSUE acceptance: >= 80% decoded-page cache hit rate."""
    assert result["cached_parallel"]["decode_cache_hit_rate"] >= 0.80


def test_wall_clock_speedup_on_multicore_hosts(result):
    """ISSUE acceptance: >= 2.5x wall-clock batch speedup at 4 process
    workers.  Only a host with >= 4 usable cores can demonstrate it;
    smaller runners record the number and skip the assertion."""
    cores = result["wall_clock"]["cores"]
    if cores < WORKERS:
        pytest.skip(
            f"host exposes {cores} usable core(s); wall-clock scaling "
            f"needs >= {WORKERS}"
        )
    assert result["wall_clock"]["speedup_wall"] >= WALL_SPEEDUP_FLOOR


def test_json_artifact_written(result):
    path = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    data = json.loads(path.read_text())
    assert data["speedup_sim"] == result["speedup_sim"]
    assert {
        "serial", "cached_parallel", "scaling_efficiency", "wall_clock"
    } <= set(data)
