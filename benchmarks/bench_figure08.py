"""Figure 8 -- method comparison on UNIFORM, varying dimension.

Paper claims reproduced here:

* for low dimensions the X-tree and the IQ-tree are close, and both
  beat the VA-file and the sequential scan;
* with growing dimension the X-tree degenerates and falls behind the
  sequential scan (the paper sees the crossover around d = 12);
* the IQ-tree and the VA-file stay flat and fast at every dimension.

At this reduced scale the paper's ~3x IQ-vs-VA gap at d = 16 compresses
to near parity (uniform 16-d selectivity needs the full 500k-point
split depth -- see EXPERIMENTS.md); the assertion is bounded
accordingly.
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.experiments import figure8


DIMS = (4, 8, 12, 16)


@pytest.fixture(scope="module")
def result():
    return figure8(n=scaled(30_000), dims=DIMS, n_queries=8)


def test_figure8(benchmark, result):
    """Regenerate the Figure 8 table (timing a reduced experiment)."""
    benchmark.pedantic(
        lambda: figure8(n=scaled(4_000), dims=(8,), n_queries=3),
        rounds=1,
        iterations=1,
    )
    print_figure(result)


def test_xtree_close_to_iqtree_at_low_dimension(result):
    iq = result.series["iq-tree"][0]
    xt = result.series["x-tree"][0]
    assert xt <= 3.0 * iq


def test_low_dimension_trees_beat_scan_and_vafile(result):
    for name in ("iq-tree", "x-tree"):
        assert result.series[name][0] < result.series["scan"][0]
        assert result.series[name][0] < result.series["va-file"][0] * 1.5


def test_xtree_degenerates_past_scan(result):
    xt = result.series["x-tree"]
    scan = result.series["scan"]
    assert xt[-1] > scan[-1]  # d=16: index worse than the scan
    assert xt[-1] > 10 * xt[0]  # and exploding with dimension


def test_compression_methods_stay_flat(result):
    for name in ("iq-tree", "va-file"):
        series = result.series[name]
        assert series[-1] < 6 * series[0]


def test_iqtree_competitive_with_vafile_everywhere(result):
    for iq, va, d in zip(
        result.series["iq-tree"], result.series["va-file"], DIMS
    ):
        assert iq <= va * 1.5, f"iq-tree not competitive at d={d}"


def test_iqtree_beats_vafile_at_moderate_dimension(result):
    # d = 8 and 12: the tree's selectivity is decisive.
    assert result.series["iq-tree"][1] < result.series["va-file"][1]


def test_iqtree_beats_scan_everywhere(result):
    for iq, scan in zip(result.series["iq-tree"], result.series["scan"]):
        assert iq < scan
