"""Extension bench -- query latency under an online write mix.

A fixed-resolution tree serves kNN queries while absorbing bursts of
journaled inserts and deletes (:class:`~repro.storage.journal.
DurableTree`), in two configurations over the *same* deterministic
write/query script:

* **maintenance off** -- writes accumulate; pages drift away from the
  resolution the optimizer would choose (inserts force coarser grids,
  deletes strand near-empty pages) and queries pay the drifted cost.
* **maintenance on** -- a :class:`~repro.core.maintenance.
  MaintenanceManager` sweep runs after every write burst,
  re-quantizing exactly the drifted pages (in place where only the
  resolution changed).

Per-query *simulated* service time is the engine's I/O delta for a
one-query batch, so sweep I/O (which happens between queries) is never
charged to a query.  The acceptance gate is the ISSUE's: maintenance
must not blow up tail latency -- ``p99(on) < 2 x p99(off)`` -- while
the answers of both configurations stay bit-identical (re-quantization
never changes answers, and both trees hold the same live points).

Results land in ``BENCH_writes.json`` at the repo root.  Run directly
with ``--smoke`` for the CI-sized run.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.core.maintenance import MaintenanceManager
from repro.core.tree import IQTree
from repro.datasets import gaussian_clusters, make_workload
from repro.engine import QueryEngine
from repro.experiments.harness import experiment_disk
from repro.storage.journal import DurableTree

DIM = 8
K = 5
FIXED_BITS = 6
ROUNDS = 6
WRITES_PER_ROUND = 25
QUERIES_PER_ROUND = 12


def build_fixture(n_points: int, tmp: Path, name: str):
    data, queries = make_workload(
        gaussian_clusters,
        n=n_points,
        n_queries=ROUNDS * QUERIES_PER_ROUND,
        seed=11,
        dim=DIM,
        n_clusters=6,
        spread=0.05,
    )
    tree = IQTree.build(
        data, disk=experiment_disk(), optimize=False, fixed_bits=FIXED_BITS
    )
    store = DurableTree.create(tree, tmp / f"{name}.iq", fsync=False)
    return store, queries


def write_script(dim: int, base: int, n_rounds: int, per_round: int):
    """Deterministic per-round insert/delete ops (same for every config)."""
    rng = np.random.default_rng(23)
    created = 0
    live: list[int] = []
    rounds = []
    for _ in range(n_rounds):
        ops = []
        for i in range(per_round):
            if live and i % 5 == 4:
                ops.append(
                    ("delete", live.pop(int(rng.integers(len(live)))))
                )
            else:
                point = (
                    rng.random(dim).astype(np.float32).astype(np.float64)
                )
                ops.append(("insert", point))
                live.append(base + created)
                created += 1
        rounds.append(ops)
    return rounds


def run_config(store, queries, script, maintenance: bool):
    """Apply the write/query script; return per-query service times."""
    tree = store.tree
    engine = QueryEngine(tree)
    manager = (
        MaintenanceManager(tree, baseline="none") if maintenance else None
    )
    services = []
    answers = []
    sweeps = requantized = restructured = 0
    q = 0
    for ops in script:
        for op in ops:
            if op[0] == "insert":
                store.insert(op[1])
            else:
                store.delete(op[1])
        if manager is not None:
            report = manager.maybe_sweep()
            if not report.noop:
                sweeps += 1
                requantized += report.requantized
                restructured += report.restructured
        for _ in range(QUERIES_PER_ROUND):
            result = engine.knn_batch(queries[q : q + 1], k=K)
            services.append(float(result.stats.io.elapsed))
            answers.append(result[0])
            q += 1
    store.checkpoint()
    engine.close()
    return {
        "services": np.asarray(services),
        "answers": answers,
        "sweeps": sweeps,
        "requantized": requantized,
        "restructured": restructured,
    }


def latency_summary(services: np.ndarray) -> dict:
    return {
        "p50_ms": round(float(np.percentile(services, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(services, 99)) * 1e3, 3),
        "mean_ms": round(float(services.mean()) * 1e3, 3),
        "max_ms": round(float(services.max()) * 1e3, 3),
    }


def run_bench(n_points: int = scaled(8_000), tmp: Path | None = None) -> dict:
    import tempfile

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        runs = {}
        for label, maintenance in (("off", False), ("on", True)):
            store, queries = build_fixture(n_points, tmp, label)
            script = write_script(
                DIM, store.tree.n_points, ROUNDS, WRITES_PER_ROUND
            )
            runs[label] = run_config(store, queries, script, maintenance)

    # Same live data in both configs: answers must be bit-identical.
    for off, on in zip(runs["off"]["answers"], runs["on"]["answers"]):
        assert (off.ids == on.ids).all()
        assert (off.distances == on.distances).all()

    p99_off = latency_summary(runs["off"]["services"])["p99_ms"]
    p99_on = latency_summary(runs["on"]["services"])["p99_ms"]
    out = {
        "fixture": {
            "n_points": n_points,
            "dim": DIM,
            "k": K,
            "fixed_bits": FIXED_BITS,
            "rounds": ROUNDS,
            "writes_per_round": WRITES_PER_ROUND,
            "queries_per_round": QUERIES_PER_ROUND,
        },
        "maintenance_off": latency_summary(runs["off"]["services"]),
        "maintenance_on": latency_summary(runs["on"]["services"]),
        "sweeps": runs["on"]["sweeps"],
        "pages_requantized": runs["on"]["requantized"],
        "pages_restructured": runs["on"]["restructured"],
        "p99_ratio_on_vs_off": round(p99_on / max(p99_off, 1e-12), 3),
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_writes.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    return out


@pytest.fixture(scope="module")
def result() -> dict:
    return run_bench()


def test_write_mix(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print()
    print(json.dumps(result, indent=2))


def test_maintenance_actually_ran(result):
    assert result["sweeps"] >= 1
    assert result["pages_requantized"] + result["pages_restructured"] >= 1


def test_p99_bounded(result):
    """ISSUE acceptance: background maintenance may not blow up tail
    latency -- p99 with sweeps stays under 2x the sweep-free p99."""
    assert result["p99_ratio_on_vs_off"] < 2.0


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Online write-mix latency benchmark"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run (small fixture, same assertions)",
    )
    args = parser.parse_args()

    out = run_bench(n_points=2_000 if args.smoke else scaled(8_000))
    print(json.dumps(out, indent=2))
    assert out["p99_ratio_on_vs_off"] < 2.0, (
        "maintenance more than doubled tail latency"
    )
    assert out["sweeps"] >= 1
    print(
        f"ok: p99 ms -- maintenance off "
        f"{out['maintenance_off']['p99_ms']}, on "
        f"{out['maintenance_on']['p99_ms']} "
        f"(ratio {out['p99_ratio_on_vs_off']}); "
        f"{out['sweeps']} sweeps, "
        f"{out['pages_requantized']} pages requantized in place, "
        f"{out['pages_restructured']} restructured"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
