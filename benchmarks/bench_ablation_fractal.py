"""Ablation -- cost model with vs without the fractal-dim correction.

On correlated data the uniform/independence model mis-estimates both
refinement probabilities and page-access counts.  This bench builds the
IQ-tree on low-fractal-dimension data twice -- once with the estimated
D_F, once forced to the uniform model (D_F = d) -- and checks that the
correction never hurts measured query time.
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.core.tree import IQTree
from repro.datasets import make_workload, weather_like
from repro.experiments.harness import (
    FigureResult,
    experiment_disk,
    run_nn_workload,
)


@pytest.fixture(scope="module")
def result():
    data, queries = make_workload(
        weather_like, n=scaled(40_000), n_queries=10, seed=0
    )
    fig = FigureResult(
        "ablation-fractal",
        "Cost model with vs without fractal-dimension correction "
        "(WEATHER analogue)",
        "variant",
        ["measured"],
    )
    corrected = IQTree.build(data, disk=experiment_disk())
    uniform_model = IQTree.build(
        data, disk=experiment_disk(), fractal_dim=None
    )
    fig.add(
        "fractal-corrected",
        "measured",
        run_nn_workload(corrected, queries),
    )
    fig.add(
        "uniform-model",
        "measured",
        run_nn_workload(uniform_model, queries),
    )
    fig.details["estimated_df"] = {
        "measured": corrected.cost_model.fractal_dim
    }
    return fig


def test_ablation_fractal(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)
    print(
        "estimated fractal dimension:",
        f"{result.details['estimated_df']['measured']:.2f}",
    )


def test_estimator_sees_low_dimension(result):
    assert result.details["estimated_df"]["measured"] < 5.0


def test_correction_does_not_hurt(result):
    corrected = result.series["fractal-corrected"][0]
    uniform_model = result.series["uniform-model"][0]
    assert corrected <= uniform_model * 1.15
