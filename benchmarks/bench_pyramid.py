"""Extension bench -- the Pyramid Technique as a fifth method.

The paper's related-work section describes the Pyramid Technique as a
transformation-based alternative that "accelerates hypercube range
queries".  This bench places it next to the IQ-tree on both workload
types: it should be strong on window (hypercube) queries -- its home
turf -- while the IQ-tree wins nearest-neighbor queries, where the
pyramid's expanding-window search over-fetches.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_figure, scaled
from repro.baselines.pyramid import PyramidTechnique
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.experiments.harness import (
    FigureResult,
    experiment_disk,
    run_nn_workload,
)


@pytest.fixture(scope="module")
def setup():
    data, queries = make_workload(
        uniform, n=scaled(20_000), n_queries=8, seed=0, dim=8
    )
    tree = IQTree.build(data, disk=experiment_disk())
    pyramid = PyramidTechnique(data, disk=experiment_disk())
    return tree, pyramid, queries


@pytest.fixture(scope="module")
def result(setup):
    tree, pyramid, queries = setup
    fig = FigureResult(
        "extension-pyramid",
        "IQ-tree vs Pyramid Technique (8-d UNIFORM)",
        "workload",
        ["nn", "window"],
    )

    class _Stats:
        def __init__(self, mean_time):
            self.mean_time = mean_time

    fig.add("iq-tree", "nn", run_nn_workload(tree, queries))
    fig.add("pyramid", "nn", run_nn_workload(pyramid, queries))

    half = 0.12  # hypercube windows with moderate selectivity
    iq_times, py_times = [], []
    for q in queries:
        lower = np.clip(q - half, 0, 1)
        upper = np.clip(q + half, 0, 1)
        pyramid.disk.park()
        py_times.append(pyramid.window_query(lower, upper).io.elapsed)
        # The IQ-tree answers a window query as a max-metric range
        # query centered on the window.
        tree.disk.park()
        center = 0.5 * (lower + upper)
        iq_max = IQTree  # noqa: F841  (clarity only)
        res = tree.range_query(center, float(np.max(upper - center)))
        iq_times.append(res.io.elapsed)
    fig.add("iq-tree", "window", _Stats(float(np.mean(iq_times))))
    fig.add("pyramid", "window", _Stats(float(np.mean(py_times))))
    return fig


def test_pyramid(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_pyramid_answers_agree(setup):
    tree, pyramid, queries = setup
    for q in queries[:3]:
        a = tree.nearest(q, k=3)
        b = pyramid.nearest(q, k=3)
        assert np.allclose(a.distances, b.distances)


def test_iqtree_wins_nn(result):
    assert result.series["iq-tree"][0] < result.series["pyramid"][0]


def test_windows_are_the_pyramids_strength(result):
    # Hypercube windows are the pyramid's design target: they must be
    # far cheaper than its expanding-window NN mode, and within an
    # order of magnitude of the IQ-tree (whose MBR directory is simply
    # a better filter at this moderate dimensionality).
    py_nn, py_window = result.series["pyramid"]
    assert py_window < py_nn / 2
    assert py_window < result.series["iq-tree"][1] * 10
