"""Figure 9 -- UNIFORM, 16 dimensions, varying database size.

Paper claims reproduced here:

* the compression methods (IQ-tree, VA-file) beat the X-tree by an
  order of magnitude and the scan by a large factor at every N;
* the X-tree's and the scan's costs grow steeply with N while the
  compression methods grow slowly.

The paper's IQ-over-VA factor (1.6x-3x, growing with N) requires the
full 500k-point split depth before uniform 16-d pruning kicks in; at
this scale the two run near parity and the assertion only bounds the
gap (see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.experiments import figure9


NS = tuple(scaled(n) for n in (10_000, 20_000, 40_000, 80_000))


@pytest.fixture(scope="module")
def result():
    return figure9(ns=NS, n_queries=8)


def test_figure9(benchmark, result):
    benchmark.pedantic(
        lambda: figure9(ns=(scaled(4_000),), n_queries=3),
        rounds=1,
        iterations=1,
    )
    print_figure(result)


def test_compression_methods_dominate(result):
    for i, n in enumerate(NS):
        iq = result.series["iq-tree"][i]
        va = result.series["va-file"][i]
        assert iq < result.series["x-tree"][i] / 5, f"iq vs x-tree at {n}"
        assert va < result.series["x-tree"][i] / 5, f"va vs x-tree at {n}"
        assert iq < result.series["scan"][i], f"iq vs scan at {n}"


def test_xtree_cost_grows_steeply(result):
    xt = result.series["x-tree"]
    assert xt[-1] > 3 * xt[0]


def test_scan_cost_grows_linearly(result):
    scan = result.series["scan"]
    expected = NS[-1] / NS[0]
    assert scan[-1] / scan[0] == pytest.approx(expected, rel=0.35)


def test_iqtree_near_parity_with_vafile(result):
    for iq, va in zip(result.series["iq-tree"], result.series["va-file"]):
        assert iq <= va * 1.5
