"""Figure 12 -- WEATHER analogue (highly clustered, low D_F), varying N.

Paper claims reproduced here:

* on highly clustered, low-fractal-dimension data the hierarchical
  techniques (IQ-tree, X-tree) clearly beat the VA-file, with the
  factor growing as N grows (the paper reaches 11.5x);
* the sequential scan is far above everything.
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.experiments import figure12


NS = tuple(scaled(n) for n in (20_000, 40_000, 80_000, 120_000))


@pytest.fixture(scope="module")
def result():
    return figure12(ns=NS, n_queries=8)


def test_figure12(benchmark, result):
    benchmark.pedantic(
        lambda: figure12(ns=(scaled(4_000),), n_queries=3),
        rounds=1,
        iterations=1,
    )
    print_figure(result)


def test_hierarchical_methods_beat_vafile_at_scale(result):
    va = result.series["va-file"][-1]
    assert result.series["iq-tree"][-1] < va
    assert result.series["x-tree"][-1] < va


def test_vafile_gap_grows_with_n(result):
    """The VA-file must scan everything; the trees stay selective."""
    iq = result.series["iq-tree"]
    va = result.series["va-file"]
    assert va[-1] / iq[-1] > va[0] / iq[0]


def test_scan_far_above_everything(result):
    scan = result.series["scan"][-1]
    for name in ("iq-tree", "x-tree", "va-file"):
        assert result.series[name][-1] < scan


def test_iqtree_growth_sublinear(result):
    iq = result.series["iq-tree"]
    n_ratio = NS[-1] / NS[0]
    assert iq[-1] / iq[0] < n_ratio / 1.5
