"""Extension bench -- query metrics: Euclidean vs maximum metric.

The paper derives its intersection and Minkowski formulas exactly for
the maximum metric and approximates for Euclidean.  This bench runs the
same workload under both metrics and checks that the IQ-tree's relative
standing (vs the tuned VA-file and the scan) holds for both -- i.e.
nothing about the reproduction hinges on the Euclidean approximations.
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.baselines.scan import SequentialScan
from repro.core.tree import IQTree
from repro.datasets import make_workload, gaussian_clusters
from repro.experiments.harness import (
    FigureResult,
    best_vafile,
    experiment_disk,
    run_nn_workload,
)

METRICS = ("euclidean", "maximum")


@pytest.fixture(scope="module")
def result():
    data, queries = make_workload(
        gaussian_clusters,
        n=scaled(20_000),
        n_queries=8,
        seed=0,
        dim=12,
        n_clusters=15,
        spread=0.05,
    )
    fig = FigureResult(
        "extension-metrics",
        "Method comparison under both query metrics "
        "(clustered 12-d)",
        "metric",
        list(METRICS),
    )
    for metric in METRICS:
        tree = IQTree.build(data, disk=experiment_disk(), metric=metric)
        fig.add("iq-tree", metric, run_nn_workload(tree, queries))
        _va, va_stats, _sweep = best_vafile(
            data, queries, metric=metric, disk_factory=experiment_disk
        )
        fig.add("va-file", metric, va_stats)
        scan = SequentialScan(data, disk=experiment_disk(), metric=metric)
        fig.add("scan", metric, run_nn_workload(scan, queries))
    return fig


def test_metrics(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


@pytest.mark.parametrize("idx,metric", list(enumerate(METRICS)))
def test_iqtree_wins_under_both_metrics(result, idx, metric):
    iq = result.series["iq-tree"][idx]
    assert iq < result.series["scan"][idx], metric
    assert iq <= result.series["va-file"][idx] * 1.2, metric
