"""Extension bench -- batched query execution vs a sequential loop.

The paper measures one query at a time; a server sees batches.  This
bench runs the same kNN workload twice on identical trees and disks:
once as a sequential loop over :meth:`IQTree.nearest` (head parked
between queries, the paper's measurement discipline) and once through
the :class:`~repro.engine.QueryEngine`, which scans the directory once,
fetches the union of candidate pages in one Section 2 batched transfer,
and shares page decodes and third-level refinements across the batch.

The expected profile, asserted below: the batched engine needs *fewer
seeks* and *less total simulated I/O time* at every batch size, and its
advantage grows with the batch (more shared pages per transfer).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_figure, scaled
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.experiments.harness import (
    FigureResult,
    WorkloadStats,
    experiment_disk,
    run_nn_workload,
)

#: queries per batch
BATCH_SIZES = (4, 16, 64)
K = 5


def _batched_stats(data: np.ndarray, queries: np.ndarray) -> WorkloadStats:
    """Run one batch through the engine; report per-query averages."""
    tree = IQTree.build(data, disk=experiment_disk())
    result = tree.query_engine().knn_batch(queries, k=K)
    io = result.stats.io
    q = queries.shape[0]
    return WorkloadStats(
        name="batched",
        times=np.full(q, io.elapsed / q),
        seeks=np.full(q, io.seeks / q),
        blocks=np.full(q, io.blocks_read / q),
        refinements=np.full(q, result.stats.refinements / q),
    )


@pytest.fixture(scope="module")
def result():
    data, queries = make_workload(
        uniform, n=scaled(15_000), n_queries=max(BATCH_SIZES), seed=3, dim=10
    )
    fig = FigureResult(
        "extension-batch-queries",
        f"Per-query time vs batch size, {K}-NN (10-d UNIFORM)",
        "batch size",
        list(BATCH_SIZES),
    )
    for size in BATCH_SIZES:
        batch = queries[:size]
        tree = IQTree.build(data, disk=experiment_disk())
        fig.add(
            "sequential",
            size,
            run_nn_workload(tree, batch, k=K, name="sequential"),
        )
        fig.add("batched", size, _batched_stats(data, batch))
    return fig


def test_batch_queries(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_batched_fewer_seeks_and_less_io(result):
    """The ISSUE's acceptance criterion, asserted per batch size."""
    for size in BATCH_SIZES:
        seq = result.details["sequential"][size]
        bat = result.details["batched"][size]
        assert bat.seeks.sum() < seq.seeks.sum()
        assert bat.times.sum() < seq.times.sum()


def test_batched_advantage_grows_with_batch_size(result):
    speedups = result.ratio("sequential", "batched")
    assert speedups[-1] > speedups[0]


def test_batched_per_query_time_decreases(result):
    batched = result.series["batched"]
    for smaller, larger in zip(batched, batched[1:]):
        assert larger <= smaller * 1.05
