"""Extension bench -- persistence: save/load wall time and container size.

The v2 container doubles the coordinate payload (float64 vs the lossy
float32 of v1) but replaces the JSON-list partition index with packed
binary arrays, so total size stays comparable; this bench pins that
trade-off with real numbers and times the full save -> fsck -> load
cycle host-side (wall clock, not simulated disk time -- persistence is
the one layer that does real I/O).

Runs in smoke mode in CI (``IQ_REPRO_SCALE=0.1``); asserts are
scale-independent: the round-trip is bit-exact, fsck passes, and v2
stays within 2.5x of the v1 container it replaces.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.core.tree import IQTree
from repro.datasets import uniform
from repro.experiments.harness import experiment_disk
from repro.storage.persistence import (
    load_iqtree,
    save_iqtree,
    verify_container,
    write_legacy_v1,
)

DIM = 10


@pytest.fixture(scope="module")
def tree():
    data = uniform(scaled(20_000), DIM, seed=7)
    return IQTree.build(data, disk=experiment_disk())


@pytest.fixture(scope="module")
def container(tree, tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("persistence") / "index.iqt"
    save_iqtree(tree, path)
    return path


def test_save_wall_time(benchmark, tree, tmp_path):
    path = tmp_path / "save.iqt"
    benchmark.pedantic(
        save_iqtree, args=(tree, path), rounds=3, iterations=1
    )


def test_load_wall_time(benchmark, container):
    loaded = benchmark.pedantic(
        load_iqtree, args=(container,), rounds=3, iterations=1
    )
    assert loaded.n_points > 0


def test_fsck_wall_time(benchmark, container):
    report = benchmark.pedantic(
        verify_container, args=(container,), rounds=3, iterations=1
    )
    assert report.ok


def test_container_size_vs_v1(tree, container, tmp_path):
    v1 = tmp_path / "legacy.iqt"
    write_legacy_v1(tree, v1)
    v1_size = v1.stat().st_size
    v2_size = container.stat().st_size
    payload = tree.n_points * tree.dim * 8
    lines = [
        "persistence containers "
        f"({tree.n_points} points, {tree.dim}-d):",
        f"  v1 (float32, JSON index)   {v1_size:>12,} bytes",
        f"  v2 (float64, CRC, binary)  {v2_size:>12,} bytes "
        f"({v2_size / v1_size:.2f}x v1)",
        f"  v2 payload share           {payload / v2_size:>11.1%}",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    out_dir = Path(__file__).resolve().parent.parent / "bench_results"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "extension-persistence.txt").write_text(text + "\n")
    # Full-precision coordinates cost at most the payload doubling.
    assert v2_size < 2.5 * v1_size


def test_round_trip_bit_exact_and_fast_enough(tree, container):
    start = time.perf_counter()
    loaded = load_iqtree(container, verify=True)
    elapsed = time.perf_counter() - start
    assert loaded.points.tobytes() == tree.points.tobytes()
    q = np.full(DIM, 0.5)
    assert np.array_equal(
        loaded.nearest(q, k=5).ids, tree.nearest(q, k=5).ids
    )
    # verify=True re-serializes the whole tree; even so a reload must
    # stay interactive at bench scale.
    assert elapsed < 60.0
