"""Extension bench -- query quality under dynamic churn (Section 6).

The paper sketches dynamic maintenance but does not evaluate it.  This
bench subjects an IQ-tree to a mixed insert/delete workload, measures
query time before churn, after churn (with the local split-vs-coarsen
decisions), and after a global :meth:`reoptimize`, and checks that

* local maintenance keeps queries exact and within a modest factor of
  the freshly-built tree, and
* reoptimize recovers (nearly) fresh-build performance.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_figure, scaled
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.experiments.harness import (
    FigureResult,
    experiment_disk,
    run_nn_workload,
)


@pytest.fixture(scope="module")
def result():
    rng = np.random.default_rng(7)
    n = scaled(15_000)
    data, queries = make_workload(
        uniform, n=n, n_queries=8, seed=0, dim=10
    )
    fig = FigureResult(
        "extension-maintenance",
        "Query time under dynamic churn (10-d UNIFORM)",
        "phase",
        ["fresh", "after-churn", "after-reoptimize"],
    )
    tree = IQTree.build(data, disk=experiment_disk())
    fig.add("iq-tree", "fresh", run_nn_workload(tree, queries))

    # Churn: 20% inserts (half clustered in a hotspot), 10% deletes.
    hotspot = np.clip(
        0.25 + rng.normal(0, 0.02, size=(n // 10, 10)), 0, 1
    )
    for point in hotspot:
        tree.insert(point)
    for point in rng.random((n // 10, 10)):
        tree.insert(point)
    for point_id in rng.choice(n, size=n // 10, replace=False):
        tree.delete(int(point_id))
    fig.add("iq-tree", "after-churn", run_nn_workload(tree, queries))

    tree.reoptimize()
    fig.add(
        "iq-tree", "after-reoptimize", run_nn_workload(tree, queries)
    )
    return fig


def test_maintenance(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_churned_tree_stays_usable(result):
    fresh, churned, _reopt = result.series["iq-tree"]
    assert churned < fresh * 2.5


def test_reoptimize_recovers(result):
    # Local maintenance already keeps the tree healthy at this churn
    # level, so "recovery" means staying in the same ballpark rather
    # than a strict improvement.
    _fresh, churned, reopt = result.series["iq-tree"]
    assert reopt <= churned * 1.25


def test_reoptimized_near_fresh(result):
    fresh, _churned, reopt = result.series["iq-tree"]
    # The data set changed (hotspot added), so exact equality is not
    # expected; the rebuilt tree must be in the fresh tree's ballpark.
    assert reopt < fresh * 1.8
