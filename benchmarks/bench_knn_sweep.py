"""Extension bench -- k-nearest-neighbor queries, sweeping k.

The paper's algorithms and cost model extend to k-NN (footnotes in
Sections 2.2 and 3.4); this bench verifies the extension end-to-end:
cost grows mildly with k for the compression methods (more refinements,
slightly weaker pruning) while the scan is flat by construction.
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.baselines.scan import SequentialScan
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.experiments.harness import (
    FigureResult,
    best_vafile,
    experiment_disk,
    run_nn_workload,
)

KS = (1, 5, 10, 20)


@pytest.fixture(scope="module")
def result():
    data, queries = make_workload(
        uniform, n=scaled(20_000), n_queries=8, seed=0, dim=12
    )
    fig = FigureResult(
        "extension-knn",
        "k-NN query cost, sweeping k (12-d UNIFORM)",
        "k",
        list(KS),
    )
    tree = IQTree.build(data, disk=experiment_disk())
    scan = SequentialScan(data, disk=experiment_disk())
    for k in KS:
        fig.add("iq-tree", k, run_nn_workload(tree, queries, k=k))
        _va, va_stats, _sweep = best_vafile(
            data, queries, k=k, disk_factory=experiment_disk
        )
        fig.add("va-file", k, va_stats)
        fig.add("scan", k, run_nn_workload(scan, queries, k=k))
    return fig


def test_knn_sweep(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_scan_flat_in_k(result):
    scan = result.series["scan"]
    assert scan[-1] == pytest.approx(scan[0], rel=1e-6)


def test_iqtree_cost_grows_sublinearly_in_k(result):
    iq = result.series["iq-tree"]
    assert iq[-1] >= iq[0]  # more neighbors cannot be cheaper
    k_ratio = KS[-1] / KS[0]
    assert iq[-1] / iq[0] < k_ratio  # ...but sublinearly in k


def test_iqtree_beats_scan_at_moderate_k(result):
    # Each refinement costs a near-random access, so for very large k
    # the compression methods converge toward the scan; up to k = 10
    # they must stay clearly below it.
    for iq, scan, k in zip(
        result.series["iq-tree"], result.series["scan"], KS
    ):
        if k <= 10:
            assert iq < scan, f"iq-tree above scan at k={k}"
