"""Ablation -- optimizer-chosen quantization vs fixed global levels.

DESIGN.md calls out the optimal-quantization algorithm as the paper's
core design choice.  This bench compares the optimizer's per-page
choice against IQ-trees forced to a constant g in {1, 2, 4, 8, 16, 32}:
the optimized tree's *modeled* cost is minimal by construction
(Theorem 1), and its *measured* cost must be competitive with the best
fixed level -- the property the VA-file (which needs manual tuning)
lacks.
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.core.tree import IQTree
from repro.datasets import gaussian_clusters, make_workload
from repro.experiments.harness import (
    FigureResult,
    experiment_disk,
    run_nn_workload,
)

FIXED_LEVELS = (1, 2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def result():
    data, queries = make_workload(
        gaussian_clusters,
        n=scaled(20_000),
        n_queries=8,
        seed=0,
        dim=12,
        n_clusters=15,
        spread=0.04,
    )
    fig = FigureResult(
        "ablation-quantization",
        "Optimizer-chosen vs fixed quantization (clustered, 12 dims)",
        "variant",
        ["measured"],
    )
    tree = IQTree.build(data, disk=experiment_disk())
    fig.add("optimized", "measured", run_nn_workload(tree, queries))
    for bits in FIXED_LEVELS:
        fixed = IQTree.build(
            data, disk=experiment_disk(), optimize=False, fixed_bits=bits
        )
        fig.add(
            f"fixed-{bits}b",
            "measured",
            run_nn_workload(fixed, queries),
        )
    return fig


def test_ablation_quantization(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_optimizer_competitive_with_best_fixed_level(result):
    optimized = result.series["optimized"][0]
    best_fixed = min(
        result.series[f"fixed-{b}b"][0] for b in FIXED_LEVELS
    )
    assert optimized <= best_fixed * 1.25


def test_optimizer_beats_bad_fixed_levels(result):
    optimized = result.series["optimized"][0]
    worst_fixed = max(
        result.series[f"fixed-{b}b"][0] for b in FIXED_LEVELS
    )
    assert optimized < worst_fixed / 1.5
