"""Observability overhead -- disabled instrumentation must be ~free.

The telemetry hooks threaded through the storage and engine layers all
guard on one flag (``REGISTRY.enabled``) or one list-truthiness check
(the ambient tracing span).  This bench measures what those guards cost
when nobody is observing: the same kNN batch workload is timed once
with the instrumented code as shipped (registry disabled) and once with
the hottest hooks monkeypatched back to pristine, hook-free versions.

The relative overhead must stay under ``IQ_OBS_OVERHEAD_THRESHOLD``
(default 0.05, i.e. 5%).  CI runs this in smoke mode with a laxer
threshold because shared runners time noisily; locally the default
threshold holds with plenty of margin.  Min-of-N timing is used on both
sides to suppress scheduler noise.

For scale, the enabled-registry cost is also reported (not asserted):
that is the price of actually collecting metrics, not of shipping the
hooks.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import scaled
from repro import obs
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.engine.engine import QueryEngine
from repro.experiments.harness import experiment_disk
from repro.obs.tracing import _NULL_SPAN
from repro.storage.cache import BufferPool
from repro.storage.disk import SimulatedDisk

REPS = 5
BATCHES = 6
BATCH_SIZE = 16
K = 5


def _threshold() -> float:
    return float(os.environ.get("IQ_OBS_OVERHEAD_THRESHOLD", "0.05"))


@pytest.fixture(scope="module")
def workload():
    data, queries = make_workload(
        uniform,
        n=scaled(8_000),
        n_queries=BATCHES * BATCH_SIZE,
        seed=11,
        dim=8,
    )
    tree = IQTree.build(data, disk=experiment_disk())
    return tree, queries


def _run(tree, queries) -> None:
    engine = QueryEngine(tree, pool=BufferPool(128))
    for i in range(BATCHES):
        batch = queries[i * BATCH_SIZE : (i + 1) * BATCH_SIZE]
        engine.knn_batch(batch, k=K)


def _time(tree, queries) -> float:
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        _run(tree, queries)
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Pristine (hook-free) copies of the hottest instrumented code paths.
# They mirror the shipped implementations minus every observability
# line, giving the "never instrumented" baseline to compare against.
# ----------------------------------------------------------------------
def _pristine_read_blocks(self, start, count, overread=0):
    if count <= 0:
        return
    with self._lock:
        if start != self._head:
            self.stats.add_seek(self.model)
        self.stats.add_transfer(self.model, count, overread=overread)
        self._head = start + count


def _pristine_lookup(self, address):
    i = self._shard_of(address)
    with self._locks[i]:
        hit = address in self._shards[i]
        if hit:
            self._shards[i].move_to_end(address)
    with self._stats_lock:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
    return hit


def _pristine_record(self, hits=0, misses=0):
    with self._stats_lock:
        self.hits += hits
        self.misses += misses


def _pristine_admit(self, address):
    if self.capacity == 0:
        return
    i = self._shard_of(address)
    with self._locks[i]:
        shard = self._shards[i]
        if address in shard:
            shard.move_to_end(address)
            return
        if self._shard_caps[i] == 0:
            return
        if len(shard) >= self._shard_caps[i]:
            shard.popitem(last=False)
        shard[address] = None


def _pristine_span(name, disk=None, **attrs):
    return _NULL_SPAN


def _patch_pristine(monkeypatch) -> None:
    import repro.engine.decode as decode_mod
    import repro.engine.engine as engine_mod
    import repro.engine.sharding as sharding_mod

    monkeypatch.setattr(
        SimulatedDisk, "read_blocks", _pristine_read_blocks
    )
    monkeypatch.setattr(BufferPool, "lookup", _pristine_lookup)
    monkeypatch.setattr(BufferPool, "record", _pristine_record)
    monkeypatch.setattr(BufferPool, "admit", _pristine_admit)
    monkeypatch.setattr(decode_mod, "obs_span", _pristine_span)
    monkeypatch.setattr(engine_mod, "obs_span", _pristine_span)
    monkeypatch.setattr(sharding_mod, "obs_span", _pristine_span)
    monkeypatch.setattr(
        QueryEngine, "_observe_batch", lambda self, *a, **kw: None
    )


def test_disabled_instrumentation_overhead(workload, monkeypatch):
    tree, queries = workload
    assert not obs.registry.enabled

    instrumented = _time(tree, queries)
    with monkeypatch.context() as patched:
        _patch_pristine(patched)
        pristine = _time(tree, queries)

    overhead = (instrumented - pristine) / pristine
    threshold = _threshold()
    print(
        f"\ndisabled-instrumentation overhead: {overhead * 100:+.2f}% "
        f"(pristine {pristine * 1e3:.1f} ms, "
        f"instrumented {instrumented * 1e3:.1f} ms, "
        f"threshold {threshold * 100:.0f}%)"
    )
    assert overhead < threshold, (
        f"disabled instrumentation costs {overhead * 100:.1f}% "
        f"(> {threshold * 100:.0f}%); a hook is missing its "
        "REGISTRY.enabled guard"
    )


def test_disabled_overhead_parallel_sharded(workload, monkeypatch):
    """Tracing-disabled overhead on the full distributed serving path.

    The tentpole threads span capture through the worker kernels
    (``task.trace`` guards), the coordinator stitch points, and the
    router's per-shard-visit spans.  All of it must stay behind the
    same one-check guards as the serial path: this times the identical
    sharded kNN workload (4 shards, 4 process workers) as shipped vs.
    with every observability seam monkeypatched out of the coordinator.
    Worker processes keep their ``task.trace`` branch either way -- the
    flag rides the task object, so the disabled cost there is one
    attribute test per query.
    """
    from repro.engine import ShardRouter

    tree, queries = workload
    assert not obs.registry.enabled
    router = ShardRouter(
        tree, shards=4, workers=4, backend="process", pool=128
    )

    def _run_router() -> None:
        for i in range(BATCHES):
            batch = queries[i * BATCH_SIZE : (i + 1) * BATCH_SIZE]
            router.knn_batch(batch, k=K)

    def _time_router() -> float:
        best = float("inf")
        for _ in range(REPS):
            t0 = time.perf_counter()
            _run_router()
            best = min(best, time.perf_counter() - t0)
        return best

    try:
        instrumented = _time_router()
        with monkeypatch.context() as patched:
            _patch_pristine(patched)
            pristine = _time_router()
    finally:
        router.close()

    overhead = (instrumented - pristine) / pristine
    threshold = _threshold()
    print(
        f"\ndisabled overhead (4 shards, 4 process workers): "
        f"{overhead * 100:+.2f}% "
        f"(pristine {pristine * 1e3:.1f} ms, "
        f"instrumented {instrumented * 1e3:.1f} ms, "
        f"threshold {threshold * 100:.0f}%)"
    )
    assert overhead < threshold, (
        f"disabled tracing costs {overhead * 100:.1f}% on the sharded "
        f"process-backend path (> {threshold * 100:.0f}%); a span or "
        "stitch seam is missing its is-tracing-enabled guard"
    )


def test_enabled_registry_reported_not_asserted(workload):
    """Informational: what turning the registry on actually costs."""
    tree, queries = workload
    disabled = _time(tree, queries)
    obs.registry.reset()
    obs.enable()
    try:
        enabled = _time(tree, queries)
    finally:
        obs.disable()
        obs.registry.reset()
        obs.drift.reset()
    print(
        f"\nenabled-registry cost: "
        f"{(enabled - disabled) / disabled * 100:+.2f}% "
        f"(disabled {disabled * 1e3:.1f} ms, "
        f"enabled {enabled * 1e3:.1f} ms)"
    )
    assert enabled > 0  # smoke: the instrumented run completed


def test_null_span_is_shared_and_free(workload):
    """The ambient span helper allocates nothing when untraced."""
    from repro.obs.tracing import span

    assert span("a") is span("b") is _NULL_SPAN
