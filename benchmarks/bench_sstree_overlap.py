"""Extension bench -- the SS-tree's sphere-overlap problem.

Section 5 of the paper: "Although the SS-tree clearly outperforms the
R*-tree, spheres tend to overlap in high-dimensional spaces."  This
bench measures exactly that: leaf-sphere radii grow with dimension
until every sphere covers most of the space, so the SS-tree's query
cost explodes with dimension just like (in fact faster than) the
X-tree's, while the IQ-tree stays flat.
"""

import pytest

from benchmarks.conftest import print_figure, scaled
from repro.baselines.sstree import SSTree
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.experiments.harness import (
    FigureResult,
    experiment_disk,
    run_nn_workload,
)

DIMS = (4, 8, 16)


@pytest.fixture(scope="module")
def result():
    fig = FigureResult(
        "extension-sstree",
        "SS-tree sphere overlap vs dimension (UNIFORM)",
        "dimension",
        list(DIMS),
    )

    class _Stats:
        def __init__(self, mean_time):
            self.mean_time = mean_time

    for dim in DIMS:
        data, queries = make_workload(
            uniform, n=scaled(15_000), n_queries=6, seed=0, dim=dim
        )
        sstree = SSTree(data, disk=experiment_disk())
        fig.add("ss-tree", dim, run_nn_workload(sstree, queries))
        tree = IQTree.build(data, disk=experiment_disk())
        fig.add("iq-tree", dim, run_nn_workload(tree, queries))
        fig.add(
            "mean leaf radius", dim, _Stats(sstree.mean_leaf_radius())
        )
    return fig


def test_sstree_overlap(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print_figure(result)


def test_sphere_radii_grow_with_dimension(result):
    radii = result.series["mean leaf radius"]
    assert radii[0] < radii[1] < radii[2]


def test_sstree_degenerates_with_dimension(result):
    ss = result.series["ss-tree"]
    assert ss[-1] > 5 * ss[0]


def test_iqtree_beats_sstree_at_high_dimension(result):
    assert result.series["iq-tree"][-1] < result.series["ss-tree"][-1] / 3
