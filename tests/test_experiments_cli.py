"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.cli import FIGURES, main


class TestCLI:
    def test_single_figure_runs(self, capsys):
        code = main(
            ["figure9", "--scale", "0.05", "--queries", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "figure9" in out
        assert "iq-tree" in out

    def test_figure7_runs(self, capsys):
        code = main(["figure7", "--scale", "0.05", "--queries", "2"])
        assert code == 0
        assert "optimized NN-search" in capsys.readouterr().out

    def test_out_file_written(self, tmp_path, capsys):
        out_file = tmp_path / "tables.txt"
        code = main(
            [
                "figure12",
                "--scale",
                "0.02",
                "--queries",
                "2",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert "figure12" in out_file.read_text()

    def test_k_and_seed_flags(self, capsys):
        code = main(
            [
                "figure9",
                "--scale",
                "0.05",
                "--queries",
                "2",
                "--k",
                "3",
                "--seed",
                "5",
            ]
        )
        assert code == 0

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_registry_complete(self):
        assert set(FIGURES) == {
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "figure12",
        }
