"""Small-scale end-to-end runs of the per-figure experiments.

These exercise the full pipeline (generators -> builders -> workloads ->
tables) at tiny scales; the paper-shape assertions live in the
benchmarks, which run at the experiment scale.
"""

import pytest

from repro.experiments import (
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    format_figure,
)


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7(n=1200, dims=(4, 8), n_queries=3)

    def test_all_four_variants_present(self, result):
        assert len(result.series) == 4
        for series in result.series.values():
            assert len(series) == 2
            assert all(t > 0 for t in series)

    def test_optimized_scheduling_never_slower(self, result):
        for quant in ("quantization", "no quantization"):
            opt = result.series[f"optimized NN-search, {quant}"]
            std = result.series[f"standard NN-search, {quant}"]
            assert all(o <= s * 1.10 for o, s in zip(opt, std))


class TestComparisonFigures:
    @pytest.fixture(scope="class")
    def fig8(self):
        return figure8(n=1200, dims=(4, 8), n_queries=3)

    def test_figure8_series(self, fig8):
        assert set(fig8.series) == {"iq-tree", "x-tree", "va-file", "scan"}

    def test_figure8_formats(self, fig8):
        text = format_figure(fig8)
        assert "iq-tree" in text and "dimension" in text

    def test_figure9_runs(self):
        result = figure9(ns=(800, 1600), n_queries=2)
        assert len(result.series["iq-tree"]) == 2

    def test_figure10_excludes_scan(self):
        result = figure10(ns=(800,), n_queries=2)
        assert "scan" not in result.series
        assert set(result.series) == {"iq-tree", "x-tree", "va-file"}

    def test_figure11_runs(self):
        result = figure11(ns=(800,), n_queries=2)
        assert set(result.series) == {
            "iq-tree",
            "x-tree",
            "va-file",
            "scan",
        }

    def test_figure12_runs(self):
        result = figure12(ns=(800,), n_queries=2)
        assert len(result.series["va-file"]) == 1

    def test_scan_time_grows_with_n(self):
        result = figure9(ns=(1000, 4000), n_queries=2)
        scan = result.series["scan"]
        assert scan[1] > scan[0] * 2
