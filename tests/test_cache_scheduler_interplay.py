"""Interplay tests: buffer pool + scheduler + maintenance together.

The subsystems are individually tested elsewhere; these tests exercise
combinations that production use hits constantly: cached repeated
queries with the optimized scheduler, maintenance invalidating layouts
under an attached pool, and persistence of a pooled tree.
"""

import numpy as np
import pytest

from repro.core.tree import IQTree
from repro.datasets import gaussian_clusters, make_workload
from repro.experiments.harness import experiment_disk
from repro.geometry.metrics import EUCLIDEAN
from repro.storage.persistence import load_iqtree, save_iqtree


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        gaussian_clusters,
        n=6_000,
        n_queries=6,
        seed=0,
        dim=8,
        n_clusters=8,
        spread=0.05,
    )


class TestCachedOptimizedQueries:
    def test_warm_optimized_queries_correct(self, workload):
        data, queries = workload
        tree = IQTree.build(data, disk=experiment_disk())
        tree.use_buffer_pool(100_000)
        cold = [tree.nearest(q, k=3) for q in queries]
        warm = [tree.nearest(q, k=3) for q in queries]
        for c, w in zip(cold, warm):
            assert np.array_equal(c.ids, w.ids)
            assert np.allclose(c.distances, w.distances)

    def test_warm_optimized_cheaper_than_cold(self, workload):
        data, queries = workload
        tree = IQTree.build(data, disk=experiment_disk())
        tree.use_buffer_pool(100_000)
        cold_total = warm_total = 0.0
        for q in queries:
            tree.disk.park()
            cold_total += tree.nearest(q).io.elapsed
        for q in queries:
            tree.disk.park()
            warm_total += tree.nearest(q).io.elapsed
        assert warm_total < cold_total * 0.5

    def test_small_pool_partial_benefit(self, workload):
        data, queries = workload
        tree = IQTree.build(data, disk=experiment_disk())
        pool = tree.use_buffer_pool(8)  # just the directory, roughly
        for q in queries:
            tree.disk.park()
            tree.nearest(q)
        assert 0.0 < pool.hit_rate < 1.0


class TestMaintenanceWithPool:
    def test_inserts_keep_answers_correct(self, workload, rng):
        data, queries = workload
        tree = IQTree.build(data, disk=experiment_disk())
        tree.use_buffer_pool(50_000)
        tree.nearest(queries[0])  # warm something
        new_points = rng.random((50, 8))
        tree.insert_many(new_points)
        q = queries[1]
        res = tree.nearest(q, k=4)
        expected = np.sort(EUCLIDEAN.distances(q, tree.points))[:4]
        assert np.allclose(res.distances, expected)

    def test_delete_then_query_with_pool(self, workload):
        data, queries = workload
        tree = IQTree.build(data, disk=experiment_disk())
        tree.use_buffer_pool(50_000)
        victim = int(tree.nearest(queries[0], k=1).ids[0])
        tree.delete(victim)
        res = tree.nearest(queries[0], k=3)
        assert victim not in res.ids


class TestReplaceBlockInvalidation:
    def _cached_file(self):
        from repro.storage.blockfile import BlockFile
        from repro.storage.cache import BufferPool, CachedBlockFile
        from repro.storage.disk import DiskModel, SimulatedDisk

        disk = SimulatedDisk(
            DiskModel(t_seek=0.01, t_xfer=0.001, block_size=64)
        )
        f = BlockFile(disk)
        for i in range(8):
            f.append_block(bytes([i]) * 4)
        f.seal()
        return CachedBlockFile(f, BufferPool(8)), disk

    def test_replace_evicts_resident_block(self):
        # Regression: replace_block used to leave the old address
        # resident in the pool, so the next read of the rewritten block
        # was charged as a hit (free) even though its bytes changed --
        # cache accounting drifting from physical reality.
        cached, disk = self._cached_file()
        cached.read_block(3)
        address = cached._file.extent_start + 3
        assert cached.pool.peek(address)
        cached.replace_block(3, b"new!")
        assert not cached.pool.peek(address)
        before = disk.stats.blocks_read
        assert cached.read_block(3) == b"new!"
        assert disk.stats.blocks_read == before + 1  # a real transfer
        assert cached.pool.misses == 2 and cached.pool.hits == 0

    def test_replace_of_nonresident_block_is_noop_on_pool(self):
        cached, _disk = self._cached_file()
        cached.read_block(1)
        cached.replace_block(5, b"x")  # 5 never admitted
        address = cached._file.extent_start + 1
        assert cached.pool.peek(address)  # unrelated residency kept


class TestPersistenceWithPool:
    def test_pooled_tree_saves_and_reloads(self, workload, tmp_path):
        data, queries = workload
        tree = IQTree.build(data, disk=experiment_disk())
        tree.use_buffer_pool(10_000)
        tree.nearest(queries[0])
        path = tmp_path / "pooled.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        a = tree.nearest(queries[2], k=3)
        b = loaded.nearest(queries[2], k=3)
        assert np.array_equal(a.ids, b.ids)
