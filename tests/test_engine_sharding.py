"""Sharded scatter-gather serving: parity, determinism, failover.

The :class:`~repro.engine.ShardRouter` contract mirrors the worker
pool's (see ``test_engine_parallel.py``) one level up: for a fixed
shard count, results, the merged ``IOStats`` ledger, and every
observability counter are bit-identical for any worker count, either
backend, and under read-path fault injection; across shard counts the
*answers* are identical to the plain single-tree engine.  A dead shard
degrades to lost-page bounds that provably contain the truth instead
of failing the batch.

The bugfix-sweep regressions ride along here because the router is
what exposed them: ``SharedArena`` teardown on abnormal batches,
``BatchStats.merge_shards`` accounting, and the decoded-cache
resident-bytes gauge on repeated attach/detach.
"""

import gc
import glob
import json
import os
import tempfile

import numpy as np
import pytest

from repro.core.tree import IQTree
from repro.engine import QueryEngine, ShardRouter
from repro.engine.page_cache import DecodedPageCache
from repro.engine.sharding import partition_directory
from repro.engine.shm import SharedArena
from repro.engine.stats import BatchStats
from repro.exceptions import QueryDataError, SearchError, StorageError
from repro.obs.instruments import DECODED_CACHE_BYTES, REGISTRY
from repro.obs.tracing import SpanIO, trace_query
from repro.storage.disk import DiskModel, IOStats, SimulatedDisk
from repro.storage.runtime_faults import ReadFaultInjector


def make_disk() -> SimulatedDisk:
    return SimulatedDisk(
        DiskModel(t_seek=0.0025, t_xfer=0.0002, block_size=2048)
    )


@pytest.fixture
def data(rng) -> np.ndarray:
    return rng.random((1500, 8)).astype(np.float32).astype(np.float64)


@pytest.fixture
def queries(rng) -> np.ndarray:
    return rng.random((13, 8))


def build_tree(data) -> IQTree:
    return IQTree.build(data, disk=make_disk(), optimize=False, fixed_bits=5)


@pytest.fixture
def live_registry():
    REGISTRY.reset()
    REGISTRY.enable()
    try:
        yield REGISTRY
    finally:
        REGISTRY.disable()
        REGISTRY.reset()


def ledger_tuple(io: IOStats) -> tuple:
    return (io.seeks, io.blocks_read, io.blocks_overread, io.elapsed)


def arena_files() -> set:
    """Every arena file currently on disk (both candidate directories)."""
    found = set()
    for directory in ("/dev/shm", tempfile.gettempdir()):
        found.update(glob.glob(os.path.join(directory, "iq-arena-*")))
    return found


# Module-level so it pickles to process workers by qualified name.
def _boom_plan_shard(task, shard, ledger):
    raise StorageError("injected plan-phase failure")


class TestPartitionDirectory:
    def test_groups_cover_pages_disjointly_and_evenly(self, data):
        tree = build_tree(data)
        for n_shards in (1, 2, 3, tree.n_pages):
            groups = partition_directory(tree, n_shards)
            sizes = [len(g) for g in groups]
            assert max(sizes) - min(sizes) <= 1
            merged = np.concatenate(groups)
            assert sorted(merged.tolist()) == list(range(tree.n_pages))
            for g in groups:
                assert np.array_equal(g, np.sort(g))  # original order

    def test_clamps_to_page_count(self, data):
        tree = build_tree(data)
        groups = partition_directory(tree, tree.n_pages + 50)
        assert len(groups) == tree.n_pages

    def test_is_deterministic(self, data):
        tree = build_tree(data)
        a = partition_directory(tree, 3)
        b = partition_directory(tree, 3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_rejects_non_positive_shards(self, data):
        with pytest.raises(SearchError):
            partition_directory(build_tree(data), 0)


class TestAnswerParity:
    """Merged answers must equal the single-tree engine's, any S."""

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_knn_answers_match_engine(self, data, queries, n_shards):
        tree = build_tree(data)
        base = tree.query_engine().knn_batch(queries, k=6)
        with ShardRouter(tree, shards=n_shards) as router:
            got = router.knn_batch(queries, k=6)
        assert got.routing is not None
        for b, g in zip(base, got):
            assert np.array_equal(b.ids, g.ids)
            assert np.array_equal(b.distances, g.distances)
            assert b.degraded == g.degraded
        assert got.stats.n_queries == queries.shape[0]

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_range_answers_match_engine(self, data, queries, n_shards):
        tree = build_tree(data)
        base = tree.query_engine().range_batch(queries, 0.35)
        with ShardRouter(tree, shards=n_shards) as router:
            got = router.range_batch(queries, 0.35)
        for b, g in zip(base, got):
            assert np.array_equal(b.ids, g.ids)
            assert np.array_equal(b.distances, g.distances)

    def test_single_shard_ledger_is_bit_identical(self, data, queries):
        """S=1 re-lays the directory in original page order on a fresh
        disk of the same model, so even the I/O ledger must match a
        fresh copy of the source tree exactly."""
        with ShardRouter(build_tree(data), shards=1) as router:
            got = router.knn_batch(queries, k=6)
        base = build_tree(data).query_engine().knn_batch(queries, k=6)
        assert ledger_tuple(base.stats.io) == ledger_tuple(got.stats.io)
        assert base.stats.pages_read == got.stats.pages_read
        assert base.stats.refinements == got.stats.refinements

    def test_pruning_reports_skipped_visits(self, clustered_points):
        data = clustered_points
        tree = build_tree(data)
        queries = data[:9]
        with ShardRouter(tree, shards=4) as router:
            got = router.knn_batch(queries, k=3)
        assert got.routing.skipped > 0
        assert got.routing.contacted.max() <= router.n_shards
        assert len(got.routing.shard_seconds) > 0

    def test_validation(self, data, queries):
        router = ShardRouter(build_tree(data), shards=2)
        with pytest.raises(SearchError):
            router.knn_batch(queries, k=0)
        with pytest.raises(SearchError):
            router.knn_batch(queries, k=data.shape[0] + 1)
        with pytest.raises(SearchError):
            router.range_batch(queries, -1.0)
        router.close()


class TestDeterminismSweep:
    """shards x workers x backend x faults: bit-identical, always.

    The router analogue of ``TestBackendSweep`` one file over: for a
    fixed shard count, the merged results, ledger, and observability
    counters must not depend on how many workers execute the per-query
    kernels, which executor backend runs them, or whether the shard
    trees are running under read-path fault injection.
    """

    GRID = [
        (1, "thread"),
        (2, "thread"),
        (4, "thread"),
        (2, "process"),
        (4, "process"),
    ]

    def run_once(
        self, data, queries, n_shards, workers, backend, faults, registry
    ):
        router = ShardRouter(
            build_tree(data), shards=n_shards, workers=workers,
            backend=backend,
        )
        if faults:
            # One persistent quantized-page fault per shard tree, at a
            # deterministic address, with a fault context attached so
            # the shard degrades instead of raising.
            for shard in router.shards:
                inj = ReadFaultInjector()
                inj.fail_always(shard.tree._quant_file.extent_start)
                shard.tree.disk.install_fault_injector(inj)
            router.use_fault_tolerance()
        knn = router.knn_batch(queries, k=6)
        rng_res = router.range_batch(queries, 0.35)
        router.close()
        counters = registry.collect()
        registry.reset()
        return knn, rng_res, counters

    @staticmethod
    def assert_batches_identical(base, got):
        assert len(base) == len(got)
        for b, g in zip(base, got):
            assert np.array_equal(b.ids, g.ids)
            assert np.array_equal(b.distances, g.distances)
            assert b.stats == g.stats
            assert b.degraded == g.degraded
            assert b.intervals == g.intervals
            assert b.lost_pages == g.lost_pages
            if b.certain is None:
                assert g.certain is None
            else:
                assert np.array_equal(b.certain, g.certain)
        assert ledger_tuple(base.stats.io) == ledger_tuple(got.stats.io)
        assert base.stats.pages_read == got.stats.pages_read
        assert base.stats.refinements == got.stats.refinements
        assert base.stats.lost_pages == got.stats.lost_pages
        assert base.routing.visit_order == got.routing.visit_order
        assert np.array_equal(base.routing.contacted, got.routing.contacted)
        assert base.routing.skipped == got.routing.skipped
        assert base.routing.dead == got.routing.dead

    @pytest.mark.parametrize("faults", [False, True])
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_sweep_is_bit_identical_across_workers_and_backends(
        self, data, queries, n_shards, faults, live_registry
    ):
        base_knn, base_rng, base_counters = self.run_once(
            data, queries, n_shards, 1, "thread", faults, live_registry
        )
        if faults:
            assert base_knn.stats.degraded
        for workers, backend in self.GRID[1:]:
            knn, rng_res, counters = self.run_once(
                data, queries, n_shards, workers, backend, faults,
                live_registry,
            )
            assert knn.stats.workers == workers
            self.assert_batches_identical(base_knn, knn)
            self.assert_batches_identical(base_rng, rng_res)
            assert counters == base_counters, (workers, backend)


class TestDeadShardFailover:
    def test_dead_shard_degrades_and_contains_truth(self, data, queries):
        tree = build_tree(data)
        baseline = tree.query_engine().knn_batch(queries, k=5)
        router = ShardRouter(tree, shards=3)
        router.kill_shard(0)
        got = router.knn_batch(queries, k=5)
        assert 0 in got.routing.dead
        assert got.stats.lost_pages > 0
        assert got.stats.degraded
        for b, g in zip(baseline, got):
            for pid, dist in zip(b.ids.tolist(), b.distances.tolist()):
                if pid in g.ids.tolist():
                    continue
                page = router.page_of(pid)
                assert any(
                    lp.page == page and lp.mindist <= dist <= lp.maxdist
                    for lp in g.lost_pages
                ), f"true neighbor {pid} neither returned nor covered"
        router.close()

    def test_revive_restores_exact_answers(self, data, queries):
        tree = build_tree(data)
        baseline = tree.query_engine().knn_batch(queries, k=5)
        router = ShardRouter(tree, shards=3)
        router.kill_shard(1)
        router.knn_batch(queries, k=5)
        router.revive_shard(1)
        got = router.knn_batch(queries, k=5)
        assert got.routing.dead == ()
        for b, g in zip(baseline, got):
            assert np.array_equal(b.ids, g.ids)
            assert np.array_equal(b.distances, g.distances)
            assert not g.degraded
        router.close()

    def test_all_shards_dead_still_answers_with_bounds(self, data, queries):
        router = ShardRouter(build_tree(data), shards=2)
        router.kill_shard(0)
        router.kill_shard(1)
        got = router.knn_batch(queries, k=5)
        assert got.routing.dead == (0, 1)
        for g in got:
            assert g.degraded
            assert g.ids.size == 0
            assert len(g.lost_pages) > 0
        assert got.stats.n_queries == queries.shape[0]
        router.close()

    def test_failing_shard_degrades_like_a_dead_one(self, data, queries):
        """A shard whose engine raises a StorageError mid-batch (fault
        injection with no fault context attached) must degrade, not
        fail the whole scatter-gather."""
        router = ShardRouter(build_tree(data), shards=3)
        victim = router.shards[2]
        inj = ReadFaultInjector()
        for block in range(
            victim.tree._quant_file.extent_start,
            victim.tree._quant_file.extent_start
            + victim.tree._quant_file.n_blocks,
        ):
            inj.fail_always(block)
        victim.tree.disk.install_fault_injector(inj)
        got = router.knn_batch(queries, k=5)
        assert 2 in got.routing.dead
        assert got.stats.lost_pages > 0
        router.close()

    def test_dead_shard_results_are_deterministic(self, data, queries):
        runs = []
        for _ in range(2):
            router = ShardRouter(build_tree(data), shards=3)
            router.kill_shard(0)
            runs.append(router.knn_batch(queries, k=5))
            router.close()
        a, b = runs
        for x, y in zip(a, b):
            assert np.array_equal(x.ids, y.ids)
            assert x.lost_pages == y.lost_pages
        assert ledger_tuple(a.stats.io) == ledger_tuple(b.stats.io)
        assert a.stats.lost_pages == b.stats.lost_pages

    def test_shard_of_maps_every_point(self, data):
        router = ShardRouter(build_tree(data), shards=3)
        for pid in (0, 7, data.shape[0] - 1):
            s = router.shard_of(pid)
            assert router.page_of(pid) in router.shards[s].pages
        router.close()


class TestMergeShards:
    """Satellite regressions: the merge maths the router relies on."""

    @staticmethod
    def stats(**over) -> BatchStats:
        base = dict(
            n_queries=4,
            io=IOStats(),
            pages_read=2,
            refinements=3,
            bytes_transferred=4096,
            pool_hits=1,
            pool_misses=2,
            retries=1,
            quarantined=1,
            degraded_results=1,
            lost_pages=1,
            decoded_pages_reused=5,
            workers=4,
        )
        base.update(over)
        return BatchStats(**base)

    def test_empty_shard_list_yields_zero_rates_not_nan(self):
        merged = BatchStats.merge_shards([], n_queries=7, workers=2)
        assert merged.n_queries == 7
        assert merged.workers == 2
        assert merged.pages_read == 0
        assert merged.decode_reuse_rate == 0.0
        assert merged.pool_hit_rate == 0.0
        assert merged.mean_time == 0.0
        assert not merged.degraded

    def test_counters_sum_and_workers_is_explicit(self):
        a = self.stats(workers=1)
        b = self.stats(workers=8, pool_hits=10, retries=6, lost_pages=2)
        merged = BatchStats.merge_shards([a, b], n_queries=4, workers=3)
        # workers comes from the shared pool, not the last shard.
        assert merged.workers == 3
        assert merged.n_queries == 4  # not summed across shards
        assert merged.pages_read == 4
        assert merged.refinements == 6
        assert merged.bytes_transferred == 8192
        assert merged.pool_hits == 11
        assert merged.pool_misses == 4
        # Fault counters sum, not overwrite.
        assert merged.retries == 7
        assert merged.quarantined == 2
        assert merged.degraded_results == 2
        assert merged.lost_pages == 3
        assert merged.decoded_pages_reused == 10

    def test_router_synthesized_lost_pages_are_added(self):
        merged = BatchStats.merge_shards(
            [self.stats()], n_queries=4, workers=1, extra_lost_pages=9
        )
        assert merged.lost_pages == 10

    def test_ledgers_merge_in_shard_order(self):
        io_a = IOStats(seeks=1, blocks_read=5, elapsed=0.5)
        io_b = IOStats(seeks=2, blocks_read=3, elapsed=0.25)
        merged = BatchStats.merge_shards(
            [self.stats(io=io_a), self.stats(io=io_b)],
            n_queries=4,
            workers=1,
        )
        assert merged.io.seeks == 3
        assert merged.io.blocks_read == 8
        assert merged.io.elapsed == 0.75


class TestArenaLifecycle:
    """Satellite regressions: no leaked arena files, ever."""

    def test_dispose_survives_a_broken_write_handle(self):
        arena = SharedArena.create()
        assert arena is not None
        arena.put(np.arange(8.0))
        path = arena.path
        # Simulate an abnormal teardown: the handle is already closed,
        # so seal()'s flush would raise ValueError.
        arena._file.close()
        arena.dispose()  # must not raise
        assert arena.disposed
        assert not os.path.exists(path)
        arena.dispose()  # idempotent

    def test_finalizer_unlinks_abandoned_arena(self):
        arena = SharedArena.create()
        assert arena is not None
        arena.put(np.arange(4.0))
        path = arena.path
        del arena
        gc.collect()
        assert not os.path.exists(path)

    def test_failed_process_batch_leaks_no_arena_files(
        self, data, queries, monkeypatch
    ):
        """A worker raising mid-phase used to skip seal(), and dispose()
        then died on the unflushed handle, stranding the arena file."""
        import repro.engine.engine as engine_mod

        monkeypatch.setattr(
            engine_mod, "plan_knn_shard", _boom_plan_shard
        )
        before = arena_files()
        engine = QueryEngine(build_tree(data), workers=2, backend="process")
        # The engine wraps the worker's StorageError into a per-query
        # QueryDataError; either way the batch fails and must clean up.
        with pytest.raises((StorageError, QueryDataError), match="injected"):
            engine.knn_batch(queries, k=5)
        engine.close()
        gc.collect()
        assert arena_files() == before

    def test_failing_shard_under_process_backend_leaks_nothing(
        self, data, queries, monkeypatch
    ):
        """The router swallows the shard failure (degraded answer), and
        the shard engine's teardown still reclaims its arena."""
        import repro.engine.engine as engine_mod

        monkeypatch.setattr(
            engine_mod, "plan_knn_shard", _boom_plan_shard
        )
        before = arena_files()
        router = ShardRouter(
            build_tree(data), shards=2, workers=2, backend="process"
        )
        got = router.knn_batch(queries, k=5)
        router.close()
        gc.collect()
        assert got.routing.dead  # every contacted shard failed
        assert all(r.degraded for r in got)
        assert arena_files() == before


class TestDecodedCacheGauge:
    """Satellite regressions: the resident-bytes gauge and the engine's
    live view of the tree's attachments."""

    def test_gauge_tracks_cache_swaps(self, data, queries, live_registry):
        tree = build_tree(data)
        first = tree.use_decoded_cache(1 << 24)
        tree.query_engine().knn_batch(queries, k=4)
        assert first.current_bytes > 0
        assert DECODED_CACHE_BYTES.value() == first.current_bytes

        # Re-attaching the same cache is a no-op.
        assert tree.use_decoded_cache(first) is first
        assert DECODED_CACHE_BYTES.value() == first.current_bytes

        # Swapping to a fresh cache re-syncs the gauge to the *new*
        # cache (it used to keep reporting the detached one's bytes).
        second = DecodedPageCache(1 << 24)
        tree.use_decoded_cache(second)
        assert tree.decoded_cache is second
        assert DECODED_CACHE_BYTES.value() == 0

        tree.clear_decoded_cache()
        assert DECODED_CACHE_BYTES.value() == 0
        tree.clear_decoded_cache()  # idempotent

    def test_engine_sees_reattached_pool_and_cache(self, data, queries):
        """engine.pool / engine.decode_cache read the tree's current
        attachments instead of a stale snapshot from __init__."""
        tree = build_tree(data)
        engine = tree.query_engine(pool=64)
        old_pool = engine.pool
        new_pool = tree.use_buffer_pool(128)
        assert engine.pool is new_pool
        assert engine.pool is not old_pool
        cache = tree.use_decoded_cache(1 << 24)
        assert engine.decode_cache is cache
        stats = engine.knn_batch(queries, k=4).stats
        assert stats.pool_hits + stats.pool_misses > 0


class TestSharedWorkerPool:
    def test_router_shares_one_pool_across_shards(self, data):
        router = ShardRouter(build_tree(data), shards=3, workers=2)
        pools = {id(s.engine._worker_pool) for s in router.shards}
        assert len(pools) == 1
        assert router.backend in ("thread", "process")
        router.close()

    def test_borrowed_pool_survives_engine_close(self, data, queries):
        router = ShardRouter(build_tree(data), shards=2, workers=2)
        router.shards[0].engine.close()  # borrowed: must not shut pool
        got = router.knn_batch(queries, k=3)
        assert len(got) == queries.shape[0]
        router.close()


class TestDistributedTracing:
    """Stitched scatter-gather traces: structure, attribution, parity.

    The tentpole's acceptance bar: a ``trace_query(router)`` span tree
    (names, structure, simulated-seconds durations, own-I/O) is
    bit-identical across worker counts and backends at a fixed shard
    count, the own-I/O partition invariant extends to the composite
    router ledger (faults included), and every shard visit leaves a
    ``shard-visit`` span carrying its routing decision.
    """

    GRID = [(1, "thread"), (2, "thread"), (4, "process")]

    def trace_once(self, data, queries, n_shards, workers, backend, faults):
        router = ShardRouter(
            build_tree(data), shards=n_shards, workers=workers,
            backend=backend,
        )
        if faults:
            for shard in router.shards:
                inj = ReadFaultInjector()
                inj.fail_always(shard.tree._quant_file.extent_start)
                shard.tree.disk.install_fault_injector(inj)
            router.use_fault_tolerance()
        try:
            with trace_query(router, name="knn-batch") as tracer:
                batch = router.knn_batch(queries, k=6)
        finally:
            router.close()
        return tracer, batch

    @staticmethod
    def own_sum(tracer) -> SpanIO:
        own = SpanIO()
        for node in tracer.root.walk():
            own = own + node.own_io
        return own

    @pytest.mark.parametrize("faults", [False, True])
    def test_stitched_tree_identical_across_workers_and_backends(
        self, data, queries, faults
    ):
        base_tracer, base_batch = self.trace_once(
            data, queries, 2, 1, "thread", faults
        )
        if faults:
            assert base_batch.stats.degraded
        base = json.dumps(base_tracer.root.sim_dict(), sort_keys=True)
        for workers, backend in self.GRID[1:]:
            tracer, _ = self.trace_once(
                data, queries, 2, workers, backend, faults
            )
            got = json.dumps(tracer.root.sim_dict(), sort_keys=True)
            assert got == base, (workers, backend)

    @pytest.mark.parametrize("faults", [False, True])
    def test_own_io_sums_to_composite_router_ledger(
        self, data, queries, faults
    ):
        """The PR 3 attribution invariant, one tier up: own-I/O over
        the stitched tree partitions the *composite* (all-shards)
        ledger delta exactly."""
        router = ShardRouter(build_tree(data), shards=3)
        if faults:
            for shard in router.shards:
                inj = ReadFaultInjector()
                inj.fail_always(shard.tree._quant_file.extent_start)
                shard.tree.disk.install_fault_injector(inj)
            router.use_fault_tolerance()
        before = ledger_tuple(router.disk.stats)
        try:
            with trace_query(router) as tracer:
                batch = router.knn_batch(queries, k=6)
        finally:
            router.close()
        delta = tuple(
            a - b for a, b in zip(ledger_tuple(router.disk.stats), before)
        )
        own = self.own_sum(tracer)
        ledger = batch.stats.io
        assert own.seeks == ledger.seeks == delta[0]
        assert own.blocks_read == ledger.blocks_read == delta[1]
        assert own.blocks_overread == ledger.blocks_overread == delta[2]
        assert own.elapsed == pytest.approx(ledger.elapsed, abs=1e-12)
        assert own.elapsed == pytest.approx(delta[3], abs=1e-12)
        assert tracer.root.io.elapsed == pytest.approx(
            own.elapsed, abs=1e-12
        )

    def test_shard_visit_spans_carry_routing_decisions(
        self, data, queries
    ):
        tracer, batch = self.trace_once(
            data, queries, 3, 1, "thread", faults=False
        )
        visits = tracer.root.find_all("shard-visit")
        assert visits
        for visit in visits:
            assert visit.attrs["shard"] in (0, 1, 2)
            assert visit.attrs["queries"] >= 1
            # radius_cap snapshots the bound per active query.
            assert (
                len(visit.attrs["radius_cap"]) == visit.attrs["queries"]
            )
            assert visit.attrs["outcome"] in ("ok", "degraded")
            assert visit.attrs["pages_read"] >= 0
            assert visit.attrs["pages_pruned"] >= 0
            assert visit.attrs["lost_pages"] == 0
            # The shard engine's own span chain nests inside the visit.
            assert visit.find("directory-scan") is not None
            assert visit.find("refine") is not None

    def test_routing_trace_links_the_visit_spans(self, data, queries):
        tracer, batch = self.trace_once(
            data, queries, 3, 1, "thread", faults=False
        )
        visits = tracer.root.find_all("shard-visit")
        assert list(batch.routing.spans) == visits

    def test_routing_spans_empty_without_a_tracer(self, data, queries):
        router = ShardRouter(build_tree(data), shards=2)
        batch = router.knn_batch(queries, k=4)
        router.close()
        assert batch.routing.spans == ()

    def test_dead_shard_visit_marked_dead(self, data, queries):
        router = ShardRouter(build_tree(data), shards=3)
        router.kill_shard(0)
        try:
            with trace_query(router) as tracer:
                batch = router.knn_batch(queries, k=5)
        finally:
            router.close()
        dead = [
            v
            for v in tracer.root.find_all("shard-visit")
            if v.attrs["outcome"] == "dead"
        ]
        assert dead
        for visit in dead:
            assert visit.attrs["shard"] == 0
            assert visit.attrs["lost_pages"] > 0
            assert visit.io.elapsed == 0.0  # dead shards charge nothing
        assert batch.stats.degraded

    def test_sim_starts_monotone_across_sibling_visits(
        self, data, queries
    ):
        """Shard visits attribute I/O to their shard disk but sit on
        the router's composite clock, so siblings stay ordered."""
        tracer, _ = self.trace_once(
            data, queries, 3, 1, "thread", faults=False
        )
        visits = tracer.root.find_all("shard-visit")
        starts = [v.sim_start for v in visits]
        assert starts == sorted(starts)
        events = tracer.root.to_events()
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
