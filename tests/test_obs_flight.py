"""Flight recorder and SLO monitor: postmortem capture + objectives.

The flight recorder's contract: attached to a tree or shard router it
watches every query, keeps bounded postmortems for the slow / degraded
/ faulted ones (deterministic qualification -- no wall clock), and
never steals spans from a user's ambient trace.  The SLO monitor's:
one-line declarative objectives over registry instruments, judged from
``Histogram.quantile`` / counter ratios and exported as ``iq_slo_*``
gauges on the Prometheus endpoint.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.tree import IQTree
from repro.engine import ShardRouter
from repro.obs.flight import FlightRecorder
from repro.obs.instruments import REGISTRY
from repro.obs.slo import Objective, SLOMonitor, parse_objective
from repro.obs.tracing import trace_query
from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.runtime_faults import ReadFaultInjector


@pytest.fixture
def tree(rng):
    disk = SimulatedDisk(
        DiskModel(t_seek=0.010, t_xfer=0.001, block_size=512)
    )
    return IQTree.build(rng.random((800, 6)), disk=disk)


@pytest.fixture
def live_registry():
    REGISTRY.reset()
    REGISTRY.enable()
    try:
        yield REGISTRY
    finally:
        REGISTRY.disable()
        REGISTRY.reset()


class TestRecorderRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_empty_reasons_is_a_no_op(self):
        rec = FlightRecorder(capacity=4)
        assert rec.record("knn-batch", 1, (), 0.1, {}) is None
        assert len(rec) == 0
        assert rec.recorded == 0

    def test_ring_bounds_and_drop_counting(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("nearest", i, ("slow",), float(i), {})
        assert len(rec) == 3
        assert rec.recorded == 5
        assert rec.dropped == 2
        # Oldest first; the two oldest fell off the back.
        assert [r.query_id for r in rec.records()] == [2, 3, 4]

    def test_records_filters_by_reason(self):
        rec = FlightRecorder(capacity=8)
        rec.record("nearest", 1, ("slow",), 0.1, {})
        rec.record("nearest", 2, ("slow", "degraded"), 0.2, {})
        rec.record("nearest", 3, ("faulted",), 0.3, {})
        assert [r.query_id for r in rec.records("degraded")] == [2]
        assert [r.query_id for r in rec.records("slow")] == [1, 2]
        assert len(rec.records()) == 3

    def test_clear_resets_ring_and_watermark(self):
        rec = FlightRecorder(capacity=4, top_slow=1)
        assert rec.qualify(1.0) == ("slow",)
        assert rec.qualify(0.5) == ()  # below the watermark
        rec.record("nearest", 1, ("slow",), 1.0, {})
        rec.clear()
        assert len(rec) == 0
        # Watermark gone: the first query qualifies again.
        assert rec.qualify(0.5) == ("slow",)

    def test_to_dict_and_json(self):
        rec = FlightRecorder(capacity=4)
        rec.record(
            "knn-batch", 7, ("degraded",), 0.25,
            {"pages_read": 3}, detail={"query": 0},
        )
        payload = json.loads(rec.to_json())
        assert payload["capacity"] == 4
        assert payload["recorded"] == 1
        record = payload["records"][0]
        assert record["kind"] == "knn-batch"
        assert record["query_id"] == 7
        assert record["reasons"] == ["degraded"]
        assert record["counters"]["pages_read"] == 3


class TestQualification:
    def test_absolute_threshold(self):
        rec = FlightRecorder(slow_threshold=0.5, top_slow=0)
        assert rec.qualify(0.5) == ("slow",)
        assert rec.qualify(0.49) == ()

    def test_top_slow_watermark(self):
        rec = FlightRecorder(top_slow=2)
        # The first top_slow queries always qualify (baseline forming).
        assert rec.qualify(0.3) == ("slow",)
        assert rec.qualify(0.1) == ("slow",)
        # Slower than the fastest mark: qualifies, evicts the mark.
        assert rec.qualify(0.2) == ("slow",)
        # Not slower than the (updated) fastest mark: does not.
        assert rec.qualify(0.15) == ()

    def test_top_slow_zero_disables_relative_capture(self):
        rec = FlightRecorder(top_slow=0)
        assert rec.qualify(99.0) == ()
        assert rec.qualify(99.0, degraded=True) == ("degraded",)

    def test_degraded_and_faulted_are_independent_reasons(self):
        rec = FlightRecorder(top_slow=0)
        assert rec.qualify(0.0, degraded=True, faulted=True) == (
            "degraded",
            "faulted",
        )


class TestInstruments:
    def test_counters_and_resident_gauge(self, live_registry):
        rec = FlightRecorder(capacity=2)
        rec.record("nearest", 1, ("slow", "degraded"), 0.1, {})
        rec.record("nearest", 2, ("slow",), 0.2, {})
        rec.record("nearest", 3, ("slow",), 0.3, {})  # evicts #1
        counters = live_registry.get("iq_flight_records_total")
        assert counters.value(reason="slow") == 3
        assert counters.value(reason="degraded") == 1
        dropped = live_registry.get("iq_flight_records_dropped_total")
        assert dropped.value() == 1
        resident = live_registry.get("iq_flight_resident_records")
        assert resident.value() == 2
        rec.clear()
        assert resident.value() == 0

    def test_silent_when_registry_disabled(self):
        assert not REGISTRY.enabled
        rec = FlightRecorder(capacity=2)
        rec.record("nearest", 1, ("slow",), 0.1, {})
        assert rec.recorded == 1  # recorder works, instruments skipped


class TestObserveSingle:
    def test_first_queries_recorded_as_slow_with_trace(self, tree, rng):
        recorder = tree.use_flight_recorder(FlightRecorder(capacity=8))
        tree.nearest(rng.random(6), k=3)
        assert len(recorder) == 1
        record = recorder.records()[0]
        assert record.kind == "nearest"
        assert "slow" in record.reasons
        assert record.sim_seconds > 0
        assert record.counters["pages_read"] > 0
        assert record.trace is not None
        assert record.trace["name"] == "nearest"
        tree.clear_flight_recorder()

    def test_range_kind(self, tree, rng):
        recorder = tree.use_flight_recorder(8)
        tree.range_query(rng.random(6), 0.3)
        assert recorder.records()[0].kind == "range"
        tree.clear_flight_recorder()

    def test_never_steals_an_ambient_trace(self, tree, rng):
        recorder = tree.use_flight_recorder(FlightRecorder(capacity=8))
        with trace_query(tree, name="mine") as tracer:
            tree.nearest(rng.random(6), k=3)
        tree.clear_flight_recorder()
        # The user's trace kept the query's I/O; the record has no tree.
        assert tracer.root.name == "mine"
        assert tracer.root.io.blocks_read > 0
        assert len(recorder) == 1
        assert recorder.records()[0].trace is None

    def test_capture_traces_false_skips_tracing(self, tree, rng):
        recorder = tree.use_flight_recorder(
            FlightRecorder(capacity=8, capture_traces=False)
        )
        tree.nearest(rng.random(6), k=3)
        tree.clear_flight_recorder()
        assert recorder.records()[0].trace is None

    def test_faulted_single_query_recorded(self, tree, rng):
        inj = ReadFaultInjector()
        inj.fail_once(tree._quant_file.extent_start)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        recorder = tree.use_flight_recorder(
            FlightRecorder(capacity=8, top_slow=0)
        )
        result = tree.nearest(rng.random(6), k=3)
        tree.clear_flight_recorder()
        assert not result.degraded  # transient fault: retried to exact
        (record,) = recorder.records()
        assert record.reasons == ("faulted",)
        assert record.counters["retries"] >= 1

    def test_clear_flight_recorder_detaches(self, tree, rng):
        recorder = tree.use_flight_recorder(4)
        tree.clear_flight_recorder()
        assert tree.flight_recorder is None
        tree.nearest(rng.random(6), k=3)
        assert len(recorder) == 0


class TestObserveBatch:
    def test_engine_batches_recorded(self, tree, rng):
        recorder = tree.use_flight_recorder(FlightRecorder(capacity=32))
        engine = tree.query_engine()
        engine.knn_batch(rng.random((4, 6)), k=3)
        tree.clear_flight_recorder()
        assert len(recorder) > 0
        for record in recorder.records():
            assert record.kind == "knn-batch"
            assert record.trace is not None
            assert record.trace["name"] == "knn-batch"
            assert record.counters["pages_read"] > 0

    def test_degraded_queries_all_captured_on_router(self, rng):
        """Acceptance: every degraded query leaves a record (the chaos
        harness asserts exactly this count)."""
        points = rng.random((1200, 8))
        tree = IQTree.build(
            points,
            disk=SimulatedDisk(
                DiskModel(t_seek=0.0025, t_xfer=0.0002, block_size=2048)
            ),
            optimize=False,
            fixed_bits=5,
        )
        router = ShardRouter(tree, shards=3)
        router.kill_shard(0)
        recorder = router.use_flight_recorder(
            FlightRecorder(capacity=4096, top_slow=0)
        )
        batch = router.knn_batch(rng.random((9, 8)), k=5)
        router.clear_flight_recorder()
        router.close()
        degraded = sum(1 for q in batch if q.degraded)
        assert degraded > 0
        captured = recorder.records("degraded")
        assert len(captured) == degraded
        for record in captured:
            assert record.detail["lost_pages"] > 0

    def test_faulted_batch_leaves_one_faulted_record(self, tree, rng):
        inj = ReadFaultInjector()
        inj.fail_once(tree._quant_file.extent_start)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        recorder = tree.use_flight_recorder(
            FlightRecorder(capacity=32, top_slow=0)
        )
        engine = tree.query_engine()
        batch = engine.knn_batch(rng.random((4, 6)), k=3)
        tree.clear_flight_recorder()
        assert batch.stats.retries >= 1
        faulted = recorder.records("faulted")
        assert len(faulted) == 1
        assert faulted[0].detail == {"n_queries": 4}


class TestSLOParsing:
    def test_named_quantile_spec(self):
        obj = parse_objective("lat=iq_query_simulated_seconds:p99<=0.05")
        assert obj == Objective(
            name="lat",
            kind="quantile",
            metric="iq_query_simulated_seconds",
            threshold=0.05,
            quantile=0.99,
        )

    def test_unnamed_spec_defaults_to_metric_name(self):
        obj = parse_objective("iq_query_simulated_seconds:p50<=1")
        assert obj.name == "iq_query_simulated_seconds"
        assert obj.quantile == 0.5

    def test_ratio_spec(self):
        obj = parse_objective(
            "deg=iq_degraded_results_total/iq_batch_queries_total<=0.01"
        )
        assert obj.kind == "ratio"
        assert obj.denominator == "iq_batch_queries_total"
        assert obj.threshold == 0.01

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "just_a_metric<=1",
            "m:p99",
            "m:p101<=0.5",  # quantile out of range
            "a/b<=not-a-number",
            "m:p99<=0.05 trailing",
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_objective(bad)

    def test_describe_mentions_the_bound(self):
        obj = parse_objective("lat=iq_query_simulated_seconds:p99<=0.05")
        assert "p99" in obj.describe()
        assert "0.05" in obj.describe()


class TestSLOEvaluation:
    def test_quantile_objective_met_and_burning(self, live_registry):
        hist = live_registry.get("iq_query_simulated_seconds")
        for value in (0.01, 0.02, 0.03):
            hist.observe(value)
        monitor = SLOMonitor(
            [
                "ok=iq_query_simulated_seconds:p99<=1.0",
                "burn=iq_query_simulated_seconds:p99<=0.001",
            ]
        )
        ok, burn = monitor.evaluate()
        assert ok.met and ok.burn < 1.0
        assert not burn.met and burn.burn > 1.0
        assert "BURNING" in burn.describe()
        assert "OK" in ok.describe()

    def test_ratio_objective(self, live_registry):
        live_registry.get("iq_degraded_results_total").inc(2)
        live_registry.get("iq_batch_queries_total").inc(100)
        monitor = SLOMonitor(
            ["deg=iq_degraded_results_total/iq_batch_queries_total<=0.01"]
        )
        (status,) = monitor.evaluate()
        assert status.observed == pytest.approx(0.02)
        assert not status.met

    def test_no_data_is_met_with_zero_burn(self, live_registry):
        monitor = SLOMonitor(
            [
                "lat=iq_query_simulated_seconds:p99<=0.05",
                "deg=iq_degraded_results_total/iq_batch_queries_total<=0.01",
            ]
        )
        for status in monitor.evaluate():
            assert status.met
            assert status.observed is None
            assert status.burn == 0.0
            assert "no data" in status.describe()

    def test_gauges_exported(self, live_registry):
        live_registry.get("iq_query_simulated_seconds").observe(0.02)
        SLOMonitor(["lat=iq_query_simulated_seconds:p99<=1.0"]).evaluate()
        assert live_registry.get("iq_slo_objective_met").value(
            objective="lat"
        ) == 1.0
        assert live_registry.get("iq_slo_threshold").value(
            objective="lat"
        ) == 1.0
        assert live_registry.get("iq_slo_burn_ratio").value(
            objective="lat"
        ) > 0.0
        observed = live_registry.get("iq_slo_observed_value")
        assert observed.value(objective="lat") > 0.0
        # And the verdict rides the Prometheus text endpoint.
        text = live_registry.to_prometheus()
        assert 'iq_slo_objective_met{objective="lat"} 1' in text

    def test_observed_gauge_skipped_without_data(self, live_registry):
        SLOMonitor(["lat=iq_query_simulated_seconds:p99<=1.0"]).evaluate()
        text = live_registry.to_prometheus()
        assert 'iq_slo_objective_met{objective="lat"} 1' in text
        assert 'iq_slo_observed_value{objective="lat"}' not in text

    def test_unknown_metric_raises(self, live_registry):
        monitor = SLOMonitor(["x=iq_no_such_metric:p99<=1.0"])
        with pytest.raises(ValueError, match="unknown metric"):
            monitor.evaluate()

    def test_wrong_instrument_kind_raises(self, live_registry):
        # A counter has no quantiles; a histogram is not a ratio term.
        with pytest.raises(ValueError, match="histogram"):
            SLOMonitor(["x=iq_batch_queries_total:p99<=1.0"]).evaluate()
        with pytest.raises(ValueError, match="counters"):
            SLOMonitor(
                ["x=iq_query_simulated_seconds/iq_batch_queries_total<=1"]
            ).evaluate()

    def test_zero_threshold_burn_semantics(self, live_registry):
        live_registry.get("iq_degraded_results_total").inc(1)
        live_registry.get("iq_batch_queries_total").inc(10)
        monitor = SLOMonitor(
            ["z=iq_degraded_results_total/iq_batch_queries_total<=0"]
        )
        (status,) = monitor.evaluate()
        assert not status.met
        assert status.burn == float("inf")

    def test_summary_one_line_per_objective(self, live_registry):
        monitor = SLOMonitor(
            [
                "a=iq_query_simulated_seconds:p99<=1.0",
                "b=iq_degraded_results_total/iq_batch_queries_total<=0.5",
            ]
        )
        summary = monitor.summary()
        assert len(summary.splitlines()) == 2

    def test_accepts_objective_instances(self, live_registry):
        obj = parse_objective("a=iq_query_simulated_seconds:p99<=1.0")
        monitor = SLOMonitor([obj])
        assert monitor.objectives == [obj]


class TestEndToEndWorkload:
    def test_slo_over_a_real_workload(self, tree, rng, live_registry):
        """Run real queries, then judge a latency objective from the
        histogram the library itself populated."""
        engine = tree.query_engine()
        engine.knn_batch(rng.random((6, 6)), k=3)
        monitor = SLOMonitor(["lat=iq_query_simulated_seconds:p99<=60"])
        (status,) = monitor.evaluate()
        assert status.observed is not None
        assert status.met
