"""Tests for the bulk-load partitioner."""

import numpy as np
import pytest

from repro.exceptions import BuildError
from repro.core.build import bulk_load_partitions, partitions_for_capacity
from repro.quantization.capacity import capacity_for_bits


class TestBulkLoad:
    def test_every_partition_fits_one_bit_page(self, uniform_points):
        parts = bulk_load_partitions(uniform_points, 2048)
        cap = capacity_for_bits(2048, 8, 1)
        assert all(p.size <= cap for p in parts)

    def test_partitions_cover_all_points_exactly_once(self, uniform_points):
        parts = bulk_load_partitions(uniform_points, 2048)
        combined = np.sort(np.concatenate([p.indices for p in parts]))
        assert np.array_equal(combined, np.arange(len(uniform_points)))

    def test_small_data_one_partition(self, rng):
        data = rng.random((10, 4))
        parts = bulk_load_partitions(data, 8192)
        assert len(parts) == 1

    def test_balanced_sizes(self, uniform_points):
        parts = bulk_load_partitions(uniform_points, 1024)
        sizes = np.array([p.size for p in parts])
        # Median splits keep pages within a factor ~2 of each other.
        assert sizes.max() <= 2 * sizes.min() + 1

    def test_depth_first_order_is_spatially_coherent(self, rng):
        # 1-d data: depth-first output must be sorted left-to-right.
        data = np.sort(rng.random(512)).reshape(-1, 1)
        parts = partitions_for_capacity(data, 16)
        centers = [p.mbr.center[0] for p in parts]
        assert centers == sorted(centers)

    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            bulk_load_partitions(np.empty((0, 3)), 8192)

    def test_bad_capacity_rejected(self, rng):
        with pytest.raises(BuildError):
            partitions_for_capacity(rng.random((10, 2)), 0)


class TestCapacityTargets:
    def test_respects_arbitrary_capacity(self, uniform_points):
        for cap in (7, 50, 333):
            parts = partitions_for_capacity(uniform_points, cap)
            assert all(p.size <= cap for p in parts)

    def test_duplicate_points_handled(self):
        data = np.ones((100, 3))
        parts = partitions_for_capacity(data, 8)
        assert all(p.size <= 8 for p in parts)
        assert sum(p.size for p in parts) == 100
